//! Test-set error measurement (the `Max error observed on test-set`
//! column of Table 2 and the observed curves of Fig. 5).
//!
//! Bulk evaluation routes through the batched execution engine
//! (`problp-engine`): the whole test set is packed into one columnar
//! [`EvidenceBatch`] and evaluated per tape sweep, once in exact `f64`
//! and once in the low-precision representation. Conditional queries run
//! one denominator batch plus one numerator batch per query state, with
//! the final ratio taken outside the AC (paper §3.2.2). Tape evaluation
//! is bit-identical to the scalar tree-walk this module used before the
//! engine existed (pinned by `problp-engine`'s property tests), so the
//! reported statistics are unchanged — just measured much faster.

use problp_ac::{AcError, AcGraph, Semiring};
use problp_bayes::{Evidence, EvidenceBatch, VarId};
use problp_bounds::QueryType;
use problp_engine::{Engine, EngineError, KernelSet, Tape};
use problp_num::{F64Arith, FixedArith, Flags, FloatArith, Representation};

use crate::error::CoreError;

/// Aggregated error statistics over a test set.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ErrorStats {
    /// Largest observed absolute error.
    pub max_abs: f64,
    /// Mean observed absolute error.
    pub mean_abs: f64,
    /// Largest observed relative error (over outputs with non-zero exact
    /// value).
    pub max_rel: f64,
    /// Mean observed relative error.
    pub mean_rel: f64,
    /// Number of measured query outputs.
    pub count: usize,
    /// Sticky arithmetic flags accumulated across all low-precision
    /// evaluations — `range_violation()` must stay false for the bounds
    /// to be valid.
    pub flags: Flags,
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max abs {:.3e}, mean abs {:.3e}, max rel {:.3e}, mean rel {:.3e} over {} outputs",
            self.max_abs, self.mean_abs, self.max_rel, self.mean_rel, self.count
        )
    }
}

struct Accumulator {
    stats: ErrorStats,
    abs_sum: f64,
    rel_sum: f64,
    rel_count: usize,
}

impl Accumulator {
    fn new() -> Self {
        Accumulator {
            stats: ErrorStats::default(),
            abs_sum: 0.0,
            rel_sum: 0.0,
            rel_count: 0,
        }
    }

    fn record(&mut self, exact: f64, approx: f64) {
        let abs = (approx - exact).abs();
        self.stats.max_abs = self.stats.max_abs.max(abs);
        self.abs_sum += abs;
        self.stats.count += 1;
        if exact != 0.0 {
            let rel = abs / exact.abs();
            self.stats.max_rel = self.stats.max_rel.max(rel);
            self.rel_sum += rel;
            self.rel_count += 1;
        }
    }

    fn finish(mut self, flags: Flags) -> ErrorStats {
        if self.stats.count > 0 {
            self.stats.mean_abs = self.abs_sum / self.stats.count as f64;
        }
        if self.rel_count > 0 {
            self.stats.mean_rel = self.rel_sum / self.rel_count as f64;
        }
        self.stats.flags = flags;
        self.stats
    }
}

/// Runs the exact and low-precision engines over the batch and feeds the
/// accumulator, mirroring how the deployed hardware would serve the
/// queries in bulk.
fn measure_batched<A>(
    tape: &Tape,
    lp_ctx: A,
    query: QueryType,
    query_var: VarId,
    query_states: usize,
    batch: &EvidenceBatch,
) -> Result<ErrorStats, CoreError>
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    let exact_engine = Engine::new(tape.clone(), F64Arith::new());
    let lp_engine = Engine::new(tape.clone(), lp_ctx);
    let mut acc = Accumulator::new();
    let mut flags = Flags::new();
    match query {
        QueryType::Marginal | QueryType::Mpe => {
            let exact = exact_engine.evaluate_batch(batch)?;
            let lp = lp_engine.evaluate_batch(batch)?;
            flags.merge(lp.flags);
            for (x, a) in exact.values.iter().zip(lp_engine.to_f64s(&lp.values)) {
                if x.is_finite() && a.is_finite() {
                    acc.record(*x, a);
                }
            }
        }
        QueryType::Conditional => {
            // Pr(q = s | e) for every state s, served as joint/marginal
            // lane pairs by the engine's conditional path: one numerator
            // batch Pr(q = s, e) per state over the shared denominator
            // batch Pr(e); the ratio is taken outside the AC (paper
            // §3.2.2, footnote 2).
            let exact = exact_engine.conditional_batch(batch, query_var)?;
            let lp = lp_engine.conditional_batch(batch, query_var)?;
            flags.merge(lp.flags);
            for s in 0..query_states {
                for lane in 0..batch.lanes() {
                    let x = exact.posteriors[lane][s];
                    let a = lp.posteriors[lane][s];
                    if x.is_finite() && a.is_finite() {
                        acc.record(x, a);
                    }
                }
            }
        }
    }
    Ok(acc.finish(flags))
}

/// Measures observed low-precision errors of `query` over a test set.
///
/// Query outputs whose exact value is NaN or whose exact denominator is
/// zero (unreachable evidence) are skipped.
///
/// # Errors
///
/// Propagates evaluation errors (shape mismatches, missing root).
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::{networks, Evidence};
/// use problp_bounds::QueryType;
/// use problp_core::measure_errors;
/// use problp_num::{FixedFormat, Representation};
///
/// let net = networks::sprinkler();
/// let ac = binarize(&compile(&net)?)?;
/// let mut e = Evidence::empty(net.var_count());
/// e.observe(net.find("WetGrass").unwrap(), 1);
/// let stats = measure_errors(
///     &ac,
///     Representation::Fixed(FixedFormat::new(1, 12)?),
///     QueryType::Marginal,
///     net.find("Rain").unwrap(),
///     &[e],
/// )?;
/// assert!(stats.max_abs < 1e-2);
/// assert!(!stats.flags.range_violation());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn measure_errors(
    ac: &AcGraph,
    repr: Representation,
    query: QueryType,
    query_var: VarId,
    test_evidence: &[Evidence],
) -> Result<ErrorStats, CoreError> {
    let query_states = ac.var_arities()[query_var.index()];
    for e in test_evidence {
        if e.len() != ac.var_count() {
            return Err(AcError::EvidenceLengthMismatch {
                evidence: e.len(),
                circuit: ac.var_count(),
            }
            .into());
        }
    }
    let batch = EvidenceBatch::from_evidences(ac.var_count(), test_evidence)
        .expect("lengths checked above");
    let semiring = match query {
        QueryType::Mpe => Semiring::MaxProduct,
        QueryType::Marginal | QueryType::Conditional => Semiring::SumProduct,
    };
    // Keep the pre-engine error contract: circuit-level failures (missing
    // root, invalid children) still surface as `CoreError::Circuit`.
    let tape = Tape::compile(ac, semiring).map_err(|e| match e {
        EngineError::Circuit(ac_err) => CoreError::Circuit(ac_err),
        other => CoreError::Engine(other),
    })?;
    match repr {
        Representation::Fixed(format) => measure_batched(
            &tape,
            FixedArith::new(format),
            query,
            query_var,
            query_states,
            &batch,
        ),
        Representation::Float(format) => measure_batched(
            &tape,
            FloatArith::new(format),
            query,
            query_var,
            query_states,
            &batch,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::{compile, transform::binarize};
    use problp_bayes::networks;
    use problp_bounds::{
        fixed_query_bound, float_query_bound, AcAnalysis, LeafErrorModel, Tolerance,
    };
    use problp_num::{FixedFormat, FloatFormat};

    fn all_single_evidences(net: &problp_bayes::BayesNet) -> Vec<Evidence> {
        let mut out = Vec::new();
        for v in 0..net.var_count() {
            for s in 0..net.variable(VarId::from_index(v)).arity() {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(v), s);
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn observed_errors_stay_below_the_fixed_bound() {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let format = FixedFormat::new(1, 12).unwrap();
        let bound = fixed_query_bound(
            &ac,
            &analysis,
            format,
            QueryType::Marginal,
            Tolerance::Absolute(1.0),
            LeafErrorModel::WorstCase,
        )
        .unwrap();
        let stats = measure_errors(
            &ac,
            Representation::Fixed(format),
            QueryType::Marginal,
            VarId::from_index(0),
            &all_single_evidences(&net),
        )
        .unwrap();
        assert!(stats.count > 0);
        assert!(stats.max_abs <= bound, "{} > {bound}", stats.max_abs);
        assert!(stats.mean_abs <= stats.max_abs);
        assert!(!stats.flags.range_violation());
    }

    #[test]
    fn observed_errors_stay_below_the_float_bound() {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let format = FloatFormat::new(10, 12).unwrap();
        let bound = float_query_bound(
            &ac,
            &analysis,
            format,
            QueryType::Marginal,
            Tolerance::Relative(1.0),
        )
        .unwrap();
        let stats = measure_errors(
            &ac,
            Representation::Float(format),
            QueryType::Marginal,
            VarId::from_index(0),
            &all_single_evidences(&net),
        )
        .unwrap();
        assert!(stats.max_rel <= bound, "{} > {bound}", stats.max_rel);
        assert!(!stats.flags.range_violation());
    }

    #[test]
    fn conditional_measurement_covers_every_state() {
        let net = networks::sprinkler();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let rain = net.find("Rain").unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(net.find("WetGrass").unwrap(), 1);
        let stats = measure_errors(
            &ac,
            Representation::Float(FloatFormat::new(8, 14).unwrap()),
            QueryType::Conditional,
            rain,
            std::slice::from_ref(&e),
        )
        .unwrap();
        // Two states of Rain measured.
        assert_eq!(stats.count, 2);
        assert!(stats.max_rel < 1e-2);
    }

    #[test]
    fn mpe_measurement_works() {
        let net = networks::figure1();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let stats = measure_errors(
            &ac,
            Representation::Fixed(FixedFormat::new(1, 10).unwrap()),
            QueryType::Mpe,
            VarId::from_index(0),
            &[Evidence::empty(net.var_count())],
        )
        .unwrap();
        assert_eq!(stats.count, 1);
        assert!(stats.max_abs < 1e-2);
    }

    #[test]
    fn circuit_errors_keep_the_pre_engine_contract() {
        // A rootless graph must still surface as CoreError::Circuit.
        let g = problp_ac::AcGraph::new(vec![2]);
        let err = measure_errors(
            &g,
            Representation::Fixed(FixedFormat::new(1, 8).unwrap()),
            QueryType::Marginal,
            VarId::from_index(0),
            &[Evidence::empty(1)],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::CoreError::Circuit(problp_ac::AcError::MissingRoot)
        ));
    }

    #[test]
    fn more_bits_mean_less_error() {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let evidences = all_single_evidences(&net);
        let coarse = measure_errors(
            &ac,
            Representation::Fixed(FixedFormat::new(1, 6).unwrap()),
            QueryType::Marginal,
            VarId::from_index(0),
            &evidences,
        )
        .unwrap();
        let fine = measure_errors(
            &ac,
            Representation::Fixed(FixedFormat::new(1, 20).unwrap()),
            QueryType::Marginal,
            VarId::from_index(0),
            &evidences,
        )
        .unwrap();
        assert!(fine.max_abs < coarse.max_abs);
    }
}
