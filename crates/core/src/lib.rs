//! # problp-core — the ProbLP framework pipeline
//!
//! This crate wires the substrates together into the framework of the
//! paper's Fig. 2: given an arithmetic circuit, a query type and an error
//! tolerance, [`Problp`] runs the fixed- and floating-point error
//! analyses, finds the least bit widths, compares predicted energies,
//! selects a representation and generates the pipelined hardware.
//!
//! [`measure_errors`] provides the experimental half: observed
//! low-precision errors over a test set (Table 2's `max error observed`
//! column, Fig. 5's curves).
//!
//! # Examples
//!
//! ```
//! use problp_ac::compile;
//! use problp_bayes::networks;
//! use problp_bounds::{QueryType, Tolerance};
//! use problp_core::Problp;
//!
//! let ac = compile(&networks::alarm(7))?;
//! let report = Problp::new(&ac)
//!     .query(QueryType::Conditional)
//!     .tolerance(Tolerance::Relative(0.01))
//!     .run()?;
//! // Conditional + relative error: float point is the only option
//! // (paper §3.2.2), and the generated RTL is part of the report.
//! assert!(report.selected.repr.is_float());
//! assert!(report.hardware.verilog.contains("problp_fp_mul"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod measure;
mod pipeline;

pub use error::CoreError;
pub use measure::{measure_errors, ErrorStats};
pub use pipeline::{gate_level_energy_nj, Candidate, HardwareReport, Problp, Report};
