//! The ProbLP pipeline (paper Fig. 2).
//!
//! ```text
//! AC + query type + error tolerance
//!   └─ binarize ─ max/min analyses
//!        ├─ fixed-pt error analysis ─► optimal (I, F) ─ energy estimate ─┐
//!        ├─ float-pt error analysis ─► optimal (E, M) ─ energy estimate ─┤
//!        └────────────────────────────── compare & select ◄──────────────┘
//!                                             │
//!                                       HW generation ─► Verilog
//! ```

use problp_ac::{transform, AcGraph, AcStats};
use problp_bayes::{Evidence, VarId};
use problp_bounds::{
    optimize_fixed, optimize_float, AcAnalysis, BoundsError, LeafErrorModel, QueryType, Tolerance,
    DEFAULT_MAX_PRECISION_BITS,
};
use problp_energy::{fixed_ac_energy, float_ac_energy, AcEnergy, CellLibrary, Tsmc65Model};
use problp_hw::{emit_verilog, HwStats, Netlist};
use problp_num::{FloatFormat, Representation};

use crate::error::CoreError;
use crate::measure::{measure_errors, ErrorStats};

/// One candidate representation with its guaranteed bound and predicted
/// energy.
#[derive(Clone, PartialEq, Debug)]
pub struct Candidate {
    /// The representation (formats sized by the analyses).
    pub repr: Representation,
    /// The worst-case error bound in the tolerance's metric.
    pub bound: f64,
    /// Predicted energy per AC evaluation (operator-level model).
    pub energy: AcEnergy,
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (bound {:.3e}, {:.3} nJ/eval)",
            self.repr,
            self.bound,
            self.energy.total_nj()
        )
    }
}

/// The generated hardware and its statistics.
#[derive(Clone, PartialEq, Debug)]
pub struct HardwareReport {
    /// Netlist statistics (operators, registers, pipeline depth).
    pub stats: HwStats,
    /// The emitted Verilog source.
    pub verilog: String,
    /// The gate-level ("post-synthesis" stand-in) energy estimate in nJ,
    /// including pipeline-register energy.
    pub gate_level_nj: f64,
}

/// The full result of a ProbLP run.
#[derive(Clone, PartialEq, Debug)]
pub struct Report {
    /// The query the hardware will serve.
    pub query: QueryType,
    /// The error tolerance it must meet.
    pub tolerance: Tolerance,
    /// Statistics of the binarized circuit the hardware implements.
    pub circuit_stats: AcStats,
    /// The optimal fixed-point candidate, if fixed point is feasible.
    pub fixed: Option<Candidate>,
    /// Why fixed point was rejected (e.g. `>64` bits, or conditional
    /// relative-error queries), if it was.
    pub fixed_failure: Option<BoundsError>,
    /// The optimal floating-point candidate, if feasible.
    pub float: Option<Candidate>,
    /// Why floating point was rejected, if it was.
    pub float_failure: Option<BoundsError>,
    /// The selected (lower-energy) representation.
    pub selected: Candidate,
    /// Energy of the same circuit with 32-bit float operators
    /// (`E=8, M=23`) — the comparison column of Table 2.
    pub baseline_float32_nj: f64,
    /// The generated hardware.
    pub hardware: HardwareReport,
    /// Observed low-precision errors of the selected representation over
    /// the test set handed to [`Problp::measure_on`], measured in bulk
    /// through the batched execution engine. `None` when no test set was
    /// provided.
    pub observed: Option<ErrorStats>,
}

impl Report {
    /// Energy saving of the selected representation versus the 32-bit
    /// float baseline (e.g. `2.0` = half the energy).
    pub fn saving_vs_float32(&self) -> f64 {
        self.baseline_float32_nj / self.selected.energy.total_nj()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "ProbLP report: {} query, {}", self.query, self.tolerance)?;
        writeln!(f, "  circuit: {}", self.circuit_stats)?;
        match (&self.fixed, &self.fixed_failure) {
            (Some(c), _) => writeln!(f, "  fixed:  {c}")?,
            (None, Some(e)) => writeln!(f, "  fixed:  not feasible ({e})")?,
            _ => {}
        }
        match (&self.float, &self.float_failure) {
            (Some(c), _) => writeln!(f, "  float:  {c}")?,
            (None, Some(e)) => writeln!(f, "  float:  not feasible ({e})")?,
            _ => {}
        }
        writeln!(f, "  selected: {}", self.selected)?;
        writeln!(
            f,
            "  32b-float baseline: {:.3} nJ/eval ({:.2}x saving)",
            self.baseline_float32_nj,
            self.saving_vs_float32()
        )?;
        write!(
            f,
            "  hardware: {} ({:.3} nJ/eval gate-level)",
            self.hardware.stats, self.hardware.gate_level_nj
        )?;
        if let Some(observed) = &self.observed {
            write!(f, "\n  observed: {observed}")?;
        }
        Ok(())
    }
}

/// The ProbLP framework: a builder over its three inputs (paper §3) plus
/// engineering knobs.
///
/// # Examples
///
/// ```
/// use problp_ac::compile;
/// use problp_bayes::networks;
/// use problp_core::Problp;
/// use problp_bounds::{QueryType, Tolerance};
///
/// let ac = compile(&networks::alarm(7))?;
/// let report = Problp::new(&ac)
///     .query(QueryType::Marginal)
///     .tolerance(Tolerance::Absolute(0.01))
///     .run()?;
/// // The paper's Table 2: fixed point wins Alarm marginal queries.
/// assert!(report.selected.repr.is_fixed());
/// assert!(report.selected.bound <= 0.01);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Problp<'a> {
    ac: &'a AcGraph,
    query: QueryType,
    tolerance: Tolerance,
    leaf_model: LeafErrorModel,
    max_precision_bits: u32,
    cell_library: CellLibrary,
    emit_rtl: bool,
    optimize_circuit: bool,
    measurement: Option<(VarId, &'a [Evidence])>,
}

impl<'a> Problp<'a> {
    /// Creates a pipeline for the given circuit (binarized internally if
    /// needed) with the defaults: marginal query, absolute tolerance 0.01,
    /// worst-case leaf model, 64-bit precision cap.
    pub fn new(ac: &'a AcGraph) -> Self {
        Problp {
            ac,
            query: QueryType::Marginal,
            tolerance: Tolerance::Absolute(0.01),
            leaf_model: LeafErrorModel::WorstCase,
            max_precision_bits: DEFAULT_MAX_PRECISION_BITS,
            cell_library: CellLibrary::default(),
            emit_rtl: true,
            optimize_circuit: false,
            measurement: None,
        }
    }

    /// Sets the query type.
    pub fn query(mut self, query: QueryType) -> Self {
        self.query = query;
        self
    }

    /// Sets the error tolerance.
    pub fn tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the leaf-error model (ablation knob, default worst-case).
    pub fn leaf_model(mut self, model: LeafErrorModel) -> Self {
        self.leaf_model = model;
        self
    }

    /// Sets the fraction/mantissa bit cap (default 64, the paper's `>64`
    /// reporting threshold).
    pub fn max_precision_bits(mut self, bits: u32) -> Self {
        self.max_precision_bits = bits;
        self
    }

    /// Sets the cell library used for the gate-level energy estimate.
    pub fn cell_library(mut self, lib: CellLibrary) -> Self {
        self.cell_library = lib;
        self
    }

    /// Disables Verilog emission (keeps the report light for sweeps).
    pub fn skip_rtl(mut self) -> Self {
        self.emit_rtl = false;
        self
    }

    /// Enables the constant-folding / sharing optimisation pass before
    /// analysis (off by default: the paper's flow has no such pass, it is
    /// an ablation — see `DESIGN.md`).
    pub fn optimize_circuit(mut self, enable: bool) -> Self {
        self.optimize_circuit = enable;
        self
    }

    /// Requests an empirical validation pass: after selecting the
    /// representation, measure its observed errors over `test_evidence`
    /// (for conditional queries, `query_var` is the queried variable).
    /// The bulk evaluation runs through the batched execution engine; the
    /// result lands in [`Report::observed`].
    pub fn measure_on(mut self, query_var: VarId, test_evidence: &'a [Evidence]) -> Self {
        self.measurement = Some((query_var, test_evidence));
        self
    }

    /// Runs the full pipeline: analyses, bit-width optimisation, energy
    /// comparison, selection, and hardware generation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoFeasibleRepresentation`] when neither
    /// representation can meet the tolerance, and propagates circuit /
    /// analysis / hardware errors.
    pub fn run(self) -> Result<Report, CoreError> {
        let model = Tsmc65Model;
        let optimized;
        let source = if self.optimize_circuit {
            optimized = problp_ac::optimize(self.ac)?.0;
            &optimized
        } else {
            self.ac
        };
        // Stage 1 of HW generation (paper §3.4): two-input operators.
        let bin = transform::binarize(source)?;
        let analysis = AcAnalysis::new(&bin)?;

        let fixed_result = optimize_fixed(
            &bin,
            &analysis,
            self.query,
            self.tolerance,
            self.leaf_model,
            self.max_precision_bits,
        );
        let float_result = optimize_float(
            &bin,
            &analysis,
            self.query,
            self.tolerance,
            self.max_precision_bits,
        );

        let fixed = match &fixed_result {
            Ok(c) => Some(Candidate {
                repr: Representation::Fixed(c.format),
                bound: c.bound,
                energy: fixed_ac_energy(&bin, c.format, &model),
            }),
            Err(_) => None,
        };
        let float = match &float_result {
            Ok(c) => Some(Candidate {
                repr: Representation::Float(c.format),
                bound: c.bound,
                energy: float_ac_energy(&bin, c.format, &model),
            }),
            Err(_) => None,
        };

        // Compare fixed and float (paper §3.3): lower predicted energy.
        let selected = match (&fixed, &float) {
            (Some(a), Some(b)) => {
                if a.energy.total_nj() <= b.energy.total_nj() {
                    a.clone()
                } else {
                    b.clone()
                }
            }
            (Some(a), None) => a.clone(),
            (None, Some(b)) => b.clone(),
            (None, None) => {
                return Err(CoreError::NoFeasibleRepresentation {
                    fixed: fixed_result.unwrap_err(),
                    float: float_result.unwrap_err(),
                });
            }
        };

        // Hardware generation for the selected representation.
        let netlist = Netlist::from_ac(&bin, selected.repr)?;
        let stats = netlist.stats();
        let gate_level_nj = gate_level_energy_nj(&stats, selected.repr, &self.cell_library);
        let verilog = if self.emit_rtl {
            emit_verilog(&netlist)
        } else {
            String::new()
        };

        let baseline = float_ac_energy(&bin, FloatFormat::ieee_single(), &model);

        // Empirical half, on request: bulk-evaluate the test set through
        // the batched engine against the selected representation.
        let observed = match self.measurement {
            Some((query_var, test_evidence)) => Some(measure_errors(
                &bin,
                selected.repr,
                self.query,
                query_var,
                test_evidence,
            )?),
            None => None,
        };

        Ok(Report {
            query: self.query,
            tolerance: self.tolerance,
            circuit_stats: bin.stats(),
            fixed,
            fixed_failure: fixed_result.err(),
            float,
            float_failure: float_result.err(),
            selected,
            baseline_float32_nj: baseline.total_nj(),
            hardware: HardwareReport {
                stats,
                verilog,
                gate_level_nj,
            },
            observed,
        })
    }
}

/// Gate-level energy of a pipelined datapath: structural operator
/// estimates plus pipeline-register energy (the "post-synthesis"
/// stand-in, DESIGN.md substitution 3).
pub fn gate_level_energy_nj(stats: &HwStats, repr: Representation, lib: &CellLibrary) -> f64 {
    let op_fj = match repr {
        Representation::Fixed(f) => {
            stats.adds as f64 * lib.fixed_add_fj(f) + stats.muls as f64 * lib.fixed_mul_fj(f)
        }
        Representation::Float(f) => {
            stats.adds as f64 * lib.float_add_fj(f) + stats.muls as f64 * lib.float_mul_fj(f)
        }
    };
    (op_fj + lib.register_fj(stats.register_bits())) * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::compile;
    use problp_bayes::networks;

    #[test]
    fn alarm_marginal_absolute_selects_fixed() {
        // Table 2 row: Alarm, marg. prob., abs. err 0.01 -> fixed wins.
        let ac = compile(&networks::alarm(7)).unwrap();
        let report = Problp::new(&ac)
            .query(QueryType::Marginal)
            .tolerance(Tolerance::Absolute(0.01))
            .run()
            .unwrap();
        assert!(report.selected.repr.is_fixed());
        assert!(report.fixed.is_some());
        assert!(report.float.is_some());
        let fx = report.fixed.as_ref().unwrap();
        let fl = report.float.as_ref().unwrap();
        assert!(fx.energy.total_nj() <= fl.energy.total_nj());
        // Both candidates meet the tolerance.
        assert!(fx.bound <= 0.01 && fl.bound <= 0.01);
        // The selected representation beats the 32-bit float baseline.
        assert!(report.saving_vs_float32() > 1.0);
    }

    #[test]
    fn alarm_conditional_relative_selects_float() {
        // Table 2 row: Alarm, cond. prob., rel. err 0.01 -> float only.
        let ac = compile(&networks::alarm(7)).unwrap();
        let report = Problp::new(&ac)
            .query(QueryType::Conditional)
            .tolerance(Tolerance::Relative(0.01))
            .run()
            .unwrap();
        assert!(report.selected.repr.is_float());
        assert!(report.fixed.is_none());
        assert!(matches!(
            report.fixed_failure,
            Some(BoundsError::FixedUnsupportedForQuery)
        ));
    }

    #[test]
    fn report_contains_working_hardware() {
        let ac = compile(&networks::student()).unwrap();
        let report = Problp::new(&ac)
            .query(QueryType::Marginal)
            .tolerance(Tolerance::Absolute(0.01))
            .run()
            .unwrap();
        assert!(report.hardware.verilog.contains("problp_ac_top"));
        assert!(report.hardware.stats.pipeline_depth >= 1);
        assert!(report.hardware.gate_level_nj > 0.0);
        // Gate-level and model-level estimates agree within a small factor
        // (the paper's post-synthesis column matches its predictions).
        let ratio = report.hardware.gate_level_nj / report.selected.energy.total_nj();
        assert!(
            (0.4..=2.5).contains(&ratio),
            "gate-level {} vs model {} (ratio {ratio})",
            report.hardware.gate_level_nj,
            report.selected.energy.total_nj()
        );
    }

    #[test]
    fn measure_on_attaches_engine_backed_observations() {
        let net = networks::student();
        let ac = compile(&net).unwrap();
        let mut evidences = vec![Evidence::empty(net.var_count())];
        for v in 0..net.var_count() {
            let mut e = Evidence::empty(net.var_count());
            e.observe(VarId::from_index(v), 0);
            evidences.push(e);
        }
        let report = Problp::new(&ac)
            .query(QueryType::Marginal)
            .tolerance(Tolerance::Absolute(0.01))
            .skip_rtl()
            .measure_on(VarId::from_index(0), &evidences)
            .run()
            .unwrap();
        let observed = report.observed.expect("measurement requested");
        assert_eq!(observed.count, evidences.len());
        // The paper's guarantee, empirically: observed within the bound.
        assert!(observed.max_abs <= report.selected.bound);
        assert!(!observed.flags.range_violation());
        // Without the request, the field stays empty.
        let plain = Problp::new(&ac).skip_rtl().run().unwrap();
        assert!(plain.observed.is_none());
    }

    #[test]
    fn skip_rtl_omits_verilog() {
        let ac = compile(&networks::figure1()).unwrap();
        let report = Problp::new(&ac).skip_rtl().run().unwrap();
        assert!(report.hardware.verilog.is_empty());
        assert!(report.hardware.stats.pipeline_depth >= 1);
    }

    #[test]
    fn impossible_requirements_fail_cleanly() {
        let ac = compile(&networks::figure1()).unwrap();
        let err = Problp::new(&ac)
            .tolerance(Tolerance::Absolute(1e-300))
            .run()
            .unwrap_err();
        assert!(matches!(err, CoreError::NoFeasibleRepresentation { .. }));
    }

    #[test]
    fn report_display_is_complete() {
        let ac = compile(&networks::figure1()).unwrap();
        let report = Problp::new(&ac).skip_rtl().run().unwrap();
        let text = report.to_string();
        assert!(text.contains("selected"));
        assert!(text.contains("baseline"));
        assert!(text.contains("nJ/eval"));
    }

    #[test]
    fn optimize_ablation_never_costs_energy() {
        // Asia has deterministic CPTs: folding shrinks it, which can only
        // reduce the energy of the result.
        let ac = compile(&networks::asia()).unwrap();
        let plain = Problp::new(&ac).skip_rtl().run().unwrap();
        let opt = Problp::new(&ac)
            .optimize_circuit(true)
            .skip_rtl()
            .run()
            .unwrap();
        assert!(opt.circuit_stats.nodes < plain.circuit_stats.nodes);
        assert!(opt.selected.energy.total_nj() <= plain.selected.energy.total_nj());
        // The optimized hardware still meets the tolerance.
        assert!(opt.selected.bound <= 0.01);
    }

    #[test]
    fn leaf_model_ablation_never_hurts() {
        let ac = compile(&networks::student()).unwrap();
        let worst = Problp::new(&ac).skip_rtl().run().unwrap();
        let tight = Problp::new(&ac)
            .leaf_model(LeafErrorModel::Exact)
            .skip_rtl()
            .run()
            .unwrap();
        let f_worst = worst.fixed.unwrap().repr.as_fixed().unwrap().frac_bits();
        let f_tight = tight.fixed.unwrap().repr.as_fixed().unwrap().frac_bits();
        assert!(f_tight <= f_worst);
    }
}
