//! Error types for the framework pipeline.

use problp_ac::AcError;
use problp_bounds::BoundsError;
use problp_engine::EngineError;
use problp_hw::HwError;

/// Errors produced by the ProbLP pipeline.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A circuit-level operation failed.
    Circuit(AcError),
    /// An error-bound analysis failed.
    Bounds(BoundsError),
    /// Hardware generation failed.
    Hardware(HwError),
    /// Batched execution (tape compilation or evaluation) failed.
    Engine(EngineError),
    /// Neither fixed nor floating point can meet the requirements.
    NoFeasibleRepresentation {
        /// Why fixed point failed.
        fixed: BoundsError,
        /// Why floating point failed.
        float: BoundsError,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Circuit(e) => write!(f, "circuit error: {e}"),
            CoreError::Bounds(e) => write!(f, "bounds error: {e}"),
            CoreError::Hardware(e) => write!(f, "hardware error: {e}"),
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::NoFeasibleRepresentation { fixed, float } => write!(
                f,
                "no feasible representation: fixed failed ({fixed}); float failed ({float})"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Circuit(e) => Some(e),
            CoreError::Bounds(e) => Some(e),
            CoreError::Hardware(e) => Some(e),
            CoreError::Engine(e) => Some(e),
            CoreError::NoFeasibleRepresentation { .. } => None,
        }
    }
}

impl From<AcError> for CoreError {
    fn from(e: AcError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<BoundsError> for CoreError {
    fn from(e: BoundsError) -> Self {
        CoreError::Bounds(e)
    }
}

impl From<HwError> for CoreError {
    fn from(e: HwError) -> Self {
        CoreError::Hardware(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap_sources() {
        let e: CoreError = AcError::MissingRoot.into();
        assert!(matches!(e, CoreError::Circuit(_)));
        let e: CoreError = BoundsError::NotBinary.into();
        assert!(matches!(e, CoreError::Bounds(_)));
        let e: CoreError = HwError::NotBinary.into();
        assert!(matches!(e, CoreError::Hardware(_)));
    }

    #[test]
    fn display_includes_inner_message() {
        let e: CoreError = BoundsError::NotBinary.into();
        assert!(e.to_string().contains("binarized"));
        let both = CoreError::NoFeasibleRepresentation {
            fixed: BoundsError::FixedUnsupportedForQuery,
            float: BoundsError::RangeUnrepresentable,
        };
        assert!(both.to_string().contains("no feasible"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
