//! Criterion bench for the Figure 5(a) pipeline: fixed-point bound
//! computation and low-precision evaluation on the Alarm circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use problp_ac::Semiring;
use problp_bench::alarm_fixture;
use problp_bounds::{fixed_error_bound, fixed_query_bound, LeafErrorModel, QueryType, Tolerance};
use problp_num::{Arith, FixedArith, FixedFormat};

fn bench_fixed_sweep(c: &mut Criterion) {
    let fixture = alarm_fixture(8);
    let format = FixedFormat::new(1, 14).unwrap();

    c.bench_function("fig5a/bound_propagation", |b| {
        b.iter(|| {
            let bound = fixed_error_bound(
                black_box(&fixture.ac),
                &fixture.analysis,
                format,
                LeafErrorModel::WorstCase,
            )
            .unwrap();
            black_box(bound.root_bound())
        })
    });

    c.bench_function("fig5a/query_bound", |b| {
        b.iter(|| {
            black_box(
                fixed_query_bound(
                    &fixture.ac,
                    &fixture.analysis,
                    format,
                    QueryType::Marginal,
                    Tolerance::Absolute(1.0),
                    LeafErrorModel::WorstCase,
                )
                .unwrap(),
            )
        })
    });

    let evidence = &fixture.bench.test_evidence[0];
    c.bench_function("fig5a/lp_evaluation", |b| {
        b.iter(|| {
            let mut ctx = FixedArith::new(format);
            let v = fixture
                .ac
                .evaluate_with(&mut ctx, black_box(evidence), Semiring::SumProduct)
                .unwrap();
            black_box(ctx.to_f64(&v))
        })
    });

    c.bench_function("fig5a/exact_evaluation", |b| {
        b.iter(|| black_box(fixture.ac.evaluate(black_box(evidence)).unwrap()))
    });
}

criterion_group!(benches, bench_fixed_sweep);
criterion_main!(benches);
