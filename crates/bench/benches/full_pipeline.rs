//! Criterion bench for the Table 2 pipeline: the whole ProbLP framework
//! (analyses, bit-width search, energy comparison, selection) plus
//! compilation and hardware generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use problp_ac::{compile, transform::binarize};
use problp_bayes::networks;
use problp_bounds::{QueryType, Tolerance};
use problp_core::Problp;
use problp_hw::{emit_verilog, Netlist};
use problp_num::{FixedFormat, Representation};

fn bench_full_pipeline(c: &mut Criterion) {
    let alarm = networks::alarm(7);
    let alarm_ac = compile(&alarm).unwrap();

    c.bench_function("table2/compile_alarm", |b| {
        b.iter(|| black_box(compile(black_box(&alarm)).unwrap()))
    });

    c.bench_function("table2/binarize_alarm", |b| {
        b.iter(|| black_box(binarize(black_box(&alarm_ac)).unwrap()))
    });

    c.bench_function("table2/problp_run_alarm", |b| {
        b.iter(|| {
            black_box(
                Problp::new(black_box(&alarm_ac))
                    .query(QueryType::Marginal)
                    .tolerance(Tolerance::Absolute(0.01))
                    .skip_rtl()
                    .run()
                    .unwrap(),
            )
        })
    });

    let uiwads = problp_data::uiwads_benchmark(7);
    let uiwads_ac = compile(&uiwads.net).unwrap();
    c.bench_function("table2/problp_run_uiwads_conditional", |b| {
        b.iter(|| {
            black_box(
                Problp::new(black_box(&uiwads_ac))
                    .query(QueryType::Conditional)
                    .tolerance(Tolerance::Relative(0.01))
                    .skip_rtl()
                    .run()
                    .unwrap(),
            )
        })
    });

    let bin = binarize(&alarm_ac).unwrap();
    let repr = Representation::Fixed(FixedFormat::new(1, 14).unwrap());
    c.bench_function("table2/netlist_alarm", |b| {
        b.iter(|| black_box(Netlist::from_ac(black_box(&bin), repr).unwrap()))
    });

    let nl = Netlist::from_ac(&bin, repr).unwrap();
    c.bench_function("table2/verilog_alarm", |b| {
        b.iter(|| black_box(emit_verilog(black_box(&nl)).len()))
    });
}

criterion_group!(benches, bench_full_pipeline);
criterion_main!(benches);
