//! Criterion bench for the Table 1 pipeline: operator-level model
//! evaluation and whole-circuit energy estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use problp_ac::{compile, transform::binarize};
use problp_bayes::networks;
use problp_energy::{fixed_ac_energy, float_ac_energy, CellLibrary, EnergyModel, Tsmc65Model};
use problp_num::{FixedFormat, FloatFormat};

fn bench_energy_models(c: &mut Criterion) {
    let model = Tsmc65Model;
    let lib = CellLibrary::default();
    let fx = FixedFormat::new(1, 15).unwrap();
    let fl = FloatFormat::new(8, 13).unwrap();

    c.bench_function("table1/operator_models", |b| {
        b.iter(|| {
            let a = model.fixed_add_fj(black_box(fx));
            let m = model.fixed_mul_fj(black_box(fx));
            let fa = model.float_add_fj(black_box(fl));
            let fm = model.float_mul_fj(black_box(fl));
            black_box(a + m + fa + fm)
        })
    });

    c.bench_function("table1/gate_level_models", |b| {
        b.iter(|| {
            let a = lib.fixed_add_fj(black_box(fx));
            let m = lib.fixed_mul_fj(black_box(fx));
            let fa = lib.float_add_fj(black_box(fl));
            let fm = lib.float_mul_fj(black_box(fl));
            black_box(a + m + fa + fm)
        })
    });

    let alarm = binarize(&compile(&networks::alarm(7)).unwrap()).unwrap();
    c.bench_function("table1/alarm_circuit_energy", |b| {
        b.iter(|| {
            let fx_e = fixed_ac_energy(black_box(&alarm), fx, &model);
            let fl_e = float_ac_energy(black_box(&alarm), fl, &model);
            black_box(fx_e.total_nj() + fl_e.total_nj())
        })
    });
}

criterion_group!(benches, bench_energy_models);
criterion_main!(benches);
