//! Ablation benches for the design choices called out in `DESIGN.md`:
//! decomposition shape (balanced vs chain), leaf-error model (worst-case
//! vs exact), and the pipelined netlist simulator's throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use problp_ac::{compile, transform};
use problp_bayes::{networks, Evidence};
use problp_bounds::{fixed_error_bound, AcAnalysis, LeafErrorModel};
use problp_hw::{Netlist, PipelineSim};
use problp_num::{FixedArith, FixedFormat, Representation};

fn bench_ablations(c: &mut Criterion) {
    let net = networks::alarm(7);
    let raw = compile(&net).unwrap();
    let format = FixedFormat::new(1, 14).unwrap();

    // Ablation 1: balanced vs chain decomposition (depth, bound, energy
    // all differ; here we measure the transform cost and report shapes).
    c.bench_function("ablation/binarize_balanced", |b| {
        b.iter(|| black_box(transform::binarize(black_box(&raw)).unwrap()))
    });
    c.bench_function("ablation/binarize_chain", |b| {
        b.iter(|| black_box(transform::binarize_chain(black_box(&raw)).unwrap()))
    });

    let balanced = transform::binarize(&raw).unwrap();
    let chain = transform::binarize_chain(&raw).unwrap();
    eprintln!(
        "ablation shapes: balanced depth {}, chain depth {}",
        balanced.stats().depth,
        chain.stats().depth
    );

    // Ablation 2: leaf-error model.
    let analysis = AcAnalysis::new(&balanced).unwrap();
    c.bench_function("ablation/bound_worstcase_leaves", |b| {
        b.iter(|| {
            black_box(
                fixed_error_bound(&balanced, &analysis, format, LeafErrorModel::WorstCase)
                    .unwrap()
                    .root_bound(),
            )
        })
    });
    c.bench_function("ablation/bound_exact_leaves", |b| {
        b.iter(|| {
            black_box(
                fixed_error_bound(&balanced, &analysis, format, LeafErrorModel::Exact)
                    .unwrap()
                    .root_bound(),
            )
        })
    });

    // Ablation 3: hardware simulation throughput (one pipelined cycle).
    let nl = Netlist::from_ac(&balanced, Representation::Fixed(format)).unwrap();
    let e = Evidence::empty(net.var_count());
    c.bench_function("ablation/pipeline_cycle", |b| {
        let mut sim = PipelineSim::new(&nl, FixedArith::new(format));
        b.iter(|| black_box(sim.step(Some(black_box(&e))).unwrap()))
    });

    // Ablation 4: multiplier rounding mode in the software datapath.
    use problp_num::FixedRounding;
    c.bench_function("ablation/eval_halfup", |b| {
        b.iter(|| {
            let mut ctx = FixedArith::with_rounding(format, FixedRounding::HalfUp);
            black_box(
                balanced
                    .evaluate_with(&mut ctx, black_box(&e), problp_ac::Semiring::SumProduct)
                    .unwrap(),
            )
        })
    });
    c.bench_function("ablation/eval_truncate", |b| {
        b.iter(|| {
            let mut ctx = FixedArith::with_rounding(format, FixedRounding::Truncate);
            black_box(
                balanced
                    .evaluate_with(&mut ctx, black_box(&e), problp_ac::Semiring::SumProduct)
                    .unwrap(),
            )
        })
    });

    // Ablation 5: sequential accelerator (one full evaluation = one
    // instruction stream) vs one pipeline cycle above.
    let schedule = problp_hw::Schedule::from_netlist(&nl).unwrap();
    c.bench_function("ablation/schedule_execute", |b| {
        b.iter(|| {
            let mut ctx = FixedArith::new(format);
            black_box(schedule.execute(&mut ctx, black_box(&e)).unwrap())
        })
    });

    // Ablation 6: the optimisation pass on a foldable circuit.
    let asia = compile(&networks::asia()).unwrap();
    c.bench_function("ablation/optimize_asia", |b| {
        b.iter(|| black_box(problp_ac::optimize(black_box(&asia)).unwrap().1))
    });
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
