//! Criterion bench for the `problp-engine` execution subsystem: scalar
//! tree-walk vs single-lane tape vs batched multi-threaded tape on the
//! Alarm circuit, at batch sizes 1 / 64 / 1024.
//!
//! The per-`iter` unit is "evaluate the whole batch", so compare
//! like-sized rows: `scalar_tree_walk/1024` vs `tape_batched/1024` is the
//! headline (the ISSUE's >= 5x acceptance line).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use problp_ac::{compile, transform::binarize, Semiring};
use problp_bayes::{Evidence, EvidenceBatch};
use problp_engine::Engine;
use problp_num::F64Arith;

/// Builds the Alarm circuit and a cycle of single-variable evidences.
fn alarm_fixture() -> (problp_ac::AcGraph, Vec<Evidence>) {
    let net = problp_bayes::networks::alarm(7);
    let ac = binarize(&compile(&net).expect("alarm compiles")).expect("alarm binarizes");
    let evidences = problp_bayes::single_variable_evidences(ac.var_arities());
    (ac, evidences)
}

fn batch_of(evidences: &[Evidence], var_count: usize, lanes: usize) -> EvidenceBatch {
    let mut batch = EvidenceBatch::new(var_count);
    for i in 0..lanes {
        batch.push(&evidences[i % evidences.len()]);
    }
    batch
}

fn bench_engine_throughput(c: &mut Criterion) {
    let (ac, evidences) = alarm_fixture();
    let var_count = ac.var_count();
    let engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())
        .expect("alarm compiles to a tape");

    for lanes in [1usize, 64, 1024] {
        let batch = batch_of(&evidences, var_count, lanes);
        let instances: Vec<Evidence> = (0..lanes).map(|i| batch.evidence(i)).collect();

        // Baseline: the allocation-heavy scalar tree-walk of problp-ac.
        c.bench_function(&format!("scalar_tree_walk/{lanes}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for e in &instances {
                    acc += ac.evaluate(black_box(e)).unwrap();
                }
                black_box(acc)
            })
        });

        // Flat tape, one lane at a time (no SoA, no threads).
        c.bench_function(&format!("tape_single_lane/{lanes}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for e in &instances {
                    acc += engine.evaluate_one(black_box(e)).unwrap().0;
                }
                black_box(acc)
            })
        });

        // The batched SoA evaluator (threads engaged at larger sizes).
        c.bench_function(&format!("tape_batched/{lanes}"), |b| {
            b.iter(|| black_box(engine.evaluate_batch(black_box(&batch)).unwrap().values))
        });
    }
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
