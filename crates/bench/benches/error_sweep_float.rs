//! Criterion bench for the Figure 5(b) pipeline: floating-point bound
//! computation and soft-float evaluation on the Alarm circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use problp_ac::Semiring;
use problp_bench::alarm_fixture;
use problp_bounds::{float_error_bound, required_exp_bits};
use problp_num::{Arith, FloatArith, FloatFormat};

fn bench_float_sweep(c: &mut Criterion) {
    let fixture = alarm_fixture(8);
    let exp_bits = required_exp_bits(&fixture.analysis, 0.5).unwrap();
    let format = FloatFormat::new(exp_bits, 13).unwrap();

    c.bench_function("fig5b/bound_propagation", |b| {
        b.iter(|| {
            let bound =
                float_error_bound(black_box(&fixture.ac), &fixture.analysis, format).unwrap();
            black_box(bound.relative_bound())
        })
    });

    c.bench_function("fig5b/exp_bit_sizing", |b| {
        b.iter(|| black_box(required_exp_bits(&fixture.analysis, 0.01).unwrap()))
    });

    let evidence = &fixture.bench.test_evidence[0];
    c.bench_function("fig5b/lp_evaluation", |b| {
        b.iter(|| {
            let mut ctx = FloatArith::new(format);
            let v = fixture
                .ac
                .evaluate_with(&mut ctx, black_box(evidence), Semiring::SumProduct)
                .unwrap();
            black_box(ctx.to_f64(&v))
        })
    });

    // Soft-float operator microbenchmarks (the inner loop of every
    // experiment).
    c.bench_function("fig5b/softfloat_mul", |b| {
        let mut ctx = FloatArith::new(format);
        let x = ctx.from_f64(0.37);
        let y = ctx.from_f64(0.61);
        b.iter(|| {
            let v = ctx.mul(black_box(&x), black_box(&y));
            black_box(v)
        })
    });

    c.bench_function("fig5b/softfloat_add", |b| {
        let mut ctx = FloatArith::new(format);
        let x = ctx.from_f64(0.37);
        let y = ctx.from_f64(0.61);
        b.iter(|| {
            let v = ctx.add(black_box(&x), black_box(&y));
            black_box(v)
        })
    });
}

criterion_group!(benches, bench_float_sweep);
criterion_main!(benches);
