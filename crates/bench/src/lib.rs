//! # problp-bench — experiment harness for the ProbLP reproduction
//!
//! One function per table/figure of the paper's evaluation:
//!
//! * [`table1`] — the operator energy models (paper Table 1) next to the
//!   independent gate-level estimates;
//! * [`figure5a`] / [`figure5b`] — bound-vs-observed error sweeps on the
//!   Alarm circuit (paper Fig. 5);
//! * [`table2`] — the full framework on all four benchmarks (paper
//!   Table 2).
//!
//! The `reproduce` binary renders these as text tables and can emit the
//! `EXPERIMENTS.md` report; the Criterion benches in `benches/` measure
//! the runtime cost of each experiment's pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_json;

pub use bench_json::{
    cache_bench_record, conformance_bench_record, kernels_bench_record, qos_bench_record,
    serving_bench_record, validate_bench_json, verify_bench_record, BenchRecord, BENCH_SCHEMA,
};

use problp_ac::{compile, transform::binarize, AcGraph};
use problp_bounds::{
    fixed_query_bound, float_query_bound, AcAnalysis, BoundsError, LeafErrorModel, QueryType,
    Tolerance,
};
use problp_core::{gate_level_energy_nj, measure_errors, Problp};
use problp_data::Benchmark;
use problp_energy::{CellLibrary, EnergyModel, Tsmc65Model};
use problp_hw::Netlist;
use problp_num::{FixedFormat, FloatFormat, Representation};

/// Default RNG seed for every experiment (reproducible end to end).
pub const SEED: u64 = 7;

/// Renders Table 1: the fitted operator-level energy models, with the
/// gate-level structural estimates alongside (the reproduction's
/// "post-synthesis" stand-in).
pub fn table1() -> String {
    let model = Tsmc65Model;
    let lib = CellLibrary::default();
    let mut out = String::new();
    out.push_str("Table 1: energy models for arithmetic operators at 1 V (fJ/op)\n");
    out.push_str("  fitted model (paper)                 | this repo's gate-level estimate\n");
    out.push_str(&format!(
        "{:>6} | {:>10} | {:>10} | {:>10} | {:>10} || {:>9} | {:>9} | {:>9} | {:>9}\n",
        "bits",
        "fx add",
        "fx mul",
        "fl add",
        "fl mul",
        "g fx add",
        "g fx mul",
        "g fl add",
        "g fl mul"
    ));
    out.push_str(&format!("{}\n", "-".repeat(118)));
    for bits in [8u32, 12, 16, 20, 24, 32] {
        let fx = FixedFormat::new(1, bits - 1).expect("valid format");
        let fl = FloatFormat::new(8, bits - 1).expect("valid format");
        out.push_str(&format!(
            "{bits:>6} | {:>10.1} | {:>10.1} | {:>10.1} | {:>10.1} || {:>9.1} | {:>9.1} | {:>9.1} | {:>9.1}\n",
            model.fixed_add_fj(fx),
            model.fixed_mul_fj(fx),
            model.float_add_fj(fl),
            model.float_mul_fj(fl),
            lib.fixed_add_fj(fx),
            lib.fixed_mul_fj(fx),
            lib.float_add_fj(fl),
            lib.float_mul_fj(fl),
        ));
    }
    out.push_str("\nmodels: fx add 7.8N | fx mul 1.9 N^2 log2 N | fl add 44.74 (M+1) | fl mul 2.9 (M+1)^2 log2(M+1)\n");
    out
}

/// One point of a Figure 5 sweep.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepPoint {
    /// Fraction (5a) or mantissa (5b) bits.
    pub bits: u32,
    /// The analytical worst-case bound.
    pub bound: f64,
    /// Largest error observed on the test set.
    pub max_observed: f64,
    /// Mean error observed on the test set.
    pub mean_observed: f64,
}

/// The Alarm fixture shared by Figure 5 and Table 2.
pub struct AlarmFixture {
    /// The benchmark (network, query variable, test evidences).
    pub bench: Benchmark,
    /// The binarized circuit.
    pub ac: AcGraph,
    /// Its value-range analysis.
    pub analysis: AcAnalysis,
}

/// Builds the Alarm fixture with `instances` sampled test records (the
/// paper uses 1000).
pub fn alarm_fixture(instances: usize) -> AlarmFixture {
    let bench = problp_data::alarm_benchmark(SEED, instances);
    let ac = binarize(&compile(&bench.net).expect("alarm compiles")).expect("alarm binarizes");
    let analysis = AcAnalysis::new(&ac).expect("alarm analyzes");
    AlarmFixture {
        bench,
        ac,
        analysis,
    }
}

/// Figure 5(a): fixed-point marginal query on Alarm — analytical bound
/// and observed mean/max absolute error versus fraction bits (I = 1,
/// F = 8..=40 in the paper).
pub fn figure5a(fixture: &AlarmFixture, frac_bits: &[u32]) -> Vec<SweepPoint> {
    frac_bits
        .iter()
        .map(|&frac| {
            let format = FixedFormat::new(1, frac).expect("valid format");
            let bound = fixed_query_bound(
                &fixture.ac,
                &fixture.analysis,
                format,
                QueryType::Marginal,
                Tolerance::Absolute(1.0),
                LeafErrorModel::WorstCase,
            )
            .expect("bound computes");
            let stats = measure_errors(
                &fixture.ac,
                Representation::Fixed(format),
                QueryType::Marginal,
                fixture.bench.query_var,
                &fixture.bench.test_evidence,
            )
            .expect("measurement runs");
            SweepPoint {
                bits: frac,
                bound,
                max_observed: stats.max_abs,
                mean_observed: stats.mean_abs,
            }
        })
        .collect()
}

/// Figure 5(b): floating-point marginal query on Alarm — analytical bound
/// and observed mean/max relative error versus mantissa bits (E fixed by
/// the max-min analysis, M = 8..=40 in the paper).
pub fn figure5b(fixture: &AlarmFixture, mant_bits: &[u32]) -> Vec<SweepPoint> {
    let exp_bits =
        problp_bounds::required_exp_bits(&fixture.analysis, 0.5).expect("range representable");
    mant_bits
        .iter()
        .map(|&mant| {
            let format = FloatFormat::new(exp_bits, mant).expect("valid format");
            let bound = float_query_bound(
                &fixture.ac,
                &fixture.analysis,
                format,
                QueryType::Marginal,
                Tolerance::Relative(1.0),
            )
            .expect("bound computes");
            let stats = measure_errors(
                &fixture.ac,
                Representation::Float(format),
                QueryType::Marginal,
                fixture.bench.query_var,
                &fixture.bench.test_evidence,
            )
            .expect("measurement runs");
            SweepPoint {
                bits: mant,
                bound,
                max_observed: stats.max_rel,
                mean_observed: stats.mean_rel,
            }
        })
        .collect()
}

/// Renders a Figure 5 sweep as a text series.
pub fn render_sweep(title: &str, metric: &str, points: &[SweepPoint]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:>6} | {:>12} | {:>12} | {:>12} | bound/observed\n",
        "bits", "bound", metric, "mean"
    ));
    out.push_str(&format!("{}\n", "-".repeat(68)));
    for p in points {
        let ratio = if p.max_observed > 0.0 {
            format!("{:>10.1}x", p.bound / p.max_observed)
        } else {
            "        inf".to_string()
        };
        out.push_str(&format!(
            "{:>6} | {:>12.3e} | {:>12.3e} | {:>12.3e} | {ratio}\n",
            p.bits, p.bound, p.max_observed, p.mean_observed
        ));
    }
    out
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub ac_name: String,
    /// Query type.
    pub query: QueryType,
    /// Error tolerance.
    pub tolerance: Tolerance,
    /// Optimal fixed representation and its predicted energy, or the
    /// failure (`>64` idiom / not applicable).
    pub fixed: Result<(FixedFormat, f64), BoundsError>,
    /// Optimal float representation and its predicted energy.
    pub float: Result<(FloatFormat, f64), BoundsError>,
    /// Whether the selected representation is the fixed one.
    pub selected_fixed: bool,
    /// Max error observed on the test set with the selected
    /// representation (in the tolerance's metric).
    pub max_observed: f64,
    /// Gate-level ("post-synthesis" stand-in) energy of the selected
    /// datapath, nJ/eval.
    pub gate_level_nj: f64,
    /// Energy with 32-bit float operators, nJ/eval.
    pub float32_nj: f64,
}

/// The paper's Table 2 row list: benchmark × (query, tolerance metric)
/// combinations.
pub fn table2_combos() -> Vec<(&'static str, QueryType, Tolerance)> {
    vec![
        ("HAR", QueryType::Marginal, Tolerance::Absolute(0.01)),
        ("HAR", QueryType::Marginal, Tolerance::Relative(0.01)),
        ("HAR", QueryType::Conditional, Tolerance::Absolute(0.01)),
        ("HAR", QueryType::Conditional, Tolerance::Relative(0.01)),
        ("UNIMIB", QueryType::Marginal, Tolerance::Absolute(0.01)),
        ("UNIMIB", QueryType::Conditional, Tolerance::Relative(0.01)),
        ("UIWADS", QueryType::Marginal, Tolerance::Absolute(0.01)),
        ("UIWADS", QueryType::Marginal, Tolerance::Relative(0.01)),
        ("Alarm", QueryType::Marginal, Tolerance::Absolute(0.01)),
        ("Alarm", QueryType::Conditional, Tolerance::Relative(0.01)),
    ]
}

/// Builds the named benchmark (test set truncated to `instances`).
pub fn benchmark_by_name(name: &str, instances: usize) -> Benchmark {
    let mut bench = match name {
        "HAR" => problp_data::har_benchmark(SEED),
        "UNIMIB" => problp_data::unimib_benchmark(SEED),
        "UIWADS" => problp_data::uiwads_benchmark(SEED),
        "Alarm" => problp_data::alarm_benchmark(SEED, instances),
        other => panic!("unknown benchmark {other}"),
    };
    bench.test_evidence.truncate(instances);
    if let Some(labels) = &mut bench.test_labels {
        labels.truncate(instances);
    }
    // Keep the dataset aligned row-for-row with the truncated evidence
    // (`truncated` never returns an empty dataset, so drop it instead
    // when nothing is left).
    let kept = bench.test_evidence.len();
    bench.test_dataset = match bench.test_dataset.take() {
        Some(ds) if kept > 0 => Some(ds.truncated(kept)),
        _ => None,
    };
    bench
}

/// Runs one Table 2 row end to end. The observed-error measurement rides
/// inside the pipeline ([`Problp::measure_on`]), which bulk-evaluates the
/// test set through the batched execution engine.
pub fn table2_row(bench: &Benchmark, query: QueryType, tolerance: Tolerance) -> Table2Row {
    let raw = compile(&bench.net).expect("benchmark compiles");
    let report = Problp::new(&raw)
        .query(query)
        .tolerance(tolerance)
        .skip_rtl()
        .measure_on(bench.query_var, &bench.test_evidence)
        .run()
        .expect("at least one representation is feasible");
    let bin = binarize(&raw).expect("benchmark binarizes");
    let stats = report.observed.expect("measurement requested");
    let max_observed = match tolerance {
        Tolerance::Absolute(_) => stats.max_abs,
        Tolerance::Relative(_) => stats.max_rel,
    };
    // Gate-level estimate for the selected datapath.
    let nl = Netlist::from_ac(&bin, report.selected.repr).expect("netlist builds");
    let gate_level_nj =
        gate_level_energy_nj(&nl.stats(), report.selected.repr, &CellLibrary::default());
    let fixed = match (&report.fixed, &report.fixed_failure) {
        (Some(c), _) => Ok((
            c.repr.as_fixed().expect("fixed candidate"),
            c.energy.total_nj(),
        )),
        (None, Some(e)) => Err(e.clone()),
        _ => unreachable!("candidate or failure always present"),
    };
    let float = match (&report.float, &report.float_failure) {
        (Some(c), _) => Ok((
            c.repr.as_float().expect("float candidate"),
            c.energy.total_nj(),
        )),
        (None, Some(e)) => Err(e.clone()),
        _ => unreachable!("candidate or failure always present"),
    };
    Table2Row {
        ac_name: bench.name.clone(),
        query,
        tolerance,
        fixed,
        float,
        selected_fixed: report.selected.repr.is_fixed(),
        max_observed,
        gate_level_nj,
        float32_nj: report.baseline_float32_nj,
    }
}

/// Runs all of Table 2 (test sets truncated to `instances` per
/// benchmark).
pub fn table2(instances: usize) -> Vec<Table2Row> {
    let mut cache: std::collections::HashMap<&str, Benchmark> = std::collections::HashMap::new();
    table2_combos()
        .into_iter()
        .map(|(name, query, tolerance)| {
            let bench = cache
                .entry(name)
                .or_insert_with(|| benchmark_by_name(name, instances));
            table2_row(bench, query, tolerance)
        })
        .collect()
}

/// Renders Table 2 as a text table (the `*` marks the selected
/// representation, mirroring the paper's bold).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 2: optimal representations, selected repr (*), observed error and energy\n",
    );
    out.push_str(&format!(
        "{:>7} | {:>11} | {:>12} | {:>20} | {:>20} | {:>10} | {:>11} | {:>9}\n",
        "AC",
        "query",
        "tolerance",
        "opt fx I,F (nJ)",
        "opt fl E,M (nJ)",
        "max obs.",
        "gate (nJ)",
        "32b (nJ)"
    ));
    out.push_str(&format!("{}\n", "-".repeat(122)));
    for r in rows {
        let fixed = match &r.fixed {
            Ok((f, e)) => format!(
                "{}{},{} ({:.2})",
                if r.selected_fixed { "*" } else { "" },
                f.int_bits(),
                f.frac_bits(),
                e
            ),
            Err(BoundsError::ToleranceUnreachable { max_bits, .. }) => {
                format!("1,>{max_bits} ( - )")
            }
            Err(BoundsError::FixedUnsupportedForQuery) => "-".to_string(),
            Err(other) => format!("{other:?}"),
        };
        let float = match &r.float {
            Ok((f, e)) => format!(
                "{}{},{} ({:.2})",
                if r.selected_fixed { "" } else { "*" },
                f.exp_bits(),
                f.mant_bits(),
                e
            ),
            Err(e) => format!("{e:?}"),
        };
        out.push_str(&format!(
            "{:>7} | {:>11} | {:>12} | {:>20} | {:>20} | {:>10.1e} | {:>11.2} | {:>9.2}\n",
            r.ac_name,
            r.query.to_string(),
            r.tolerance.to_string(),
            fixed,
            float,
            r.max_observed,
            r.gate_level_nj,
            r.float32_nj
        ));
    }
    out
}

/// The downstream impact of low precision on classification: accuracy of
/// exact versus low-precision posteriors, and how often the predicted
/// class agrees.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AccuracyImpact {
    /// Classification accuracy with exact (f64) inference.
    pub exact_accuracy: f64,
    /// Classification accuracy with the selected low-precision format.
    pub lp_accuracy: f64,
    /// Fraction of instances where both agree on the predicted class.
    pub agreement: f64,
    /// Number of evaluated test instances.
    pub instances: usize,
}

/// Measures the classification impact of the representation ProbLP
/// selects for conditional queries at the given absolute tolerance — the
/// paper's motivating scenario (§1: threshold-based decisions are only
/// affected inside the tolerance band).
pub fn classification_impact(bench: &Benchmark, tolerance: f64) -> AccuracyImpact {
    use problp_ac::Semiring;
    use problp_num::{Arith, F64Arith, FixedArith, FloatArith};

    let raw = compile(&bench.net).expect("benchmark compiles");
    let report = Problp::new(&raw)
        .query(QueryType::Conditional)
        .tolerance(Tolerance::Absolute(tolerance))
        .skip_rtl()
        .run()
        .expect("a representation is feasible");
    let ac = binarize(&raw).expect("binarizes");
    let labels = bench.test_labels.as_ref().expect("classifier benchmark");
    let classes = bench.net.variable(bench.query_var).arity();

    let mut exact_correct = 0usize;
    let mut lp_correct = 0usize;
    let mut agree = 0usize;
    for (e, &label) in bench.test_evidence.iter().zip(labels) {
        // Exact posteriors (numerators share a denominator, so argmax of
        // the numerators suffices).
        let mut exact_ctx = F64Arith::new();
        let argmax_exact = argmax_class(&ac, &mut exact_ctx, e, bench, classes);
        // Low-precision posteriors in the selected representation.
        let argmax_lp = match report.selected.repr {
            problp_num::Representation::Fixed(f) => {
                let mut ctx = FixedArith::new(f);
                argmax_class(&ac, &mut ctx, e, bench, classes)
            }
            problp_num::Representation::Float(f) => {
                let mut ctx = FloatArith::new(f);
                argmax_class(&ac, &mut ctx, e, bench, classes)
            }
        };
        exact_correct += (argmax_exact == label) as usize;
        lp_correct += (argmax_lp == label) as usize;
        agree += (argmax_exact == argmax_lp) as usize;
    }
    let n = bench.test_evidence.len();

    fn argmax_class<A: Arith>(
        ac: &AcGraph,
        ctx: &mut A,
        e: &problp_bayes::Evidence,
        bench: &Benchmark,
        classes: usize,
    ) -> usize {
        let mut best = (0usize, f64::NEG_INFINITY);
        for c in 0..classes {
            let mut with_q = e.clone();
            with_q.observe(bench.query_var, c);
            let v = ac
                .evaluate_with(ctx, &with_q, Semiring::SumProduct)
                .expect("evaluates");
            let v = ctx.to_f64(&v);
            if v > best.1 {
                best = (c, v);
            }
        }
        best.0
    }

    AccuracyImpact {
        exact_accuracy: exact_correct as f64 / n as f64,
        lp_accuracy: lp_correct as f64 / n as f64,
        agreement: agree as f64 / n as f64,
        instances: n,
    }
}

/// Renders the classification-impact study for the three classifier
/// benchmarks.
pub fn accuracy_report(instances: usize) -> String {
    let mut out = String::new();
    out.push_str("Classification impact of the selected low-precision representation (tol 0.01)\n");
    out.push_str(&format!(
        "{:>8} | {:>10} | {:>10} | {:>10} | instances\n",
        "dataset", "exact acc", "lp acc", "agreement"
    ));
    out.push_str(&format!("{}\n", "-".repeat(62)));
    for name in ["HAR", "UNIMIB", "UIWADS"] {
        let bench = benchmark_by_name(name, instances);
        let impact = classification_impact(&bench, 0.01);
        out.push_str(&format!(
            "{name:>8} | {:>10.4} | {:>10.4} | {:>10.4} | {}\n",
            impact.exact_accuracy, impact.lp_accuracy, impact.agreement, impact.instances
        ));
    }
    out
}

/// One row of the per-precision classifier accuracy study: how one
/// number format serves the benchmark's test set.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// The representation (or `"f64"` for the exact reference).
    pub repr: String,
    /// Classification accuracy of the engine-served predictions.
    pub accuracy: f64,
    /// Fraction of instances predicted identically to exact `f64`.
    pub agreement: f64,
    /// Whether any lane raised a range violation (overflow/underflow) —
    /// formats ProbLP's bit-sizing would have rejected.
    pub range_violation: bool,
}

/// The per-precision classifier accuracy study of one benchmark.
#[derive(Clone, Debug)]
pub struct AccuracyStudy {
    /// Benchmark name.
    pub name: String,
    /// Evaluated test instances.
    pub instances: usize,
    /// Accuracy with exact `f64` inference (the `repr = "f64"` row's
    /// baseline; its agreement is 1 by definition).
    pub exact_accuracy: f64,
    /// One row per evaluated representation, fixed then float.
    pub rows: Vec<AccuracyRow>,
}

/// Runs the end-to-end batched serving path on a classifier benchmark:
/// the labeled test split is packed into one columnar batch
/// ([`problp_bayes::EvidenceBatch::from_dataset`]), and for each precision the engine
/// serves the class posterior of every instance as joint/marginal lane
/// pairs ([`problp_engine::Engine::conditional_batch`]); the per-lane
/// joint argmax is the prediction. This is the classifier-accuracy
/// counterpart of Table 2: where the table reports worst-case *error*
/// per selected format, this reports downstream *accuracy* per format.
///
/// # Panics
///
/// Panics if the benchmark is not a classifier benchmark (no
/// `test_dataset`), or a format is invalid.
pub fn accuracy_study(bench: &Benchmark, frac_bits: &[u32], mant_bits: &[u32]) -> AccuracyStudy {
    use problp_ac::Semiring;
    use problp_bayes::EvidenceBatch;
    use problp_engine::{Engine, KernelSet, Tape};
    use problp_num::{F64Arith, FixedArith, FloatArith};

    let ds = bench
        .test_dataset
        .as_ref()
        .expect("accuracy study needs a classifier benchmark with a test dataset");
    let ac = compile(&bench.net).expect("benchmark compiles");
    let batch = EvidenceBatch::from_dataset(ds, &bench.evidence_vars, bench.net.var_count())
        .expect("dataset matches the benchmark's evidence variables");
    let labels = ds.labels();

    // The tape is number-system agnostic: compile once, bind each
    // precision to a clone (the pattern `measure_errors` uses).
    let tape = Tape::compile(&ac, Semiring::SumProduct).expect("benchmark compiles to a tape");
    let exact_engine = Engine::new(tape.clone(), F64Arith::new());
    let exact = exact_engine
        .conditional_batch(&batch, bench.query_var)
        .expect("serves");
    let accuracy_of = |preds: &[usize]| {
        preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
    };
    let agreement_of = |preds: &[usize]| {
        preds
            .iter()
            .zip(&exact.predictions)
            .filter(|(p, e)| p == e)
            .count() as f64
            / labels.len() as f64
    };

    fn serve<A>(
        tape: &Tape,
        batch: &problp_bayes::EvidenceBatch,
        query_var: problp_bayes::VarId,
        ctx: A,
    ) -> (Vec<usize>, bool)
    where
        A: KernelSet + Clone + Send + Sync,
        A::Value: Clone + Send + Sync,
    {
        let engine = Engine::new(tape.clone(), ctx);
        let r = engine.conditional_batch(batch, query_var).expect("serves");
        (r.predictions, r.flags.range_violation())
    }

    let mut rows = Vec::new();
    let mut record = |repr: String, (predictions, range_violation): (Vec<usize>, bool)| {
        rows.push(AccuracyRow {
            repr,
            accuracy: accuracy_of(&predictions),
            agreement: agreement_of(&predictions),
            range_violation,
        });
    };
    for &f in frac_bits {
        let format = FixedFormat::new(1, f).expect("valid fixed format");
        let ctx = FixedArith::new(format);
        record(
            format!("fx 1,{f}"),
            serve(&tape, &batch, bench.query_var, ctx),
        );
    }
    for &m in mant_bits {
        let format = FloatFormat::new(8, m).expect("valid float format");
        let ctx = FloatArith::new(format);
        record(
            format!("fl 8,{m}"),
            serve(&tape, &batch, bench.query_var, ctx),
        );
    }
    AccuracyStudy {
        name: bench.name.clone(),
        instances: labels.len(),
        exact_accuracy: accuracy_of(&exact.predictions),
        rows,
    }
}

/// The default precision grid of the accuracy study (fraction and
/// mantissa bits).
pub const ACCURACY_BITS: [u32; 6] = [4, 6, 8, 12, 16, 24];

/// Renders one accuracy study as a text table.
pub fn render_accuracy_study(study: &AccuracyStudy) -> String {
    let mut out = format!(
        "{}: per-precision classifier accuracy ({} engine-served test instances)\n",
        study.name, study.instances
    );
    out.push_str(&format!(
        "{:>8} | {:>10} | {:>12} | range violation\n",
        "repr", "accuracy", "vs f64"
    ));
    out.push_str(&format!("{}\n", "-".repeat(54)));
    out.push_str(&format!(
        "{:>8} | {:>10.4} | {:>12.4} | no\n",
        "f64", study.exact_accuracy, 1.0
    ));
    for r in &study.rows {
        out.push_str(&format!(
            "{:>8} | {:>10.4} | {:>12.4} | {}\n",
            r.repr,
            r.accuracy,
            r.agreement,
            if r.range_violation { "YES" } else { "no" }
        ));
    }
    out
}

/// Runs and renders the accuracy study for the three classifier
/// benchmarks on the default precision grid — the `problp accuracy`
/// subcommand and the `reproduce accuracy` section.
pub fn accuracy_study_report(names: &[&str], instances: usize) -> String {
    let instances = instances.max(1);
    let mut out = String::new();
    for name in names {
        let bench = benchmark_by_name(name, instances);
        let study = accuracy_study(&bench, &ACCURACY_BITS, &ACCURACY_BITS);
        out.push_str(&render_accuracy_study(&study));
        out.push('\n');
    }
    out
}

/// Renders the missing-data robustness study: the paper's introduction
/// motivates PGMs by their ability to handle missing inputs — an absent
/// sensor is simply marginalized (its indicators stay 1). Crucially, the
/// worst-case bounds hold for *every* indicator pattern, so the same
/// hardware keeps its guarantee under dropout.
pub fn missing_data_report(instances: usize, tolerance: f64) -> String {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let bench = benchmark_by_name("UIWADS", instances);
    let raw = compile(&bench.net).expect("compiles");
    let report = Problp::new(&raw)
        .query(QueryType::Conditional)
        .tolerance(Tolerance::Absolute(tolerance))
        .skip_rtl()
        .run()
        .expect("feasible");
    let ac = binarize(&raw).expect("binarizes");
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xD207);

    let mut out = String::new();
    out.push_str(&format!(
        "Missing-data robustness (UIWADS, {}, tol {tolerance}):\n",
        report.selected.repr
    ));
    out.push_str(&format!(
        "{:>10} | {:>10} | {:>12} | within bound\n",
        "dropout", "exact acc", "max lp err"
    ));
    out.push_str(&format!("{}\n", "-".repeat(52)));
    for dropout in [0.0f64, 0.25, 0.5, 0.75] {
        // Degrade the evidence: each observed feature survives with
        // probability 1 - dropout.
        let degraded: Vec<problp_bayes::Evidence> = bench
            .test_evidence
            .iter()
            .map(|e| {
                let mut d = e.clone();
                for (var, _) in e.iter() {
                    if rng.random::<f64>() < dropout {
                        d.forget(var);
                    }
                }
                d
            })
            .collect();
        let stats = measure_errors(
            &ac,
            report.selected.repr,
            QueryType::Conditional,
            bench.query_var,
            &degraded,
        )
        .expect("measures");
        // Exact accuracy under dropout (posterior argmax vs label).
        let labels = bench.test_labels.as_ref().expect("labels");
        let classes = bench.net.variable(bench.query_var).arity();
        let correct = degraded
            .iter()
            .zip(labels)
            .filter(|(e, label)| {
                let den = ac.evaluate(e).expect("evaluates");
                let best = (0..classes)
                    .max_by(|&x, &y| {
                        let px = {
                            let mut q = (*e).clone();
                            q.observe(bench.query_var, x);
                            ac.evaluate(&q).expect("evaluates")
                        };
                        let py = {
                            let mut q = (*e).clone();
                            q.observe(bench.query_var, y);
                            ac.evaluate(&q).expect("evaluates")
                        };
                        px.partial_cmp(&py).expect("finite")
                    })
                    .expect("classes");
                let _ = den;
                best == **label
            })
            .count();
        out.push_str(&format!(
            "{:>9.0}% | {:>10.4} | {:>12.3e} | {}\n",
            dropout * 100.0,
            correct as f64 / degraded.len() as f64,
            stats.max_abs,
            if stats.max_abs <= report.selected.bound {
                "yes"
            } else {
                "NO"
            }
        ));
    }
    out.push_str(
        "\naccuracy degrades gracefully; the error guarantee holds at every dropout level\n",
    );
    out
}

/// One row of the bulk-inference throughput study.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ThroughputPoint {
    /// Evidence instances per engine sweep.
    pub batch: usize,
    /// Scalar tree-walk evaluations per second.
    pub scalar_eps: f64,
    /// Single-lane tape evaluations per second.
    pub tape_eps: f64,
    /// Batched multi-threaded engine evaluations per second.
    pub batched_eps: f64,
}

impl ThroughputPoint {
    /// Speedup of the batched engine over the scalar tree-walk.
    pub fn speedup(&self) -> f64 {
        self.batched_eps / self.scalar_eps
    }
}

/// Runs `f` repeatedly for at least ~0.2 s and returns its rate in calls
/// per second, scaled by `evals_per_call`.
fn rate_of(mut f: impl FnMut(), evals_per_call: usize) -> f64 {
    use std::time::Instant;
    // Warm caches and the branch predictor.
    f();
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_secs_f64() < 0.2 {
        f();
        calls += 1;
    }
    calls as f64 * evals_per_call as f64 / start.elapsed().as_secs_f64()
}

/// Measures bulk marginal-inference throughput on the Alarm circuit:
/// scalar tree-walk vs single-lane tape vs the batched multi-threaded
/// engine, at the given batch sizes. `threads = 0` uses all cores.
pub fn throughput_points(batch_sizes: &[usize], threads: usize) -> Vec<ThroughputPoint> {
    use problp_ac::Semiring;
    use problp_bayes::{Evidence, EvidenceBatch};
    use problp_engine::Engine;
    use problp_num::F64Arith;

    let net = problp_bayes::networks::alarm(SEED);
    let ac = binarize(&compile(&net).expect("alarm compiles")).expect("alarm binarizes");
    let mut engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())
        .expect("alarm compiles to a tape");
    if threads > 0 {
        engine = engine.with_threads(threads);
    }

    // Cycle through the single-variable evidences, the same pool the
    // error sweeps draw from.
    let pool = problp_bayes::single_variable_evidences(ac.var_arities());

    batch_sizes
        .iter()
        .map(|&batch_size| {
            let instances: Vec<Evidence> = (0..batch_size)
                .map(|i| pool[i % pool.len()].clone())
                .collect();
            let mut batch = EvidenceBatch::new(net.var_count());
            for e in &instances {
                batch.push(e);
            }
            let scalar_eps = rate_of(
                || {
                    for e in &instances {
                        std::hint::black_box(ac.evaluate(e).expect("evaluates"));
                    }
                },
                batch_size,
            );
            let tape_eps = rate_of(
                || {
                    for e in &instances {
                        std::hint::black_box(engine.evaluate_one(e).expect("evaluates"));
                    }
                },
                batch_size,
            );
            let batched_eps = rate_of(
                || {
                    std::hint::black_box(engine.evaluate_batch(&batch).expect("evaluates"));
                },
                batch_size,
            );
            ThroughputPoint {
                batch: batch_size,
                scalar_eps,
                tape_eps,
                batched_eps,
            }
        })
        .collect()
}

/// Renders the throughput study (the execution-engine counterpart of the
/// criterion bench `engine_throughput`).
pub fn throughput_report(threads: usize) -> String {
    let points = throughput_points(&[1, 64, 1024], threads);
    let mut out = String::new();
    out.push_str("Bulk inference throughput on Alarm (marginal, f64, evals/s)\n");
    out.push_str(&format!(
        "{:>6} | {:>12} | {:>12} | {:>14} | speedup vs scalar\n",
        "batch", "tree-walk", "tape x1", "batched tape"
    ));
    out.push_str(&format!("{}\n", "-".repeat(72)));
    for p in &points {
        out.push_str(&format!(
            "{:>6} | {:>12.0} | {:>12.0} | {:>14.0} | {:>12.1}x\n",
            p.batch,
            p.scalar_eps,
            p.tape_eps,
            p.batched_eps,
            p.speedup()
        ));
    }
    out
}

/// One arithmetic's row of the evaluator-kernel study ([`kernel_study`]):
/// the same batched sweep, single-threaded, under each [`problp_engine::KernelKind`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KernelStudyRow {
    /// Arithmetic label (`f64` or `fixed:I.F`).
    pub arith: &'static str,
    /// Scalar-kernel batched engine evaluations per second.
    pub scalar_eps: f64,
    /// SIMD lane-chunked kernel evaluations per second.
    pub simd_eps: f64,
    /// Fused superinstruction (SIMD-backed) evaluations per second.
    pub fused_eps: f64,
}

impl KernelStudyRow {
    /// Speedup of the SIMD kernels over the scalar tape walk.
    pub fn simd_speedup(&self) -> f64 {
        self.simd_eps / self.scalar_eps
    }

    /// Speedup of the fused stream over the scalar tape walk.
    pub fn fused_speedup(&self) -> f64 {
        self.fused_eps / self.scalar_eps
    }
}

/// The evaluator-kernel study: single-core Alarm marginal sweeps at one
/// batch size, scalar vs SIMD vs fused kernels per arithmetic, with the
/// fusion statistics and an in-run bit-identity cross-check.
#[derive(Clone, Debug)]
pub struct KernelStudy {
    /// Evidence lanes per sweep.
    pub batch: usize,
    /// One row per arithmetic.
    pub rows: Vec<KernelStudyRow>,
    /// `true` when every kernel's results matched the scalar walk bit
    /// for bit during the study itself.
    pub identical: bool,
    /// The compact tape's fusion statistics.
    pub fuse: problp_engine::FuseStats,
}

/// Measures the evaluator kernels on the Alarm circuit: batched
/// marginals at `batch_size` lanes on a single engine thread, under f64
/// and the paper's fixed-point serving format, for each
/// [`problp_engine::KernelKind`]. Every fast-path sweep is cross-checked
/// bit for bit against the scalar kernel while being timed.
pub fn kernel_study(batch_size: usize) -> KernelStudy {
    use problp_ac::Semiring;
    use problp_bayes::{Evidence, EvidenceBatch};
    use problp_engine::{Engine, KernelKind};
    use problp_num::{F64Arith, FixedArith};

    let net = problp_bayes::networks::alarm(SEED);
    // The raw (non-binarized) circuit: the tape lowers k-ary nodes to
    // contiguous accumulator chains itself, which is exactly the shape
    // `Tape::fuse` collapses into Reduce superinstructions. Binarizing
    // first would split those chains into separate registers and hide
    // the fusion win the study exists to measure.
    let ac = compile(&net).expect("alarm compiles");
    let pool = problp_bayes::single_variable_evidences(ac.var_arities());
    let instances: Vec<Evidence> = (0..batch_size.max(1))
        .map(|i| pool[i % pool.len()].clone())
        .collect();
    let mut batch = EvidenceBatch::new(net.var_count());
    for e in &instances {
        batch.push(e);
    }

    // One engine per kernel, built outside the timed region (so the
    // fusion pass is setup cost, exactly as in a serving deployment),
    // each timed on the same batch. The result bit streams double as an
    // in-run cross-check against the scalar kernel.
    fn measure_row<A>(
        arith: &'static str,
        base: &Engine<A>,
        batch: &problp_bayes::EvidenceBatch,
        identical: &mut bool,
    ) -> KernelStudyRow
    where
        A: problp_engine::KernelSet + Clone + Send + Sync,
        A::Value: Clone + Send + Sync,
    {
        use problp_engine::KernelKind;
        let bits = |e: &Engine<A>| -> Vec<u64> {
            e.evaluate_batch(batch)
                .expect("evaluates")
                .values
                .iter()
                .map(|v| e.context().to_f64(v).to_bits())
                .collect()
        };
        let engines: Vec<Engine<A>> = KernelKind::ALL
            .iter()
            .map(|&k| base.clone().with_kernel(k))
            .collect();
        let reference = bits(&engines[0]);
        let mut rates = [0.0f64; 3];
        for (i, e) in engines.iter().enumerate() {
            *identical &= bits(e) == reference;
            let start = std::time::Instant::now();
            let mut sweeps = 0u64;
            while start.elapsed().as_secs_f64() < 0.2 {
                std::hint::black_box(e.evaluate_batch(batch).expect("evaluates"));
                sweeps += 1;
            }
            rates[i] = sweeps as f64 * batch.lanes() as f64 / start.elapsed().as_secs_f64();
        }
        KernelStudyRow {
            arith,
            scalar_eps: rates[0],
            simd_eps: rates[1],
            fused_eps: rates[2],
        }
    }

    let mut identical = true;
    let f64_engine = Engine::from_graph(&ac, Semiring::SumProduct, F64Arith::new())
        .expect("alarm compiles to a tape")
        .with_threads(1);
    let fuse = f64_engine
        .clone()
        .with_kernel(KernelKind::Fused)
        .fuse_stats()
        .expect("fused engine exposes stats");
    let f64_row = measure_row("f64", &f64_engine, &batch, &mut identical);

    let format = FixedFormat::new(2, 14).expect("valid format");
    let fixed_engine = Engine::from_graph(&ac, Semiring::SumProduct, FixedArith::new(format))
        .expect("alarm compiles to a tape")
        .with_threads(1);
    let fixed_row = measure_row("fixed:2.14", &fixed_engine, &batch, &mut identical);

    KernelStudy {
        batch: batch_size,
        rows: vec![f64_row, fixed_row],
        identical,
        fuse,
    }
}

/// Renders the evaluator-kernel study as a text table.
pub fn render_kernel_study(study: &KernelStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Evaluator kernels on Alarm (marginal, batch {}, 1 engine thread, evals/s)\n",
        study.batch
    ));
    out.push_str(&format!(
        "{:>11} | {:>12} | {:>12} | {:>12} | {:>7} | {:>7}\n",
        "arith", "scalar tape", "simd", "fused", "simd x", "fused x"
    ));
    out.push_str(&format!("{}\n", "-".repeat(78)));
    for r in &study.rows {
        out.push_str(&format!(
            "{:>11} | {:>12.0} | {:>12.0} | {:>12.0} | {:>6.1}x | {:>6.1}x\n",
            r.arith,
            r.scalar_eps,
            r.simd_eps,
            r.fused_eps,
            r.simd_speedup(),
            r.fused_speedup()
        ));
    }
    out.push_str(&format!("fusion: {}\n", study.fuse));
    out.push_str(&format!(
        "bit-identity cross-check: {}\n",
        if study.identical { "ok" } else { "FAILED" }
    ));
    out
}

/// Renders the design-choice ablation study promised in `DESIGN.md`:
/// decomposition shape, multiplier rounding mode, leaf-error model and
/// the optimisation pass, each evaluated on the Alarm circuit.
pub fn ablation_report() -> String {
    use problp_ac::transform::{binarize, binarize_chain};
    use problp_bounds::fixed_error_bound_with_rounding;
    use problp_num::FixedRounding;

    let net = problp_bayes::networks::alarm(SEED);
    let raw = compile(&net).expect("alarm compiles");
    let mut out = String::new();
    out.push_str("Ablation study on the Alarm circuit (DESIGN.md design choices)\n\n");

    // 1. Decomposition shape.
    let balanced = binarize(&raw).expect("binarizes");
    let chain = binarize_chain(&raw).expect("binarizes");
    let f14 = FixedFormat::new(1, 14).expect("valid");
    let nl_b = Netlist::from_ac(&balanced, Representation::Fixed(f14)).expect("netlist");
    let nl_c = Netlist::from_ac(&chain, Representation::Fixed(f14)).expect("netlist");
    out.push_str(&format!(
        "decomposition shape   | depth | balance regs | register bits\n\
         {}\n\
         balanced trees        | {:>5} | {:>12} | {:>13}\n\
         left-leaning chains   | {:>5} | {:>12} | {:>13}\n\n",
        "-".repeat(62),
        nl_b.stats().pipeline_depth,
        nl_b.stats().balance_regs,
        nl_b.stats().register_bits(),
        nl_c.stats().pipeline_depth,
        nl_c.stats().balance_regs,
        nl_c.stats().register_bits(),
    ));

    // 2. Multiplier rounding mode.
    let analysis = AcAnalysis::new(&balanced).expect("analyzes");
    let bound = |rounding: FixedRounding| {
        fixed_error_bound_with_rounding(
            &balanced,
            &analysis,
            f14,
            LeafErrorModel::WorstCase,
            rounding,
        )
        .expect("bound computes")
        .root_bound()
    };
    out.push_str(&format!(
        "multiplier rounding   | bound at F=14\n\
         {}\n\
         half-up (paper)       | {:.3e}\n\
         truncate              | {:.3e}   ({:.2}x worse)\n\n",
        "-".repeat(40),
        bound(FixedRounding::HalfUp),
        bound(FixedRounding::Truncate),
        bound(FixedRounding::Truncate) / bound(FixedRounding::HalfUp),
    ));

    // 3. Leaf-error model: minimal F meeting 0.01 absolute.
    let min_f = |leaf: LeafErrorModel| {
        problp_bounds::optimize_fixed(
            &balanced,
            &analysis,
            QueryType::Marginal,
            Tolerance::Absolute(0.01),
            leaf,
            64,
        )
        .expect("feasible")
        .format
        .frac_bits()
    };
    out.push_str(&format!(
        "leaf-error model      | minimal F for abs 0.01\n\
         {}\n\
         worst-case (paper)    | {}\n\
         exact conversion      | {}\n\n",
        "-".repeat(46),
        min_f(LeafErrorModel::WorstCase),
        min_f(LeafErrorModel::Exact),
    ));

    // 4. Optimisation pass. Alarm's Dirichlet CPTs have nothing to fold,
    // so this ablation uses Asia, whose deterministic OR gate does.
    let asia = compile(&problp_bayes::networks::asia()).expect("asia compiles");
    let plain = Problp::new(&asia).skip_rtl().run().expect("pipeline runs");
    let opt = Problp::new(&asia)
        .optimize_circuit(true)
        .skip_rtl()
        .run()
        .expect("pipeline runs");
    out.push_str(&format!(
        "optimisation (Asia)   | nodes | selected energy (nJ)\n\
         {}\n\
         off (paper flow)      | {:>5} | {:.4}\n\
         fold + share          | {:>5} | {:.4}\n",
        "-".repeat(52),
        plain.circuit_stats.nodes,
        plain.selected.energy.total_nj(),
        opt.circuit_stats.nodes,
        opt.selected.energy.total_nj(),
    ));
    out
}

/// One model's share of a mixed-tenant serving study.
#[derive(Clone, Debug)]
pub struct ServingModelRow {
    /// Model id in the pool.
    pub model: String,
    /// Variables in the network.
    pub vars: usize,
    /// Requests of the trace that targeted this model.
    pub requests: usize,
}

/// The result of [`serving_study`]: a mixed-tenant trace replayed
/// scalar (per-request tree-walk) and through the sharded serving layer.
#[derive(Clone, Debug)]
pub struct ServingStudy {
    /// Per-model request shares.
    pub models: Vec<ServingModelRow>,
    /// Requests in the trace.
    pub requests: usize,
    /// Answers that reproduced the per-request evaluation bit for bit.
    pub identical: usize,
    /// Wall time of the scalar replay, seconds.
    pub scalar_secs: f64,
    /// Wall time of the pooled serving pass, seconds.
    pub served_secs: f64,
    /// Per-request sojourn latencies (submit → dispatcher completion)
    /// of the pooled pass, as a fixed-bucket histogram — the source of
    /// the `BENCH_serving.json` percentiles.
    pub sojourn: problp_telemetry::HistogramSnapshot,
}

impl ServingStudy {
    /// Scalar-replay wall time over pooled wall time.
    pub fn speedup(&self) -> f64 {
        self.scalar_secs / self.served_secs
    }
}

/// The serving studies' shared fixture — the three tenants
/// (Alarm + Asia + Sprinkler) as (name, network) pairs, their compiled
/// circuits, and the per-model canonical evidence pools.
#[allow(clippy::type_complexity)]
fn serving_fixture(
    seed: u64,
) -> (
    Vec<(String, problp_bayes::BayesNet)>,
    Vec<AcGraph>,
    Vec<Vec<problp_bayes::Evidence>>,
) {
    use problp_bayes::networks;
    let tenants = vec![
        ("alarm".to_string(), networks::alarm(seed)),
        ("asia".to_string(), networks::asia()),
        ("sprinkler".to_string(), networks::sprinkler()),
    ];
    let circuits: Vec<AcGraph> = tenants
        .iter()
        .map(|(_, net)| compile(net).expect("benchmark network compiles"))
        .collect();
    let pools = circuits
        .iter()
        .map(|ac| problp_bayes::single_variable_evidences(ac.var_arities()))
        .collect();
    (tenants, circuits, pools)
}

/// One random query kind for `net` in the serving studies' canonical
/// marginal/MPE/conditional mix.
fn pick_query(
    rng: &mut rand::rngs::StdRng,
    net: &problp_bayes::BayesNet,
) -> problp_bayes::BatchQuery {
    use problp_bayes::BatchQuery;
    use rand::Rng;
    match rng.random_range(0..3u32) {
        0 => BatchQuery::Marginal,
        1 => BatchQuery::Mpe,
        _ => BatchQuery::Conditional {
            query_var: net.roots()[0],
        },
    }
}

/// The p-th percentile (nearest rank) of an ascending-sorted sample of
/// microsecond latencies. Shared by the serving studies and the
/// `serve-sim` CLI report.
///
/// Edge behavior is explicit rather than silent: an empty sample has no
/// percentile (`None`, not a fake `0`), `p` is clamped to `[0, 100]`
/// (so `p = 100` — and anything above — is exactly the last element,
/// never out of bounds), and a non-finite `p` reads as `0`.
pub fn percentile_us(sorted_us: &[u128], p: f64) -> Option<u128> {
    let last = sorted_us.len().checked_sub(1)?;
    let p = if p.is_finite() {
        p.clamp(0.0, 100.0)
    } else {
        0.0
    };
    let idx = ((p / 100.0) * last as f64).round() as usize;
    Some(sorted_us[idx.min(last)])
}

/// Runs the mixed-workload serving study: Alarm + Asia + Sprinkler
/// hosted in one [`problp_engine::CircuitPool`], a seeded trace mixing
/// models and query kinds (marginal / MPE / conditional) coalesced by
/// the admission queue, checked bit-identical against per-request
/// evaluation and timed against the scalar tree-walk replay.
pub fn serving_study(requests: usize, seed: u64) -> ServingStudy {
    use problp_bayes::BatchQuery;
    use problp_engine::{CircuitPool, ServeConfig, ServeRequest, Server};
    use problp_num::F64Arith;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::{Duration, Instant};

    let (tenants, circuits, pools) = serving_fixture(seed);

    let mut rng = StdRng::seed_from_u64(seed);
    let trace: Vec<(usize, ServeRequest)> = (0..requests.max(1))
        .map(|_| {
            let t = rng.random_range(0..tenants.len());
            let (name, net) = &tenants[t];
            let query = pick_query(&mut rng, net);
            let pool = &pools[t];
            let evidence = pool[rng.random_range(0..pool.len())].clone();
            (
                t,
                ServeRequest {
                    model: name.clone(),
                    evidence,
                    query,
                    priority: problp_engine::Priority::Interactive,
                },
            )
        })
        .collect();

    // Scalar replay: each request alone, on the tree-walk.
    let scalar_start = Instant::now();
    for (t, req) in &trace {
        let ac = &circuits[*t];
        match req.query {
            BatchQuery::Marginal => {
                std::hint::black_box(ac.evaluate(&req.evidence).expect("evaluates"));
            }
            BatchQuery::Mpe => {
                std::hint::black_box(ac.mpe_assignment(&req.evidence).expect("decodes"));
            }
            BatchQuery::Conditional { query_var } => {
                let den = ac.evaluate(&req.evidence).expect("evaluates");
                for s in 0..ac.var_arities()[query_var.index()] {
                    let mut with_q = req.evidence.clone();
                    with_q.observe(query_var, s);
                    std::hint::black_box(ac.evaluate(&with_q).expect("evaluates") / den);
                }
            }
        }
    }
    let scalar_secs = scalar_start.elapsed().as_secs_f64();

    // Pooled serving through the admission queue.
    let mut pool = CircuitPool::new(F64Arith::new());
    for ((name, _), ac) in tenants.iter().zip(&circuits) {
        pool.register(name, ac).expect("registers");
    }
    let server = Server::start(
        pool,
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
            workers: 4,
            ..ServeConfig::default()
        },
    );
    let requests_only: Vec<ServeRequest> = trace.iter().map(|(_, r)| r.clone()).collect();
    let sojourn = problp_telemetry::Histogram::new(problp_telemetry::default_latency_buckets_us());
    let served_start = Instant::now();
    // Submit the whole trace, then drain with one shared deadline
    // budget: a wedged dispatcher fails the study (typed
    // `ServeError::Timeout` slots) instead of hanging it, and each
    // ticket's completion timestamp feeds the sojourn histogram.
    let submitted: Vec<(Instant, _)> = requests_only
        .iter()
        .map(|r| (Instant::now(), server.submit(r.clone())))
        .collect();
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    let served: Vec<_> = submitted
        .into_iter()
        .map(|(enqueued, ticket)| match ticket {
            Ok(t) => {
                let (reply, completed) =
                    t.wait_deadline_timed(drain_deadline.saturating_duration_since(Instant::now()));
                sojourn.observe_duration(completed.saturating_duration_since(enqueued));
                reply
            }
            Err(e) => Err(e),
        })
        .collect();
    let served_secs = served_start.elapsed().as_secs_f64();
    // Payload comparison: sticky flags are batch-scope by design.
    let identical = requests_only
        .iter()
        .zip(&served)
        .filter(|(req, got)| problp_engine::lane_answer_eq(&server.pool().serve_one(req), got))
        .count();
    server.shutdown();

    let models = tenants
        .iter()
        .map(|(name, net)| ServingModelRow {
            model: name.clone(),
            vars: net.var_count(),
            requests: trace.iter().filter(|(_, r)| &r.model == name).count(),
        })
        .collect();
    ServingStudy {
        models,
        requests: trace.len(),
        identical,
        scalar_secs,
        served_secs,
        sojourn: sojourn.snapshot(),
    }
}

/// Runs [`serving_study`] and renders it as a text table.
pub fn serving_report(requests: usize, seed: u64) -> String {
    render_serving_report(&serving_study(requests, seed))
}

/// The result of [`cache_study`]: the same repeated mixed-tenant trace
/// served twice — exact answer cache off, then on — with the cached
/// pass's books. The trace repeats `unique` distinct requests for
/// `rounds` rounds with a drain barrier between rounds, so the cached
/// pass's hit count is deterministic: round one misses every key once,
/// every later round hits every key.
#[derive(Clone, Debug)]
pub struct CacheStudy {
    /// Distinct requests per round (distinct cache keys).
    pub unique: usize,
    /// Rounds the trace repeats (≥ 2, so hits actually happen).
    pub rounds: usize,
    /// Total requests per pass (`unique * rounds`).
    pub requests: usize,
    /// Cached answers bit-identical to the cache-off pass.
    pub identical: usize,
    /// Wall time of the cache-off pass, seconds.
    pub cold_secs: f64,
    /// Wall time of the cache-on pass, seconds.
    pub cached_secs: f64,
    /// Cache hits of the cached pass (`(rounds - 1) * unique`).
    pub cache_hits: u64,
    /// Cache misses of the cached pass (`unique`).
    pub cache_misses: u64,
    /// LRU evictions of the cached pass (zero: ample capacity).
    pub cache_evictions: u64,
    /// Sojourn latencies of the cache-on pass — hits resolve at
    /// admission, so the low percentiles collapse.
    pub sojourn: problp_telemetry::HistogramSnapshot,
}

impl CacheStudy {
    /// Cache-off wall time over cache-on wall time.
    pub fn speedup(&self) -> f64 {
        self.cold_secs / self.cached_secs
    }

    /// Hits over lookups of the cached pass.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// Runs the exact answer-cache study: `unique` distinct requests
/// (round-robin over the three tenants, sweeping query kind × canonical
/// evidence so every cache key is distinct) served for `rounds` rounds,
/// once with `cache_capacity: 0` and once with ample capacity. The
/// cached pass must reproduce the cache-off pass bit for bit — a hit
/// replays the memoized payload, it never re-derives it.
pub fn cache_study(unique: usize, rounds: usize, seed: u64) -> CacheStudy {
    use problp_bayes::BatchQuery;
    use problp_engine::{CircuitPool, Priority, ServeConfig, ServeRequest, Server};
    use problp_num::F64Arith;
    use std::time::{Duration, Instant};

    let (tenants, circuits, pools) = serving_fixture(seed);
    let unique = unique.max(1);
    let rounds = rounds.max(2);

    // Distinct-by-construction requests: per tenant, slot `s` maps to
    // (query kind `s / pool`, evidence `s % pool`), so no two slots of
    // one tenant share a cache key and round one cannot hit.
    let mut base: Vec<ServeRequest> = Vec::with_capacity(unique);
    let mut cursor = vec![0usize; tenants.len()];
    let mut i = 0usize;
    while base.len() < unique {
        let t = i % tenants.len();
        i += 1;
        let pool = &pools[t];
        let slot = cursor[t];
        if slot >= pool.len() * 3 {
            if cursor.iter().zip(&pools).all(|(c, p)| *c >= p.len() * 3) {
                break; // every tenant's key space is exhausted
            }
            continue;
        }
        cursor[t] += 1;
        let (name, net) = &tenants[t];
        let query = match slot / pool.len() {
            0 => BatchQuery::Marginal,
            1 => BatchQuery::Mpe,
            _ => BatchQuery::Conditional {
                query_var: net.roots()[0],
            },
        };
        base.push(ServeRequest {
            model: name.clone(),
            evidence: pool[slot % pool.len()].clone(),
            query,
            priority: Priority::Interactive,
        });
    }
    let unique = base.len();

    // One pass: submit each round as a burst, drain it, repeat. The
    // drain barrier between rounds makes the cached pass deterministic:
    // by the time round `r + 1` submits, every round-`r` dispatch has
    // filled the cache.
    let run_pass = |capacity: usize| {
        let mut pool = CircuitPool::new(F64Arith::new());
        for ((name, _), ac) in tenants.iter().zip(&circuits) {
            pool.register(name, ac).expect("registers");
        }
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 32,
                max_wait: Duration::from_micros(500),
                workers: 4,
                cache_capacity: capacity,
                ..ServeConfig::default()
            },
        );
        let sojourn =
            problp_telemetry::Histogram::new(problp_telemetry::default_latency_buckets_us());
        let mut answers = Vec::with_capacity(unique * rounds);
        let start = Instant::now();
        for _ in 0..rounds {
            let submitted: Vec<(Instant, _)> = base
                .iter()
                .map(|r| (Instant::now(), server.submit(r.clone())))
                .collect();
            let deadline = Instant::now() + Duration::from_secs(30);
            for (enqueued, ticket) in submitted {
                match ticket {
                    Ok(t) => {
                        let (reply, completed) = t.wait_deadline_timed(
                            deadline.saturating_duration_since(Instant::now()),
                        );
                        sojourn.observe_duration(completed.saturating_duration_since(enqueued));
                        answers.push(reply);
                    }
                    Err(e) => answers.push(Err(e)),
                }
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let stats = server.stats();
        server.shutdown();
        (secs, answers, stats, sojourn.snapshot())
    };

    let (cold_secs, cold, _, _) = run_pass(0);
    let (cached_secs, cached, stats, sojourn) = run_pass(unique * 2);
    let identical = cold
        .iter()
        .zip(&cached)
        .filter(|(a, b)| problp_engine::lane_answer_eq(a, b))
        .count();
    CacheStudy {
        unique,
        rounds,
        requests: unique * rounds,
        identical,
        cold_secs,
        cached_secs,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_evictions: stats.cache_evictions,
        sojourn,
    }
}

/// Runs [`cache_study`] and renders it as a text table.
pub fn cache_report(unique: usize, rounds: usize, seed: u64) -> String {
    render_cache_report(&cache_study(unique, rounds, seed))
}

/// Renders an already-run cache study as a text table (so callers can
/// reuse the same study for `BENCH_cache.json`).
pub fn render_cache_report(study: &CacheStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Exact answer caching: {} distinct requests x {} rounds over 3 models\n",
        study.unique, study.rounds
    ));
    out.push_str(&format!(
        "bit-identical to the cache-off pass: {}/{}\n",
        study.identical, study.requests
    ));
    out.push_str(&format!(
        "cache books: {} hits / {} misses / {} evictions (hit rate {:.1}%)\n",
        study.cache_hits,
        study.cache_misses,
        study.cache_evictions,
        study.hit_rate() * 100.0
    ));
    out.push_str(&format!(
        "cache off {:>8.2} ms | cache on {:>8.2} ms | speedup {:.1}x\n",
        study.cold_secs * 1e3,
        study.cached_secs * 1e3,
        study.speedup()
    ));
    let fmt_q = |p: f64| {
        study
            .sojourn
            .quantile(p)
            .map_or_else(|| "-".to_string(), |us| us.to_string())
    };
    out.push_str(&format!(
        "cached-pass sojourn (us): p50 {} | p90 {} | p99 {} | max {}\n",
        fmt_q(50.0),
        fmt_q(90.0),
        fmt_q(99.0),
        study.sojourn.max
    ));
    out
}

/// Renders an already-run serving study as a text table (so callers can
/// reuse the same study for `BENCH_serving.json`).
pub fn render_serving_report(study: &ServingStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Sharded multi-circuit serving: {} mixed requests (marginal/MPE/conditional) over {} models\n",
        study.requests,
        study.models.len()
    ));
    out.push_str(&format!(
        "{:>10} | {:>5} | {:>8}\n{}\n",
        "model",
        "vars",
        "requests",
        "-".repeat(30)
    ));
    for m in &study.models {
        out.push_str(&format!(
            "{:>10} | {:>5} | {:>8}\n",
            m.model, m.vars, m.requests
        ));
    }
    out.push_str(&format!(
        "\nbit-identical to per-request evaluation: {}/{}\n",
        study.identical, study.requests
    ));
    out.push_str(&format!(
        "scalar replay {:>8.2} ms | pooled serving {:>8.2} ms | speedup {:.1}x\n",
        study.scalar_secs * 1e3,
        study.served_secs * 1e3,
        study.speedup()
    ));
    let fmt_q = |p: f64| {
        study
            .sojourn
            .quantile(p)
            .map_or_else(|| "-".to_string(), |us| us.to_string())
    };
    out.push_str(&format!(
        "sojourn latency (us): p50 {} | p90 {} | p99 {} | max {}\n",
        fmt_q(50.0),
        fmt_q(90.0),
        fmt_q(99.0),
        study.sojourn.max
    ));
    out
}

/// One priority class's share of a [`qos_study`] trace.
#[derive(Clone, Debug)]
pub struct QosClassRow {
    /// The priority class ("interactive" / "batch").
    pub class: String,
    /// Requests of the trace in this class.
    pub requests: usize,
    /// Of those, requests admitted past the tenant quota.
    pub admitted: usize,
    /// Median sojourn latency of the admitted requests, microseconds
    /// (`None` when the class admitted nothing).
    pub p50_us: Option<u128>,
    /// Tail sojourn latency of the admitted requests, microseconds
    /// (`None` when the class admitted nothing).
    pub p99_us: Option<u128>,
}

/// The result of [`qos_study`]: a hot-tenant + mixed-priority trace
/// served under the full QoS policy (per-tenant quota, priority lanes,
/// adaptive max_wait), with per-class latency and quota accounting.
#[derive(Clone, Debug)]
pub struct QosStudy {
    /// Requests in the trace.
    pub requests: usize,
    /// The per-tenant lane quota the study ran under.
    pub quota: usize,
    /// Requests admitted (the rest were quota-rejected).
    pub admitted: usize,
    /// Requests rejected with `ServeError::QuotaExceeded` — all from
    /// the hot tenant, by construction.
    pub quota_rejected: usize,
    /// Of the rejections, how many hit the hot tenant (must be all).
    pub hot_tenant_rejected: usize,
    /// Admitted answers that reproduced per-request evaluation bit for
    /// bit.
    pub identical: usize,
    /// Per-priority-class latency rows.
    pub classes: Vec<QosClassRow>,
    /// All admitted requests' sojourn latencies as one fixed-bucket
    /// histogram — the source of the `BENCH_qos.json` percentiles.
    pub sojourn: problp_telemetry::HistogramSnapshot,
}

/// Runs the QoS serving study: Alarm as a *hot tenant* flooding the
/// [`problp_engine::Priority::Interactive`] lane, Asia + Sprinkler as
/// background [`problp_engine::Priority::Batch`] traffic, served under
/// a per-tenant quota, priority lanes with aging, and the adaptive
/// coalescing wait. Checks that every admitted answer is bit-identical
/// to per-request evaluation, that quota rejections hit only the hot
/// tenant, and reports per-class latency percentiles.
pub fn qos_study(requests: usize, seed: u64) -> QosStudy {
    use problp_engine::{CircuitPool, Priority, ServeConfig, ServeError, ServeRequest, Server};
    use problp_num::F64Arith;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::{Duration, Instant};

    let (tenants, circuits, evidence_pools) = serving_fixture(seed);

    // ~70% of the trace hammers Alarm on the Interactive lane (the hot
    // tenant); the rest is Batch-priority background traffic on the
    // small models.
    let mut rng = StdRng::seed_from_u64(seed);
    let trace: Vec<ServeRequest> = (0..requests.max(1))
        .map(|_| {
            let hot = rng.random_range(0..10u32) < 7;
            let t = if hot {
                0
            } else {
                1 + rng.random_range(0..2usize)
            };
            let (name, net) = &tenants[t];
            let query = pick_query(&mut rng, net);
            let pool = &evidence_pools[t];
            ServeRequest {
                model: name.clone(),
                evidence: pool[rng.random_range(0..pool.len())].clone(),
                query,
                priority: if hot {
                    Priority::Interactive
                } else {
                    Priority::Batch
                },
            }
        })
        .collect();

    let mut pool = CircuitPool::new(F64Arith::new());
    for ((name, _), ac) in tenants.iter().zip(&circuits) {
        pool.register(name, ac).expect("registers");
    }
    // A quota above each background tenant's *total* trace share (~15%
    // per model) but far below the hot tenant's ~70% flood: only the
    // hot tenant can ever trip it, regardless of drain timing.
    let quota = (requests.max(1) / 4).max(8);
    let server = Server::start(
        pool,
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_micros(300),
            workers: 2,
            tenant_quota: quota,
            priority_aging: Duration::from_millis(2),
            adaptive_wait: true,
            ..ServeConfig::default()
        },
    );

    // Submit the whole trace up front (the burst that makes the quota
    // bite), then drain with a deadline so a wedged dispatcher can
    // never hang the study.
    let mut quota_rejected = 0usize;
    let mut hot_tenant_rejected = 0usize;
    let submitted: Vec<(Instant, Result<_, ServeError>)> = trace
        .iter()
        .map(|req| (Instant::now(), server.submit(req.clone())))
        .collect();
    let mut outcomes = Vec::with_capacity(submitted.len());
    let sojourn = problp_telemetry::Histogram::new(problp_telemetry::default_latency_buckets_us());
    // One shared drain budget: a wedged dispatcher fails the study in
    // ~30s total, not 30s per ticket.
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    for (enqueued, ticket) in submitted {
        match ticket {
            Ok(t) => {
                let (reply, completed) =
                    t.wait_deadline_timed(drain_deadline.saturating_duration_since(Instant::now()));
                let waited = completed.saturating_duration_since(enqueued);
                sojourn.observe_duration(waited);
                let sojourn_us = waited.as_micros();
                outcomes.push(Some((reply, sojourn_us)));
            }
            Err(ServeError::QuotaExceeded { model, .. }) => {
                quota_rejected += 1;
                if model == "alarm" {
                    hot_tenant_rejected += 1;
                }
                outcomes.push(None);
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }

    let identical = trace
        .iter()
        .zip(&outcomes)
        .filter(|(req, outcome)| match outcome {
            Some((reply, _)) => problp_engine::lane_answer_eq(&server.pool().serve_one(req), reply),
            None => false,
        })
        .count();

    let classes = [Priority::Interactive, Priority::Batch]
        .iter()
        .map(|class| {
            let mut latencies: Vec<u128> = trace
                .iter()
                .zip(&outcomes)
                .filter(|(req, o)| req.priority == *class && o.is_some())
                .map(|(_, o)| o.as_ref().expect("filtered Some").1)
                .collect();
            latencies.sort_unstable();
            QosClassRow {
                class: class.to_string(),
                requests: trace.iter().filter(|r| r.priority == *class).count(),
                admitted: latencies.len(),
                p50_us: percentile_us(&latencies, 50.0),
                p99_us: percentile_us(&latencies, 99.0),
            }
        })
        .collect();
    server.shutdown();

    let admitted = outcomes.iter().filter(|o| o.is_some()).count();
    QosStudy {
        requests: trace.len(),
        quota,
        admitted,
        quota_rejected,
        hot_tenant_rejected,
        identical,
        classes,
        sojourn: sojourn.snapshot(),
    }
}

/// Runs [`qos_study`] and renders it as a text table.
pub fn qos_report(requests: usize, seed: u64) -> String {
    render_qos_report(&qos_study(requests, seed))
}

/// Renders an already-run QoS study as a text table (so callers can
/// reuse the same study for `BENCH_qos.json`).
pub fn render_qos_report(study: &QosStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "QoS serving policy: {} requests — hot Interactive tenant (alarm) vs Batch background \
         (asia, sprinkler)\npolicy: tenant_quota {}, priority aging 2ms, adaptive max_wait on\n\n",
        study.requests, study.quota
    ));
    out.push_str(&format!(
        "{:>12} | {:>8} | {:>8} | {:>9} | {:>9}\n{}\n",
        "class",
        "requests",
        "admitted",
        "p50 (us)",
        "p99 (us)",
        "-".repeat(60)
    ));
    let fmt_us = |p: Option<u128>| p.map_or_else(|| "-".to_string(), |us| us.to_string());
    for c in &study.classes {
        out.push_str(&format!(
            "{:>12} | {:>8} | {:>8} | {:>9} | {:>9}\n",
            c.class,
            c.requests,
            c.admitted,
            fmt_us(c.p50_us),
            fmt_us(c.p99_us)
        ));
    }
    out.push_str(&format!(
        "\nquota rejects: {} (all on the hot tenant: {})\n",
        study.quota_rejected,
        if study.quota_rejected == study.hot_tenant_rejected {
            "yes"
        } else {
            "NO"
        }
    ));
    out.push_str(&format!(
        "bit-identical to per-request evaluation: {}/{} admitted\n",
        study.identical, study.admitted
    ));
    out
}

/// The conformance study: the differential cross-check of
/// `problp-conformance` over the standing benchmark mix — sprinkler,
/// asia and student plus two seeded random networks — at `batch` lanes
/// per case, all three arithmetics and semirings.
///
/// # Panics
///
/// Panics if any backend fails to build or evaluate (every model in the
/// mix is supported by every backend).
pub fn conformance_study(batch: usize, seed: u64) -> problp_conformance::ConformanceReport {
    use problp_bayes::networks;
    let mut models = vec![
        ("sprinkler".to_string(), networks::sprinkler()),
        ("asia".to_string(), networks::asia()),
        ("student".to_string(), networks::student()),
    ];
    models.extend(problp_conformance::random_models(seed, 2));
    let config = problp_conformance::ConformanceConfig {
        batch,
        seed,
        ..problp_conformance::ConformanceConfig::default()
    };
    problp_conformance::run_conformance(&models, &config).expect("all backends evaluate")
}

/// Renders [`conformance_study`] with its verdict (the `reproduce
/// conformance` section).
pub fn conformance_report(batch: usize, seed: u64) -> String {
    render_conformance_report(&conformance_study(batch, seed))
}

/// Renders an already-run conformance study (so callers can reuse the
/// same study for `BENCH_conformance.json`).
pub fn render_conformance_report(report: &problp_conformance::ConformanceReport) -> String {
    format!("Differential conformance — tape engine vs cycle-accurate hardware\n\n{report}")
}

/// One model's row in the static-analysis study: verifier and
/// range-analysis wall time, per-format safety verdicts and the derived
/// minimal fixed format.
#[derive(Clone, Debug)]
pub struct VerifyStudyRow {
    /// The model's display name.
    pub model: String,
    /// Compact-tape instructions the analyses covered.
    pub instrs: usize,
    /// Wall time of the Layer-1 structural verification (tape + fused
    /// stream equivalence).
    pub verifier_wall: std::time::Duration,
    /// Wall time of the range analysis summed over every audited format.
    pub analysis_wall: std::time::Duration,
    /// Of the audited formats, how many the analysis proved fully safe.
    pub safe_formats: usize,
    /// The minimal safe fixed format the analysis derives for the model.
    pub minimal_format: problp_num::FixedFormat,
}

/// The static-analysis study: every builtin network through the
/// verifier and the range analysis.
#[derive(Clone, Debug)]
pub struct VerifyStudy {
    /// The formats each model was audited against.
    pub specs: Vec<problp_num::ArithSpec>,
    /// Per-model results.
    pub rows: Vec<VerifyStudyRow>,
}

/// Runs the verifier + range analysis over the builtin model zoo for
/// the serving formats (the `reproduce verify` section): static safety
/// as a measured, reproducible artifact rather than a claim.
pub fn verify_study() -> VerifyStudy {
    use problp_bayes::networks;
    let specs: Vec<problp_num::ArithSpec> = ["f64", "fixed:2.14", "fixed:8.24", "float:8.23"]
        .iter()
        .map(|s| problp_num::ArithSpec::parse(s).expect("audit specs parse"))
        .collect();
    let models = [
        ("figure1".to_string(), networks::figure1()),
        ("sprinkler".to_string(), networks::sprinkler()),
        ("asia".to_string(), networks::asia()),
        ("student".to_string(), networks::student()),
        ("earthquake".to_string(), networks::earthquake()),
        ("cancer".to_string(), networks::cancer()),
        ("alarm".to_string(), networks::alarm(SEED)),
    ];
    let mut rows = Vec::new();
    for (model, net) in models {
        let ac = problp_ac::compile(&net).expect("builtin networks compile");
        let tape = problp_engine::Tape::compile(&ac, problp_ac::Semiring::SumProduct)
            .expect("builtin networks tape-compile");

        let start = std::time::Instant::now();
        tape.verify().expect("fresh tapes verify");
        tape.verify_fused(&tape.fuse())
            .expect("fused streams verify");
        let verifier_wall = start.elapsed();

        let start = std::time::Instant::now();
        let safe_formats = specs
            .iter()
            .filter(|spec| {
                problp_verify::analyze(&tape, **spec)
                    .expect("verified tapes analyze")
                    .all_safe()
            })
            .count();
        let minimal_format = problp_verify::minimal_fixed_format(&tape)
            .expect("verified tapes analyze")
            .format;
        let analysis_wall = start.elapsed();

        rows.push(VerifyStudyRow {
            model,
            instrs: tape.instrs().len(),
            verifier_wall,
            analysis_wall,
            safe_formats,
            minimal_format,
        });
    }
    VerifyStudy { specs, rows }
}

/// Renders [`verify_study`] as the `reproduce verify` table.
pub fn render_verify_study(study: &VerifyStudy) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Static analysis — tape verifier + fixed-point range analysis"
    );
    let specs: Vec<String> = study.specs.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "audited formats: {}\n", specs.join(", "));
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>12} {:>12} {:>11} {:>12}",
        "model", "instrs", "verify", "analyze", "safe fmts", "minimal fx"
    );
    for row in &study.rows {
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>10.1}µs {:>10.1}µs {:>9}/{} {:>12}",
            row.model,
            row.instrs,
            row.verifier_wall.as_secs_f64() * 1e6,
            row.analysis_wall.as_secs_f64() * 1e6,
            row.safe_formats,
            study.specs.len(),
            format!(
                "fixed:{}.{}",
                row.minimal_format.int_bits(),
                row.minimal_format.frac_bits()
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_study_passes_on_the_benchmark_mix() {
        let report = conformance_study(16, SEED);
        assert!(report.all_match(), "divergence:\n{report}");
        let text = conformance_report(16, SEED);
        assert!(text.contains("verdict: PASS"));
    }

    #[test]
    fn verify_study_covers_the_model_zoo_and_emits_a_valid_record() {
        let study = verify_study();
        assert_eq!(study.rows.len(), 7);
        assert_eq!(study.specs.len(), 4);
        for row in &study.rows {
            // f64 is always provably safe, so at least one format passes.
            assert!(row.safe_formats >= 1, "{}", row.model);
            assert!(row.instrs > 0);
        }
        let text = render_verify_study(&study);
        assert!(text.contains("alarm"));
        assert!(text.contains("minimal fx"));
        let record = verify_bench_record(&study);
        assert!(validate_bench_json(&record.to_json().render_pretty()).is_ok());
        assert_eq!(record.scenario, "verify");
    }

    #[test]
    fn serving_study_is_bit_identical_and_reports() {
        let study = serving_study(90, SEED);
        assert_eq!(study.requests, 90);
        assert_eq!(study.identical, study.requests);
        assert_eq!(study.models.len(), 3);
        let report = serving_report(60, SEED);
        assert!(report.contains("alarm"));
        assert!(report.contains("bit-identical to per-request evaluation: 60/60"));
    }

    #[test]
    fn qos_study_rejects_only_the_hot_tenant_and_stays_bit_identical() {
        let study = qos_study(200, SEED);
        assert_eq!(study.requests, 200);
        assert_eq!(study.quota, 50);
        // Quota pressure comes from the burst-submitted hot tenant —
        // and from it alone (the quota sits above each background
        // tenant's total trace share).
        assert!(study.quota_rejected > 0, "the hot tenant never hit quota");
        assert_eq!(study.quota_rejected, study.hot_tenant_rejected);
        assert_eq!(study.admitted + study.quota_rejected, study.requests);
        // The policy may reorder and reject, never change an answer.
        assert_eq!(study.identical, study.admitted);
        assert_eq!(study.classes.len(), 2);
        let interactive = &study.classes[0];
        let batch = &study.classes[1];
        assert_eq!(interactive.class, "interactive");
        assert_eq!(batch.class, "batch");
        // Background Batch traffic is never quota-rejected.
        assert_eq!(batch.admitted, batch.requests);
        let report = qos_report(120, SEED);
        assert!(report.contains("interactive"));
        assert!(report.contains("quota rejects"));
        assert!(report.contains("all on the hot tenant: yes"));
    }

    #[test]
    fn table1_contains_the_fitted_coefficients() {
        let t = table1();
        // fx add at N = 8: 62.4 fJ.
        assert!(t.contains("62.4"));
        assert!(t.contains("7.8N"));
    }

    #[test]
    fn figure5_points_keep_bound_above_observed() {
        let fixture = alarm_fixture(15);
        for p in figure5a(&fixture, &[8, 20]) {
            assert!(p.bound >= p.max_observed, "fig5a bits={}", p.bits);
            assert!(p.max_observed >= p.mean_observed);
        }
        for p in figure5b(&fixture, &[8, 20]) {
            assert!(p.bound >= p.max_observed, "fig5b bits={}", p.bits);
        }
    }

    #[test]
    fn table2_row_runs_on_the_smallest_benchmark() {
        let bench = benchmark_by_name("UIWADS", 20);
        let row = table2_row(&bench, QueryType::Marginal, Tolerance::Absolute(0.01));
        assert!(row.fixed.is_ok());
        assert!(row.float.is_ok());
        assert!(
            row.selected_fixed,
            "UIWADS marg/abs selects fixed (Table 2)"
        );
        assert!(row.max_observed <= 0.01);
        assert!(row.gate_level_nj > 0.0);
        let rendered = render_table2(&[row]);
        assert!(rendered.contains("UIWADS"));
        assert!(rendered.contains('*'));
    }

    #[test]
    fn accuracy_study_runs_end_to_end_through_the_engine() {
        let bench = benchmark_by_name("UIWADS", 40);
        let study = accuracy_study(&bench, &[4, 12], &[12]);
        assert_eq!(study.instances, 40);
        assert_eq!(study.rows.len(), 3);
        // A float format with enough mantissa serves the same
        // predictions as exact f64 (fixed point underflows the tiny
        // joint probabilities long before the posteriors are wrong —
        // exactly the effect the study makes visible).
        let fine = study.rows.iter().find(|r| r.repr == "fl 8,12").unwrap();
        assert!(fine.agreement >= 0.95, "agreement {}", fine.agreement);
        assert!((fine.accuracy - study.exact_accuracy).abs() <= 0.05);
        let coarse = study.rows.iter().find(|r| r.repr == "fx 1,4").unwrap();
        assert!(coarse.agreement <= fine.agreement + 1e-12);
        let rendered = render_accuracy_study(&study);
        assert!(rendered.contains("UIWADS"));
        assert!(rendered.contains("fx 1,4"));
        assert!(rendered.contains("f64"));
    }

    #[test]
    fn classification_impact_agreement_is_high() {
        // Guaranteed-within-tolerance posteriors rarely flip an argmax.
        let bench = benchmark_by_name("UIWADS", 40);
        let impact = classification_impact(&bench, 0.01);
        assert_eq!(impact.instances, 40);
        assert!(impact.agreement >= 0.95, "agreement {}", impact.agreement);
        assert!((impact.lp_accuracy - impact.exact_accuracy).abs() <= 0.05);
    }

    #[test]
    fn ablation_report_renders_all_sections() {
        let t = ablation_report();
        assert!(t.contains("decomposition shape"));
        assert!(t.contains("multiplier rounding"));
        assert!(t.contains("leaf-error model"));
        assert!(t.contains("optimisation"));
    }

    #[test]
    fn sweep_rendering_is_complete() {
        let pts = [SweepPoint {
            bits: 8,
            bound: 1e-2,
            max_observed: 1e-3,
            mean_observed: 1e-4,
        }];
        let s = render_sweep("t", "max", &pts);
        assert!(s.contains("1.000e-2"));
        assert!(s.contains("10.0x"));
    }
}
