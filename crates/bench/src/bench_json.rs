//! The machine-readable perf trajectory: `BENCH_<scenario>.json` files
//! emitted by `reproduce` and `serve-sim`, so every future PR can diff
//! its serving performance against this one's instead of eyeballing
//! stdout tables.
//!
//! One file per scenario, schema [`BENCH_SCHEMA`]. The required keys —
//! enforced by [`validate_bench_json`], which CI runs on every emitted
//! file — are:
//!
//! | key | type | meaning |
//! |-----|------|---------|
//! | `schema` | string | exactly `"problp-bench/v1"` |
//! | `scenario` | string | which study produced the file |
//! | `requests` | number | requests (or lanes) the study drove |
//! | `throughput_rps` | number | requests per second end to end |
//! | `latency_us` | object | `p50`/`p90`/`p99`/`max` sojourn, µs (each a number, or null with no sample) |
//! | `rejects` | number | typed admission rejects |
//!
//! Everything else (`extra` fields like speedups, quota settings,
//! per-backend work stats) is scenario-specific and additive — readers
//! must ignore keys they do not know.

use std::io;
use std::path::{Path, PathBuf};

use problp_telemetry::{HistogramSnapshot, JsonValue};

/// The schema tag every `BENCH_*.json` carries; bump on breaking
/// changes to the required keys.
pub const BENCH_SCHEMA: &str = "problp-bench/v1";

/// One benchmark scenario's machine-readable result.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Scenario name — becomes the `BENCH_<scenario>.json` file name,
    /// so keep it `snake_case`.
    pub scenario: String,
    /// Requests (or lanes) the scenario drove.
    pub requests: u64,
    /// End-to-end requests per second.
    pub throughput_rps: f64,
    /// The sojourn-latency histogram the percentiles are derived from
    /// (`None` for scenarios without a latency dimension).
    pub latency: Option<HistogramSnapshot>,
    /// Typed admission rejects (quota, unknown model, ...).
    pub rejects: u64,
    /// Scenario-specific additions, appended to the JSON object as-is.
    pub extra: Vec<(String, JsonValue)>,
}

impl BenchRecord {
    /// The canonical file name: `BENCH_<scenario>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario)
    }

    /// The record as a JSON document with the schema's required keys
    /// first and `extra` appended.
    pub fn to_json(&self) -> JsonValue {
        let quant = |p: f64| -> JsonValue {
            self.latency
                .as_ref()
                .and_then(|h| h.quantile(p))
                .map_or(JsonValue::Null, JsonValue::from)
        };
        let latency = JsonValue::Object(vec![
            ("p50".to_string(), quant(50.0)),
            ("p90".to_string(), quant(90.0)),
            ("p99".to_string(), quant(99.0)),
            (
                "max".to_string(),
                self.latency
                    .as_ref()
                    .filter(|h| h.count > 0)
                    .map_or(JsonValue::Null, |h| JsonValue::from(h.max)),
            ),
        ]);
        let mut fields = vec![
            ("schema".to_string(), JsonValue::from(BENCH_SCHEMA)),
            (
                "scenario".to_string(),
                JsonValue::from(self.scenario.as_str()),
            ),
            ("requests".to_string(), JsonValue::from(self.requests)),
            (
                "throughput_rps".to_string(),
                JsonValue::from(self.throughput_rps),
            ),
            ("latency_us".to_string(), latency),
            ("rejects".to_string(), JsonValue::from(self.rejects)),
        ];
        fields.extend(self.extra.iter().cloned());
        JsonValue::Object(fields)
    }

    /// Writes `BENCH_<scenario>.json` (pretty-printed) into `dir` and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error on failure.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().render_pretty())?;
        Ok(path)
    }
}

/// Checks that `text` parses as JSON and carries every required
/// `problp-bench/v1` key with the right type; the error string names
/// the first violation.
///
/// # Errors
///
/// Returns a description of the first missing/mistyped key, or the
/// parse error.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing string key \"schema\"")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("schema is {schema:?}, expected {BENCH_SCHEMA:?}"));
    }
    doc.get("scenario")
        .and_then(JsonValue::as_str)
        .ok_or("missing string key \"scenario\"")?;
    for key in ["requests", "throughput_rps", "rejects"] {
        doc.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
    }
    let latency = doc
        .get("latency_us")
        .ok_or("missing object key \"latency_us\"")?;
    for key in ["p50", "p90", "p99", "max"] {
        match latency.get(key) {
            Some(JsonValue::Number(_)) | Some(JsonValue::Null) => {}
            Some(other) => {
                return Err(format!(
                    "latency_us.{key} must be a number or null, got {other:?}"
                ))
            }
            None => return Err(format!("missing latency_us key {key:?}")),
        }
    }
    Ok(())
}

/// [`BenchRecord`] for the mixed-tenant serving study
/// (`BENCH_serving.json`): throughput of the pooled pass, sojourn
/// percentiles from the study's histogram, and the scalar-replay
/// comparison as extras.
pub fn serving_bench_record(study: &crate::ServingStudy) -> BenchRecord {
    BenchRecord {
        scenario: "serving".to_string(),
        requests: study.requests as u64,
        throughput_rps: if study.served_secs > 0.0 {
            study.requests as f64 / study.served_secs
        } else {
            0.0
        },
        latency: Some(study.sojourn.clone()),
        rejects: 0,
        extra: vec![
            ("identical".to_string(), JsonValue::from(study.identical)),
            (
                "scalar_secs".to_string(),
                JsonValue::from(study.scalar_secs),
            ),
            (
                "served_secs".to_string(),
                JsonValue::from(study.served_secs),
            ),
            ("speedup".to_string(), JsonValue::from(study.speedup())),
            ("models".to_string(), JsonValue::from(study.models.len())),
        ],
    }
}

/// [`BenchRecord`] for the exact answer-cache study
/// (`BENCH_cache.json`): throughput of the cache-on pass, its sojourn
/// percentiles, and the cache books + cache-off comparison as extras.
pub fn cache_bench_record(study: &crate::CacheStudy) -> BenchRecord {
    BenchRecord {
        scenario: "cache".to_string(),
        requests: study.requests as u64,
        throughput_rps: if study.cached_secs > 0.0 {
            study.requests as f64 / study.cached_secs
        } else {
            0.0
        },
        latency: Some(study.sojourn.clone()),
        rejects: 0,
        extra: vec![
            ("unique".to_string(), JsonValue::from(study.unique)),
            ("rounds".to_string(), JsonValue::from(study.rounds)),
            ("identical".to_string(), JsonValue::from(study.identical)),
            ("cold_secs".to_string(), JsonValue::from(study.cold_secs)),
            (
                "cached_secs".to_string(),
                JsonValue::from(study.cached_secs),
            ),
            ("speedup".to_string(), JsonValue::from(study.speedup())),
            ("cache_hits".to_string(), JsonValue::from(study.cache_hits)),
            (
                "cache_misses".to_string(),
                JsonValue::from(study.cache_misses),
            ),
            (
                "cache_evictions".to_string(),
                JsonValue::from(study.cache_evictions),
            ),
            ("hit_rate".to_string(), JsonValue::from(study.hit_rate())),
        ],
    }
}

/// [`BenchRecord`] for the QoS study (`BENCH_qos.json`): the quota
/// rejects are the record's `rejects`, with the policy settings and
/// per-class percentiles as extras.
pub fn qos_bench_record(study: &crate::QosStudy) -> BenchRecord {
    let classes = study
        .classes
        .iter()
        .map(|c| {
            JsonValue::Object(vec![
                ("class".to_string(), JsonValue::from(c.class.as_str())),
                ("requests".to_string(), JsonValue::from(c.requests)),
                ("admitted".to_string(), JsonValue::from(c.admitted)),
                (
                    "p50_us".to_string(),
                    c.p50_us
                        .map_or(JsonValue::Null, |v| JsonValue::from(v as u64)),
                ),
                (
                    "p99_us".to_string(),
                    c.p99_us
                        .map_or(JsonValue::Null, |v| JsonValue::from(v as u64)),
                ),
            ])
        })
        .collect();
    BenchRecord {
        scenario: "qos".to_string(),
        requests: study.requests as u64,
        // The QoS study measures policy behavior, not wall time; its
        // throughput dimension is admitted share instead.
        throughput_rps: 0.0,
        latency: Some(study.sojourn.clone()),
        rejects: study.quota_rejected as u64,
        extra: vec![
            ("quota".to_string(), JsonValue::from(study.quota)),
            ("admitted".to_string(), JsonValue::from(study.admitted)),
            ("identical".to_string(), JsonValue::from(study.identical)),
            (
                "hot_tenant_rejected".to_string(),
                JsonValue::from(study.hot_tenant_rejected),
            ),
            ("classes".to_string(), JsonValue::Array(classes)),
        ],
    }
}

/// [`BenchRecord`] for the differential conformance study
/// (`BENCH_conformance.json`): total compared lanes as `requests`, and
/// per-backend work/wall stats aggregated over the cases as extras.
pub fn conformance_bench_record(report: &problp_conformance::ConformanceReport) -> BenchRecord {
    // Aggregate per backend over every (model, arith, semiring) case.
    let mut backends: Vec<(String, u64, f64, usize)> = Vec::new();
    let mut total_lanes = 0usize;
    for case in &report.cases {
        for run in &case.backends {
            total_lanes += case.lanes;
            let name = format!("{}", run.backend);
            match backends.iter_mut().find(|(n, ..)| *n == name) {
                Some((_, work, wall, lanes)) => {
                    *work += run.work;
                    *wall += run.wall.as_secs_f64();
                    *lanes += case.lanes;
                }
                None => backends.push((name, run.work, run.wall.as_secs_f64(), case.lanes)),
            }
        }
    }
    let backend_rows = backends
        .iter()
        .map(|(name, work, wall, lanes)| {
            JsonValue::Object(vec![
                ("backend".to_string(), JsonValue::from(name.as_str())),
                ("work".to_string(), JsonValue::from(*work)),
                ("wall_secs".to_string(), JsonValue::from(*wall)),
                ("lanes".to_string(), JsonValue::from(*lanes)),
                (
                    "lanes_per_sec".to_string(),
                    if *wall > 0.0 {
                        JsonValue::from(*lanes as f64 / *wall)
                    } else {
                        JsonValue::Null
                    },
                ),
            ])
        })
        .collect();
    BenchRecord {
        scenario: "conformance".to_string(),
        requests: total_lanes as u64,
        throughput_rps: 0.0,
        latency: None,
        rejects: 0,
        extra: vec![
            ("seed".to_string(), JsonValue::from(report.seed)),
            (
                "lanes_per_case".to_string(),
                JsonValue::from(report.lanes_per_case),
            ),
            ("cases".to_string(), JsonValue::from(report.cases.len())),
            (
                "mismatches".to_string(),
                JsonValue::from(report.total_mismatches()),
            ),
            ("all_match".to_string(), JsonValue::Bool(report.all_match())),
            ("backends".to_string(), JsonValue::Array(backend_rows)),
        ],
    }
}

/// [`BenchRecord`] for the static-analysis study (`BENCH_verify.json`):
/// analyzed tape instructions as `requests`, the aggregate
/// instructions-per-second of verification + analysis as the headline
/// throughput, per-model verdicts and minimal formats as extras.
pub fn verify_bench_record(study: &crate::VerifyStudy) -> BenchRecord {
    let rows = study
        .rows
        .iter()
        .map(|r| {
            JsonValue::Object(vec![
                ("model".to_string(), JsonValue::from(r.model.as_str())),
                ("instrs".to_string(), JsonValue::from(r.instrs)),
                (
                    "verify_us".to_string(),
                    JsonValue::from(r.verifier_wall.as_secs_f64() * 1e6),
                ),
                (
                    "analyze_us".to_string(),
                    JsonValue::from(r.analysis_wall.as_secs_f64() * 1e6),
                ),
                ("safe_formats".to_string(), JsonValue::from(r.safe_formats)),
                (
                    "minimal_fixed".to_string(),
                    JsonValue::from(
                        format!(
                            "fixed:{}.{}",
                            r.minimal_format.int_bits(),
                            r.minimal_format.frac_bits()
                        )
                        .as_str(),
                    ),
                ),
            ])
        })
        .collect();
    let total_instrs: usize = study.rows.iter().map(|r| r.instrs).sum();
    let total_wall: f64 = study
        .rows
        .iter()
        .map(|r| r.verifier_wall.as_secs_f64() + r.analysis_wall.as_secs_f64())
        .sum();
    BenchRecord {
        scenario: "verify".to_string(),
        requests: total_instrs as u64,
        throughput_rps: if total_wall > 0.0 {
            total_instrs as f64 / total_wall
        } else {
            0.0
        },
        latency: None,
        rejects: 0,
        extra: vec![
            (
                "formats".to_string(),
                JsonValue::Array(
                    study
                        .specs
                        .iter()
                        .map(|s| JsonValue::from(s.to_string().as_str()))
                        .collect(),
                ),
            ),
            ("models".to_string(), JsonValue::Array(rows)),
        ],
    }
}

/// [`BenchRecord`] for the evaluator-kernel study (`BENCH_kernels.json`):
/// lanes per sweep as `requests`, the fused f64 rate as the headline
/// throughput, per-arithmetic rates and speedups plus the fusion
/// statistics as extras.
pub fn kernels_bench_record(study: &crate::KernelStudy) -> BenchRecord {
    let rows = study
        .rows
        .iter()
        .map(|r| {
            JsonValue::Object(vec![
                ("arith".to_string(), JsonValue::from(r.arith)),
                ("scalar_eps".to_string(), JsonValue::from(r.scalar_eps)),
                ("simd_eps".to_string(), JsonValue::from(r.simd_eps)),
                ("fused_eps".to_string(), JsonValue::from(r.fused_eps)),
                (
                    "simd_speedup".to_string(),
                    JsonValue::from(r.simd_speedup()),
                ),
                (
                    "fused_speedup".to_string(),
                    JsonValue::from(r.fused_speedup()),
                ),
            ])
        })
        .collect();
    let headline = study.rows.first();
    BenchRecord {
        scenario: "kernels".to_string(),
        requests: study.batch as u64,
        throughput_rps: headline.map_or(0.0, |r| r.fused_eps),
        latency: None,
        rejects: 0,
        extra: vec![
            ("batch".to_string(), JsonValue::from(study.batch)),
            ("threads".to_string(), JsonValue::from(1u64)),
            ("identical".to_string(), JsonValue::Bool(study.identical)),
            ("rows".to_string(), JsonValue::Array(rows)),
            (
                "source_instrs".to_string(),
                JsonValue::from(study.fuse.source_instrs),
            ),
            (
                "fused_instrs".to_string(),
                JsonValue::from(study.fuse.fused_instrs),
            ),
            ("mul_accs".to_string(), JsonValue::from(study.fuse.mul_accs)),
            ("reduces".to_string(), JsonValue::from(study.fuse.reduces)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SEED;

    #[test]
    fn serving_record_round_trips_and_validates() {
        let study = crate::serving_study(40, SEED);
        let record = serving_bench_record(&study);
        assert_eq!(record.file_name(), "BENCH_serving.json");
        let text = record.to_json().render_pretty();
        validate_bench_json(&text).expect("emitted record validates");
        let doc = JsonValue::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(BENCH_SCHEMA)
        );
        assert_eq!(doc.get("requests").and_then(JsonValue::as_f64), Some(40.0));
        // 40 served requests → the histogram saw them all, so the
        // percentiles are real numbers.
        assert!(doc
            .get("latency_us")
            .and_then(|l| l.get("p50"))
            .and_then(JsonValue::as_f64)
            .is_some());
    }

    #[test]
    fn cache_record_validates_and_the_books_are_deterministic() {
        let study = crate::cache_study(18, 3, SEED);
        assert_eq!(study.unique, 18);
        assert_eq!(study.requests, 54);
        // Round one misses each of the 18 distinct keys once; the drain
        // barrier guarantees rounds two and three hit all of them.
        assert_eq!(study.cache_misses, 18);
        assert_eq!(study.cache_hits, 36);
        assert_eq!(study.cache_evictions, 0);
        // A hit replays the memoized payload: the cached pass must be
        // bit-identical to the cache-off pass on every request.
        assert_eq!(study.identical, study.requests);
        let record = cache_bench_record(&study);
        assert_eq!(record.file_name(), "BENCH_cache.json");
        let text = record.to_json().render_pretty();
        validate_bench_json(&text).expect("cache record validates");
        let doc = JsonValue::parse(&text).unwrap();
        assert_eq!(
            doc.get("hit_rate").and_then(JsonValue::as_f64),
            Some(36.0 / 54.0)
        );
    }

    #[test]
    fn qos_and_conformance_records_validate() {
        let qos = qos_bench_record(&crate::qos_study(80, SEED));
        validate_bench_json(&qos.to_json().render()).expect("qos record validates");
        assert!(qos.rejects > 0, "the QoS study must exercise the quota");
        let conf = conformance_bench_record(&crate::conformance_study(8, SEED));
        let text = conf.to_json().render_pretty();
        validate_bench_json(&text).expect("conformance record validates");
        let doc = JsonValue::parse(&text).unwrap();
        assert_eq!(doc.get("all_match"), Some(&JsonValue::Bool(true)));
        assert!(
            doc.get("backends")
                .and_then(JsonValue::as_array)
                .is_some_and(|b| b.len() >= 3),
            "expected scalar/tape/schedule/pipeline backend rows"
        );
    }

    #[test]
    fn kernels_record_validates_and_carries_fusion_stats() {
        let study = crate::kernel_study(64);
        let record = kernels_bench_record(&study);
        assert_eq!(record.file_name(), "BENCH_kernels.json");
        let text = record.to_json().render_pretty();
        validate_bench_json(&text).expect("kernels record validates");
        let doc = JsonValue::parse(&text).unwrap();
        assert_eq!(doc.get("identical"), Some(&JsonValue::Bool(true)));
        assert!(
            doc.get("mul_accs")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
                > 0.0,
            "the Alarm tape must fuse MulAccs"
        );
        assert!(doc
            .get("rows")
            .and_then(JsonValue::as_array)
            .is_some_and(|r| r.len() == 2));
    }

    #[test]
    fn validator_rejects_missing_and_mistyped_keys() {
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{}").unwrap_err().contains("schema"));
        let wrong_schema = r#"{"schema": "problp-bench/v0"}"#;
        assert!(validate_bench_json(wrong_schema)
            .unwrap_err()
            .contains("v0"));
        let no_latency = r#"{"schema": "problp-bench/v1", "scenario": "x",
            "requests": 1, "throughput_rps": 2.0, "rejects": 0}"#;
        assert!(validate_bench_json(no_latency)
            .unwrap_err()
            .contains("latency_us"));
        let bad_percentile = r#"{"schema": "problp-bench/v1", "scenario": "x",
            "requests": 1, "throughput_rps": 2.0, "rejects": 0,
            "latency_us": {"p50": "fast", "p90": 1, "p99": 2, "max": 3}}"#;
        assert!(validate_bench_json(bad_percentile)
            .unwrap_err()
            .contains("p50"));
    }
}
