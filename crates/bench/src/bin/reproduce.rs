//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p problp-bench --bin reproduce -- all
//! cargo run --release -p problp-bench --bin reproduce -- table2 --instances 1000
//! cargo run --release -p problp-bench --bin reproduce -- all --write-experiments
//! ```
//!
//! Subcommands: `table1`, `fig5a`, `fig5b`, `table2`, `ablations`,
//! `accuracy`, `missing`, `throughput`, `serving`, `conformance`, `all`.
//! Options: `--instances N` (test instances per benchmark, default 300;
//! the paper uses 1000 for Alarm), `--write-experiments` (rewrite
//! `EXPERIMENTS.md` from the measured results).

use problp_bench::{
    alarm_fixture, figure5a, figure5b, render_sweep, render_table2, table1, table2, SEED,
};

struct Options {
    command: String,
    instances: usize,
    write_experiments: bool,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        command: "all".to_string(),
        instances: 300,
        write_experiments: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instances" => {
                opts.instances = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--instances needs a number"));
            }
            "--write-experiments" => opts.write_experiments = true,
            "table1" | "fig5a" | "fig5b" | "table2" | "ablations" | "accuracy" | "missing"
            | "throughput" | "serving" | "conformance" | "all" => opts.command = arg,
            other => die(&format!("unknown argument {other}")),
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: reproduce [table1|fig5a|fig5b|table2|ablations|accuracy|missing|throughput|serving|conformance|all] [--instances N] [--write-experiments]");
    std::process::exit(2);
}

/// The sweep grid of Figure 5 (the paper sweeps 8..=40).
const SWEEP_BITS: [u32; 9] = [8, 12, 16, 20, 24, 28, 32, 36, 40];

fn main() {
    let opts = parse_args();
    let mut sections: Vec<String> = Vec::new();

    if matches!(opts.command.as_str(), "table1" | "all") {
        let t = table1();
        println!("{t}");
        sections.push(format!(
            "## Table 1 — operator energy models\n\n```text\n{t}```\n"
        ));
    }

    let need_alarm = matches!(opts.command.as_str(), "fig5a" | "fig5b" | "all");
    let fixture = need_alarm.then(|| {
        eprintln!(
            "building alarm fixture (seed {SEED}, {} instances)...",
            opts.instances
        );
        alarm_fixture(opts.instances)
    });

    if matches!(opts.command.as_str(), "fig5a" | "all") {
        let fixture = fixture.as_ref().expect("fixture built");
        let points = figure5a(fixture, &SWEEP_BITS);
        let t = render_sweep(
            &format!(
                "Figure 5(a): fixed-point marginal on Alarm, I=1, {} test instances — absolute error",
                fixture.bench.test_len()
            ),
            "max obs.",
            &points,
        );
        println!("{t}");
        sections.push(format!(
            "## Figure 5(a) — fixed-point bound vs observed error\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "fig5b" | "all") {
        let fixture = fixture.as_ref().expect("fixture built");
        let points = figure5b(fixture, &SWEEP_BITS);
        let t = render_sweep(
            &format!(
                "Figure 5(b): floating-point marginal on Alarm, {} test instances — relative error",
                fixture.bench.test_len()
            ),
            "max obs.",
            &points,
        );
        println!("{t}");
        sections.push(format!(
            "## Figure 5(b) — floating-point bound vs observed error\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "table2" | "all") {
        eprintln!(
            "running the full framework on all benchmarks ({} instances each)...",
            opts.instances
        );
        let rows = table2(opts.instances);
        let t = render_table2(&rows);
        println!("{t}");
        sections.push(format!(
            "## Table 2 — overall performance\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "accuracy" | "all") {
        let t = problp_bench::accuracy_report(opts.instances);
        println!("{t}");
        sections.push(format!("## Classification impact\n\n```text\n{t}```\n"));
        let t = problp_bench::accuracy_study_report(&["HAR", "UNIMIB", "UIWADS"], opts.instances);
        println!("{t}");
        sections.push(format!(
            "## Per-precision classifier accuracy (engine-served)\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "missing" | "all") {
        let t = problp_bench::missing_data_report(opts.instances.min(100), 0.01);
        println!("{t}");
        sections.push(format!("## Missing-data robustness\n\n```text\n{t}```\n"));
    }

    if matches!(opts.command.as_str(), "throughput" | "all") {
        let t = problp_bench::throughput_report(0);
        println!("{t}");
        sections.push(format!(
            "## Engine throughput — batched vs scalar evaluation\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "serving" | "all") {
        let t = problp_bench::serving_report(512, SEED);
        println!("{t}");
        sections.push(format!(
            "## Sharded multi-circuit serving — mixed-tenant workload\n\n```text\n{t}```\n"
        ));
        let t = problp_bench::qos_report(256, SEED);
        println!("{t}");
        sections.push(format!(
            "## QoS serving policy — hot-tenant quota + priority lanes + adaptive wait\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "conformance" | "all") {
        let t = problp_bench::conformance_report(256, SEED);
        println!("{t}");
        sections.push(format!(
            "## Differential conformance — engine vs hardware backends\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "ablations" | "all") {
        let t = problp_bench::ablation_report();
        println!("{t}");
        sections.push(format!(
            "## Ablations — design choices\n\n```text\n{t}```\n"
        ));
    }

    if opts.write_experiments {
        let doc = format!(
            "# EXPERIMENTS — measured reproduction results\n\n\
             Generated by `cargo run --release -p problp-bench --bin reproduce -- {} --instances {}`\n\
             (seed {SEED}). See `DESIGN.md` for the substitutions relative to the paper's setup\n\
             and the bottom of this file for the paper-vs-measured discussion.\n\n{}",
            opts.command,
            opts.instances,
            sections.join("\n")
        );
        std::fs::write("EXPERIMENTS.generated.md", doc).expect("write EXPERIMENTS.generated.md");
        eprintln!("wrote EXPERIMENTS.generated.md");
    }
}
