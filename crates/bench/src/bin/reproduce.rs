//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p problp-bench --bin reproduce -- all
//! cargo run --release -p problp-bench --bin reproduce -- table2 --instances 1000
//! cargo run --release -p problp-bench --bin reproduce -- all --write-experiments
//! ```
//!
//! Subcommands: `table1`, `fig5a`, `fig5b`, `table2`, `ablations`,
//! `accuracy`, `missing`, `throughput`, `kernels`, `serving`,
//! `conformance`, `all`, plus `check-bench FILE...` (validate emitted
//! `BENCH_*.json` files). Options: `--instances N` (test instances per
//! benchmark, default 300; the paper uses 1000 for Alarm),
//! `--write-experiments` (rewrite `EXPERIMENTS.md` from the measured
//! results). The `kernels`, `serving` and `conformance` sections also
//! write machine-readable `BENCH_kernels.json` / `BENCH_serving.json` /
//! `BENCH_qos.json` / `BENCH_cache.json` / `BENCH_conformance.json`
//! perf records into the working directory.

use problp_bench::{
    alarm_fixture, cache_bench_record, conformance_bench_record, figure5a, figure5b,
    kernels_bench_record, qos_bench_record, render_cache_report, render_conformance_report,
    render_kernel_study, render_qos_report, render_serving_report, render_sweep, render_table2,
    serving_bench_record, table1, table2, validate_bench_json, verify_bench_record, BenchRecord,
    SEED,
};

struct Options {
    command: String,
    instances: usize,
    write_experiments: bool,
    check_files: Vec<String>,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        command: "all".to_string(),
        instances: 300,
        write_experiments: false,
        check_files: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instances" => {
                opts.instances = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--instances needs a number"));
            }
            "--write-experiments" => opts.write_experiments = true,
            "check-bench" => {
                opts.command = arg;
                opts.check_files = args.by_ref().collect();
                if opts.check_files.is_empty() {
                    die("check-bench needs at least one BENCH_*.json path");
                }
            }
            "table1" | "fig5a" | "fig5b" | "table2" | "ablations" | "accuracy" | "missing"
            | "throughput" | "kernels" | "serving" | "conformance" | "verify" | "all" => {
                opts.command = arg
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: reproduce [table1|fig5a|fig5b|table2|ablations|accuracy|missing|throughput|kernels|serving|conformance|verify|all] [--instances N] [--write-experiments]");
    eprintln!("       reproduce check-bench FILE...");
    std::process::exit(2);
}

/// Validates `BENCH_*.json` files against the `problp-bench/v1` schema;
/// exits non-zero on the first invalid file.
fn check_bench(paths: &[String]) {
    for path in paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match validate_bench_json(&text) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => die(&format!("{path}: {e}")),
        }
    }
}

/// Writes one `BENCH_<scenario>.json` into the working directory.
fn emit_bench(record: &BenchRecord) {
    match record.write_to(std::path::Path::new(".")) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", record.file_name()),
    }
}

/// The sweep grid of Figure 5 (the paper sweeps 8..=40).
const SWEEP_BITS: [u32; 9] = [8, 12, 16, 20, 24, 28, 32, 36, 40];

fn main() {
    let opts = parse_args();
    if opts.command == "check-bench" {
        check_bench(&opts.check_files);
        return;
    }
    let mut sections: Vec<String> = Vec::new();

    if matches!(opts.command.as_str(), "table1" | "all") {
        let t = table1();
        println!("{t}");
        sections.push(format!(
            "## Table 1 — operator energy models\n\n```text\n{t}```\n"
        ));
    }

    let need_alarm = matches!(opts.command.as_str(), "fig5a" | "fig5b" | "all");
    let fixture = need_alarm.then(|| {
        eprintln!(
            "building alarm fixture (seed {SEED}, {} instances)...",
            opts.instances
        );
        alarm_fixture(opts.instances)
    });

    if matches!(opts.command.as_str(), "fig5a" | "all") {
        let fixture = fixture.as_ref().expect("fixture built");
        let points = figure5a(fixture, &SWEEP_BITS);
        let t = render_sweep(
            &format!(
                "Figure 5(a): fixed-point marginal on Alarm, I=1, {} test instances — absolute error",
                fixture.bench.test_len()
            ),
            "max obs.",
            &points,
        );
        println!("{t}");
        sections.push(format!(
            "## Figure 5(a) — fixed-point bound vs observed error\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "fig5b" | "all") {
        let fixture = fixture.as_ref().expect("fixture built");
        let points = figure5b(fixture, &SWEEP_BITS);
        let t = render_sweep(
            &format!(
                "Figure 5(b): floating-point marginal on Alarm, {} test instances — relative error",
                fixture.bench.test_len()
            ),
            "max obs.",
            &points,
        );
        println!("{t}");
        sections.push(format!(
            "## Figure 5(b) — floating-point bound vs observed error\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "table2" | "all") {
        eprintln!(
            "running the full framework on all benchmarks ({} instances each)...",
            opts.instances
        );
        let rows = table2(opts.instances);
        let t = render_table2(&rows);
        println!("{t}");
        sections.push(format!(
            "## Table 2 — overall performance\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "accuracy" | "all") {
        let t = problp_bench::accuracy_report(opts.instances);
        println!("{t}");
        sections.push(format!("## Classification impact\n\n```text\n{t}```\n"));
        let t = problp_bench::accuracy_study_report(&["HAR", "UNIMIB", "UIWADS"], opts.instances);
        println!("{t}");
        sections.push(format!(
            "## Per-precision classifier accuracy (engine-served)\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "missing" | "all") {
        let t = problp_bench::missing_data_report(opts.instances.min(100), 0.01);
        println!("{t}");
        sections.push(format!("## Missing-data robustness\n\n```text\n{t}```\n"));
    }

    if matches!(opts.command.as_str(), "throughput" | "all") {
        let t = problp_bench::throughput_report(0);
        println!("{t}");
        sections.push(format!(
            "## Engine throughput — batched vs scalar evaluation\n\n```text\n{t}```\n"
        ));
    }

    if matches!(opts.command.as_str(), "kernels" | "all") {
        let study = problp_bench::kernel_study(1024);
        let t = render_kernel_study(&study);
        println!("{t}");
        sections.push(format!(
            "## Evaluator kernels — scalar vs SIMD vs fused tape\n\n```text\n{t}```\n"
        ));
        emit_bench(&kernels_bench_record(&study));
    }

    if matches!(opts.command.as_str(), "serving" | "all") {
        let study = problp_bench::serving_study(512, SEED);
        let t = render_serving_report(&study);
        println!("{t}");
        sections.push(format!(
            "## Sharded multi-circuit serving — mixed-tenant workload\n\n```text\n{t}```\n"
        ));
        emit_bench(&serving_bench_record(&study));
        let study = problp_bench::qos_study(256, SEED);
        let t = render_qos_report(&study);
        println!("{t}");
        sections.push(format!(
            "## QoS serving policy — hot-tenant quota + priority lanes + adaptive wait\n\n```text\n{t}```\n"
        ));
        emit_bench(&qos_bench_record(&study));
        let study = problp_bench::cache_study(64, 4, SEED);
        let t = render_cache_report(&study);
        println!("{t}");
        sections.push(format!(
            "## Exact answer caching — repeated mixed-tenant trace\n\n```text\n{t}```\n"
        ));
        emit_bench(&cache_bench_record(&study));
    }

    if matches!(opts.command.as_str(), "conformance" | "all") {
        let study = problp_bench::conformance_study(256, SEED);
        let t = render_conformance_report(&study);
        println!("{t}");
        sections.push(format!(
            "## Differential conformance — engine vs hardware backends\n\n```text\n{t}```\n"
        ));
        emit_bench(&conformance_bench_record(&study));
    }

    if matches!(opts.command.as_str(), "verify" | "all") {
        let study = problp_bench::verify_study();
        let t = problp_bench::render_verify_study(&study);
        println!("{t}");
        sections.push(format!(
            "## Static analysis — tape verifier + range analysis\n\n```text\n{t}```\n"
        ));
        emit_bench(&verify_bench_record(&study));
    }

    if matches!(opts.command.as_str(), "ablations" | "all") {
        let t = problp_bench::ablation_report();
        println!("{t}");
        sections.push(format!(
            "## Ablations — design choices\n\n```text\n{t}```\n"
        ));
    }

    if opts.write_experiments {
        let doc = format!(
            "# EXPERIMENTS — measured reproduction results\n\n\
             Generated by `cargo run --release -p problp-bench --bin reproduce -- {} --instances {}`\n\
             (seed {SEED}). See `DESIGN.md` for the substitutions relative to the paper's setup\n\
             and the bottom of this file for the paper-vs-measured discussion.\n\n{}",
            opts.command,
            opts.instances,
            sections.join("\n")
        );
        std::fs::write("EXPERIMENTS.generated.md", doc).expect("write EXPERIMENTS.generated.md");
        eprintln!("wrote EXPERIMENTS.generated.md");
    }
}
