//! Whole-circuit energy estimates (the `Fixed-pt/Float-pt energy estimate`
//! blocks of Fig. 2).
//!
//! The estimate counts the two-input adders and multipliers of a binarized
//! circuit and multiplies by the operator-level model. This is exactly the
//! paper's `pred. energy in nJ/AC_eval` column of Table 2: indicator and
//! parameter leaves are free (wires / ROM), operators pay per Table 1.

use problp_ac::{AcGraph, AcNode};
use problp_num::{FixedFormat, FloatFormat};

use crate::model::EnergyModel;

/// Operator census of a (binarized) arithmetic circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OpCounts {
    /// Two-input adders.
    pub adds: usize,
    /// Two-input multipliers.
    pub muls: usize,
}

impl OpCounts {
    /// Counts the operators reachable from the root.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has no root.
    pub fn of(ac: &AcGraph) -> Self {
        let reachable = ac.reachable();
        let mut counts = OpCounts::default();
        for (i, node) in ac.nodes().iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            match node {
                AcNode::Sum(_) => counts.adds += 1,
                AcNode::Product(_) => counts.muls += 1,
                _ => {}
            }
        }
        counts
    }

    /// Total number of operators.
    pub fn total(&self) -> usize {
        self.adds + self.muls
    }
}

impl std::fmt::Display for OpCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} adds + {} muls", self.adds, self.muls)
    }
}

/// An energy estimate for one full evaluation of a circuit.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AcEnergy {
    /// The operator census the estimate is based on.
    pub ops: OpCounts,
    /// Energy of all additions (fJ).
    pub add_fj: f64,
    /// Energy of all multiplications (fJ).
    pub mul_fj: f64,
}

impl AcEnergy {
    /// Total energy in femtojoules.
    pub fn total_fj(&self) -> f64 {
        self.add_fj + self.mul_fj
    }

    /// Total energy in nanojoules (the unit of the paper's Table 2).
    pub fn total_nj(&self) -> f64 {
        self.total_fj() * 1e-6
    }
}

impl std::fmt::Display for AcEnergy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} nJ/eval ({})", self.total_nj(), self.ops)
    }
}

/// Predicts the energy of one evaluation with fixed-point operators.
///
/// # Panics
///
/// Panics if the circuit has no root.
pub fn fixed_ac_energy<M: EnergyModel>(ac: &AcGraph, format: FixedFormat, model: &M) -> AcEnergy {
    let ops = OpCounts::of(ac);
    AcEnergy {
        ops,
        add_fj: ops.adds as f64 * model.fixed_add_fj(format),
        mul_fj: ops.muls as f64 * model.fixed_mul_fj(format),
    }
}

/// Predicts the energy of one evaluation with floating-point operators.
///
/// # Panics
///
/// Panics if the circuit has no root.
pub fn float_ac_energy<M: EnergyModel>(ac: &AcGraph, format: FloatFormat, model: &M) -> AcEnergy {
    let ops = OpCounts::of(ac);
    AcEnergy {
        ops,
        add_fj: ops.adds as f64 * model.float_add_fj(format),
        mul_fj: ops.muls as f64 * model.float_mul_fj(format),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Tsmc65Model;
    use problp_ac::{compile, transform::binarize};
    use problp_bayes::networks;

    fn fixture() -> AcGraph {
        binarize(&compile(&networks::student()).unwrap()).unwrap()
    }

    #[test]
    fn op_counts_match_stats() {
        let ac = fixture();
        let ops = OpCounts::of(&ac);
        let stats = ac.stats();
        // The binarized circuit is fully reachable, so counts must agree.
        assert_eq!(ops.adds, stats.sums);
        assert_eq!(ops.muls, stats.products);
        assert_eq!(ops.total(), stats.sums + stats.products);
    }

    #[test]
    fn energy_is_counts_times_model() {
        let ac = fixture();
        let model = Tsmc65Model;
        let f = FixedFormat::new(1, 15).unwrap();
        let e = fixed_ac_energy(&ac, f, &model);
        let expect =
            e.ops.adds as f64 * model.fixed_add_fj(f) + e.ops.muls as f64 * model.fixed_mul_fj(f);
        assert!((e.total_fj() - expect).abs() < 1e-9);
        assert!((e.total_nj() - expect * 1e-6).abs() < 1e-15);
    }

    #[test]
    fn wider_formats_cost_more() {
        let ac = fixture();
        let model = Tsmc65Model;
        let narrow = fixed_ac_energy(&ac, FixedFormat::new(1, 11).unwrap(), &model);
        let wide = fixed_ac_energy(&ac, FixedFormat::new(1, 31).unwrap(), &model);
        assert!(wide.total_fj() > narrow.total_fj());
        let fl_narrow = float_ac_energy(&ac, FloatFormat::new(8, 10).unwrap(), &model);
        let fl_wide = float_ac_energy(&ac, FloatFormat::new(8, 23).unwrap(), &model);
        assert!(fl_wide.total_fj() > fl_narrow.total_fj());
    }

    #[test]
    fn alarm_energy_magnitude_is_paper_like() {
        // Paper Table 2 row "Alarm, marg, abs 0.01": F = 14 -> 2.2 nJ with
        // ACE's circuit. Ours is larger (VE compilation), so expect the
        // same order of magnitude, a few nJ.
        let ac = binarize(&compile(&networks::alarm(7)).unwrap()).unwrap();
        let e = fixed_ac_energy(&ac, FixedFormat::new(1, 14).unwrap(), &Tsmc65Model);
        assert!(
            (0.5..=30.0).contains(&e.total_nj()),
            "alarm energy {} nJ outside plausible band",
            e.total_nj()
        );
    }

    #[test]
    fn comparable_formats_favor_fixed_at_matched_error() {
        // Paper observation: at matched bit counts fixed adders are much
        // cheaper, float multipliers slightly cheaper than fixed at the
        // same mantissa, but fixed usually needs more bits.
        let ac = fixture();
        let model = Tsmc65Model;
        let fx = fixed_ac_energy(&ac, FixedFormat::new(1, 15).unwrap(), &model);
        let fl = float_ac_energy(&ac, FloatFormat::new(8, 14).unwrap(), &model);
        // Same-magnitude formats: both within 3x of each other.
        let ratio = fx.total_fj() / fl.total_fj();
        assert!((0.33..=3.0).contains(&ratio), "ratio {ratio}");
    }
}
