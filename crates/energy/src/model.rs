//! Operator-level energy models (paper Table 1).
//!
//! The paper fitted these models to post-synthesis energies of adders and
//! multipliers synthesized in TSMC 65 nm at 1 V. The fitted coefficients
//! are reproduced verbatim; they are the `Energy models` input of Fig. 2.
//!
//! | Operator      | Energy (fJ)              |
//! |---------------|--------------------------|
//! | Fixed-pt add  | `7.8 · N`                |
//! | Fixed-pt mult | `1.9 · N² · log2 N`      |
//! | Float-pt add  | `44.74 · (M+1)`          |
//! | Float-pt mult | `2.9 · (M+1)² · log2(M+1)` |
//!
//! `N` is the total number of fixed-point bits (`I + F`) and `M` the
//! number of mantissa bits.

use problp_num::{FixedFormat, FloatFormat};

/// An operator-level energy model: energy per operation in femtojoules.
///
/// The trait allows swapping technology nodes or recalibrated models; the
/// shipped implementation is [`Tsmc65Model`] (the paper's Table 1).
pub trait EnergyModel {
    /// Energy of one fixed-point addition at `N = I + F` total bits (fJ).
    fn fixed_add_fj(&self, format: FixedFormat) -> f64;
    /// Energy of one fixed-point multiplication at `N = I + F` bits (fJ).
    fn fixed_mul_fj(&self, format: FixedFormat) -> f64;
    /// Energy of one floating-point addition at `M` mantissa bits (fJ).
    fn float_add_fj(&self, format: FloatFormat) -> f64;
    /// Energy of one floating-point multiplication at `M` mantissa bits
    /// (fJ).
    fn float_mul_fj(&self, format: FloatFormat) -> f64;
}

/// The paper's fitted TSMC 65 nm @ 1 V models (Table 1).
///
/// # Examples
///
/// ```
/// use problp_energy::{EnergyModel, Tsmc65Model};
/// use problp_num::{FixedFormat, FloatFormat};
///
/// let m = Tsmc65Model;
/// let fx16 = FixedFormat::new(1, 15)?; // N = 16
/// assert_eq!(m.fixed_add_fj(fx16), 7.8 * 16.0);
/// assert_eq!(m.fixed_mul_fj(fx16), 1.9 * 256.0 * 4.0);
/// let fl = FloatFormat::new(8, 23)?; // M + 1 = 24
/// assert_eq!(m.float_add_fj(fl), 44.74 * 24.0);
/// # Ok::<(), problp_num::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Tsmc65Model;

impl EnergyModel for Tsmc65Model {
    fn fixed_add_fj(&self, format: FixedFormat) -> f64 {
        let n = format.total_bits() as f64;
        7.8 * n
    }

    fn fixed_mul_fj(&self, format: FixedFormat) -> f64 {
        let n = format.total_bits() as f64;
        1.9 * n * n * n.log2()
    }

    fn float_add_fj(&self, format: FloatFormat) -> f64 {
        let m1 = (format.mant_bits() + 1) as f64;
        44.74 * m1
    }

    fn float_mul_fj(&self, format: FloatFormat) -> f64 {
        let m1 = (format.mant_bits() + 1) as f64;
        2.9 * m1 * m1 * m1.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(i: u32, f: u32) -> FixedFormat {
        FixedFormat::new(i, f).unwrap()
    }

    fn fl(e: u32, m: u32) -> FloatFormat {
        FloatFormat::new(e, m).unwrap()
    }

    #[test]
    fn table1_fixed_values() {
        let m = Tsmc65Model;
        // N = 8
        assert!((m.fixed_add_fj(fx(1, 7)) - 62.4).abs() < 1e-9);
        assert!((m.fixed_mul_fj(fx(1, 7)) - 1.9 * 64.0 * 3.0).abs() < 1e-9);
        // N = 32
        assert!((m.fixed_add_fj(fx(1, 31)) - 249.6).abs() < 1e-9);
        assert!((m.fixed_mul_fj(fx(1, 31)) - 1.9 * 1024.0 * 5.0).abs() < 1e-9);
    }

    #[test]
    fn table1_float_values() {
        let m = Tsmc65Model;
        // M = 13 (the paper's Alarm float choice).
        assert!((m.float_add_fj(fl(8, 13)) - 44.74 * 14.0).abs() < 1e-9);
        let expect = 2.9 * 14.0 * 14.0 * 14.0_f64.log2();
        assert!((m.float_mul_fj(fl(8, 13)) - expect).abs() < 1e-9);
    }

    #[test]
    fn energy_grows_with_width() {
        let m = Tsmc65Model;
        assert!(m.fixed_mul_fj(fx(1, 15)) < m.fixed_mul_fj(fx(1, 31)));
        assert!(m.float_mul_fj(fl(8, 10)) < m.float_mul_fj(fl(8, 23)));
        assert!(m.fixed_add_fj(fx(1, 15)) < m.fixed_add_fj(fx(2, 15)));
    }

    #[test]
    fn multipliers_dominate_adders() {
        let m = Tsmc65Model;
        for bits in [8u32, 16, 24, 32] {
            assert!(m.fixed_mul_fj(fx(1, bits - 1)) > m.fixed_add_fj(fx(1, bits - 1)));
        }
        for mant in [8u32, 16, 23] {
            assert!(m.float_mul_fj(fl(8, mant)) > m.float_add_fj(fl(8, mant)));
        }
    }

    #[test]
    fn exponent_bits_do_not_change_the_model() {
        // Table 1 models float energy by mantissa width only.
        let m = Tsmc65Model;
        assert_eq!(m.float_add_fj(fl(5, 10)), m.float_add_fj(fl(11, 10)));
        assert_eq!(m.float_mul_fj(fl(5, 10)), m.float_mul_fj(fl(11, 10)));
    }
}
