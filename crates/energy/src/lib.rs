//! # problp-energy — energy models and estimates for ProbLP
//!
//! The energy side of the ProbLP framework (paper §3.3): the fitted
//! TSMC 65 nm operator models of Table 1 ([`Tsmc65Model`]), whole-circuit
//! energy estimates ([`fixed_ac_energy`], [`float_ac_energy`] — the
//! `pred. energy` column of Table 2), and an independent gate-level
//! estimator ([`CellLibrary`]) standing in for the paper's post-synthesis
//! measurements.
//!
//! # Examples
//!
//! ```
//! use problp_ac::{compile, transform::binarize};
//! use problp_bayes::networks;
//! use problp_energy::{fixed_ac_energy, float_ac_energy, Tsmc65Model};
//! use problp_num::{FixedFormat, FloatFormat};
//!
//! let ac = binarize(&compile(&networks::alarm(7))?)?;
//! let fx = fixed_ac_energy(&ac, FixedFormat::new(1, 14)?, &Tsmc65Model);
//! let fl = float_ac_energy(&ac, FloatFormat::new(8, 13)?, &Tsmc65Model);
//! // The paper's Table 2: fixed wins for Alarm marginal queries.
//! assert!(fx.total_nj() < fl.total_nj());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimate;
mod gate;
mod model;

pub use estimate::{fixed_ac_energy, float_ac_energy, AcEnergy, OpCounts};
pub use gate::CellLibrary;
pub use model::{EnergyModel, Tsmc65Model};
