//! Gate-level ("post-synthesis") energy estimation.
//!
//! The paper's Table 2 compares the model *prediction* against energies
//! measured on the synthesized netlist. Without a synthesis flow, this
//! module provides the stand-in (DESIGN.md substitution 3): a structural
//! estimator that counts standard cells per operator — full adders,
//! partial-product AND gates, shifter muxes, pipeline flops — and
//! multiplies by calibrated 65 nm-class cell energies with an
//! array-multiplier glitch factor.
//!
//! The estimator is *independent* of Table 1 (it reasons about cells, not
//! fitted curves) but lands within a few tens of percent of it over the
//! relevant width range, mirroring the pred-vs-post-synthesis agreement
//! the paper reports.

use problp_num::{FixedFormat, FloatFormat};

/// Per-cell switching energies (fJ per operation) and activity factors of
/// a 65 nm-class standard-cell library at 1 V.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CellLibrary {
    /// Energy of a 2-input AND gate toggling once.
    pub and2_fj: f64,
    /// Energy of a full-adder cell.
    pub fa_fj: f64,
    /// Energy of a 2-input mux.
    pub mux2_fj: f64,
    /// Energy of one flip-flop bit per clock.
    pub flop_fj: f64,
    /// Glitch growth per array-multiplier level (multiplies `log2 N`).
    pub mul_glitch: f64,
    /// Overall switching-activity factor applied to combinational cells.
    pub activity: f64,
}

impl Default for CellLibrary {
    /// Calibrated so the structural estimates track the paper's Table 1
    /// models within roughly ±30 % for the widths ProbLP selects.
    fn default() -> Self {
        CellLibrary {
            and2_fj: 0.4,
            fa_fj: 4.5,
            mux2_fj: 1.2,
            flop_fj: 1.8,
            mul_glitch: 0.39,
            activity: 1.0,
        }
    }
}

impl CellLibrary {
    /// Gate-level energy of a `W`-bit ripple-carry adder.
    pub fn fixed_add_fj(&self, format: FixedFormat) -> f64 {
        let w = format.total_bits() as f64;
        // One full adder per bit, carry-chain activity ~1.6 (a carry
        // toggle re-evaluates downstream cells).
        self.activity * w * self.fa_fj * 1.6
    }

    /// Gate-level energy of a `W x W` array multiplier with output
    /// rounding.
    pub fn fixed_mul_fj(&self, format: FixedFormat) -> f64 {
        let w = format.total_bits() as f64;
        // W^2 partial-product ANDs, ~W(W-2) carry-save adder cells, and a
        // final W-bit rounding add; glitching grows with array depth.
        let cells = self.and2_fj * w * w + self.fa_fj * w * (w - 2.0).max(1.0) + self.fa_fj * w;
        self.activity * cells * (self.mul_glitch * w.log2()).max(1.0)
    }

    /// Gate-level energy of a floating-point adder (swap, align shifter,
    /// mantissa add, leading-zero count, normalize shifter, round,
    /// exponent logic).
    pub fn float_add_fj(&self, format: FloatFormat) -> f64 {
        let m1 = (format.mant_bits() + 1) as f64;
        let e = format.exp_bits() as f64;
        let levels = m1.log2().ceil();
        let mantissa_cells = m1
            * (self.mux2_fj * (2.0 * levels + 2.0) // two shifters + swap
            + 2.0 * self.fa_fj                                        // add + round
            + self.mux2_fj * 2.0); // LZC tree approximation
        let exponent_cells = e * 3.0 * self.fa_fj; // compare, difference, adjust
        self.activity * (mantissa_cells + exponent_cells) * 1.55
    }

    /// Gate-level energy of a floating-point multiplier (mantissa array
    /// multiplier, normalization, rounding, exponent adder).
    pub fn float_mul_fj(&self, format: FloatFormat) -> f64 {
        let m1 = (format.mant_bits() + 1) as f64;
        let e = format.exp_bits() as f64;
        let array = self.and2_fj * m1 * m1 + self.fa_fj * m1 * (m1 - 2.0).max(1.0);
        let round = self.fa_fj * m1 + self.mux2_fj * m1;
        let exponent = e * 2.0 * self.fa_fj;
        self.activity * (array + round + exponent) * (self.mul_glitch * m1.log2()).max(1.0)
    }

    /// Gate-level energy of `bits` pipeline-register bits for one clock.
    pub fn register_fj(&self, bits: usize) -> f64 {
        bits as f64 * self.flop_fj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EnergyModel, Tsmc65Model};

    fn fx(total: u32) -> FixedFormat {
        FixedFormat::new(1, total - 1).unwrap()
    }

    fn fl(m: u32) -> FloatFormat {
        FloatFormat::new(8, m).unwrap()
    }

    #[test]
    fn tracks_table1_fixed_mul_within_band() {
        let lib = CellLibrary::default();
        let model = Tsmc65Model;
        for total in [8u32, 12, 16, 24, 32, 48] {
            let gate = lib.fixed_mul_fj(fx(total));
            let fitted = model.fixed_mul_fj(fx(total));
            let ratio = gate / fitted;
            assert!(
                (0.6..=1.6).contains(&ratio),
                "N={total}: gate {gate:.0} vs fitted {fitted:.0} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn tracks_table1_fixed_add_within_band() {
        let lib = CellLibrary::default();
        let model = Tsmc65Model;
        for total in [8u32, 16, 32, 48] {
            let ratio = lib.fixed_add_fj(fx(total)) / model.fixed_add_fj(fx(total));
            assert!((0.6..=1.6).contains(&ratio), "N={total}: ratio {ratio:.2}");
        }
    }

    #[test]
    fn tracks_table1_float_within_band() {
        let lib = CellLibrary::default();
        let model = Tsmc65Model;
        for m in [10u32, 13, 16, 23] {
            let add_ratio = lib.float_add_fj(fl(m)) / model.float_add_fj(fl(m));
            assert!(
                (0.5..=1.7).contains(&add_ratio),
                "M={m}: add ratio {add_ratio:.2}"
            );
            let mul_ratio = lib.float_mul_fj(fl(m)) / model.float_mul_fj(fl(m));
            assert!(
                (0.5..=1.7).contains(&mul_ratio),
                "M={m}: mul ratio {mul_ratio:.2}"
            );
        }
    }

    #[test]
    fn registers_scale_linearly() {
        let lib = CellLibrary::default();
        assert_eq!(lib.register_fj(0), 0.0);
        assert!((lib.register_fj(100) - 100.0 * lib.flop_fj).abs() < 1e-12);
    }

    #[test]
    fn exponent_width_matters_at_gate_level() {
        // Unlike Table 1, the structural estimate sees exponent hardware.
        let lib = CellLibrary::default();
        let narrow = lib.float_add_fj(FloatFormat::new(5, 12).unwrap());
        let wide = lib.float_add_fj(FloatFormat::new(11, 12).unwrap());
        assert!(wide > narrow);
    }
}
