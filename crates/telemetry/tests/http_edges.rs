//! HTTP edge cases shared by the scrape sidecar and (through the same
//! `httpd` primitives) the query gateway: malformed request lines,
//! unknown methods, oversized heads/bodies, truncated bodies, pipelined
//! requests, stalled clients vs `/healthz` promptness, and the strict
//! scrape client (`http_get`) against hostile servers.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use problp_telemetry::{http_get, http_request, HealthStatus, MetricsRegistry, Sidecar};

fn start_sidecar() -> Sidecar {
    let registry = Arc::new(MetricsRegistry::new());
    registry.counter("edge_hits_total", "test").add(5);
    Sidecar::start("127.0.0.1:0", registry, Box::new(HealthStatus::ok)).expect("bind sidecar")
}

/// Writes `head` raw, half-closes, and returns everything the server
/// sends back (responses are `Connection: close`, so EOF ends them).
fn raw_exchange(addr: &SocketAddr, head: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(head).expect("write");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

#[test]
fn malformed_request_line_is_400() {
    let sidecar = start_sidecar();
    let response = raw_exchange(&sidecar.local_addr(), b"total garbage\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400 "), "got: {response:?}");
}

#[test]
fn unknown_method_is_405() {
    let sidecar = start_sidecar();
    let (code, _headers, body) =
        http_request(&sidecar.local_addr(), "POST", "/metrics", &[], b"{}").unwrap();
    assert_eq!(code, 405);
    assert!(body.contains("only GET"));
}

#[test]
fn oversized_request_line_is_431() {
    let sidecar = start_sidecar();
    let head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024));
    let response = raw_exchange(&sidecar.local_addr(), head.as_bytes());
    assert!(response.starts_with("HTTP/1.1 431 "), "got: {response:?}");
}

#[test]
fn oversized_headers_are_431() {
    let sidecar = start_sidecar();
    let mut head = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..2000 {
        head.push_str(&format!("x-filler-{i}: {}\r\n", "v".repeat(32)));
    }
    head.push_str("\r\n");
    let response = raw_exchange(&sidecar.local_addr(), head.as_bytes());
    assert!(response.starts_with("HTTP/1.1 431 "), "got: {response:?}");
}

#[test]
fn oversized_body_is_413_without_reading_it() {
    let sidecar = start_sidecar();
    // Declare a body far over the sidecar's 4 KiB cap but never send
    // it: the 413 must come from the declared length alone.
    let head = "GET /healthz HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
    let response = raw_exchange(&sidecar.local_addr(), head.as_bytes());
    assert!(response.starts_with("HTTP/1.1 413 "), "got: {response:?}");
}

#[test]
fn truncated_body_is_400() {
    let sidecar = start_sidecar();
    let head = "GET /healthz HTTP/1.1\r\nContent-Length: 50\r\n\r\nabc";
    let response = raw_exchange(&sidecar.local_addr(), head.as_bytes());
    assert!(response.starts_with("HTTP/1.1 400 "), "got: {response:?}");
    assert!(response.contains("3 of 50"), "got: {response:?}");
}

#[test]
fn pipelined_requests_answer_the_first_and_close() {
    let sidecar = start_sidecar();
    // Two pipelined GETs in one write: the server answers the first
    // with `Connection: close` and drops the rest instead of wedging.
    let head = "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
    let response = raw_exchange(&sidecar.local_addr(), head.as_bytes());
    assert_eq!(
        response.matches("HTTP/1.1 ").count(),
        1,
        "got: {response:?}"
    );
    assert!(response.starts_with("HTTP/1.1 200 "));
    assert!(response.contains("ok\n"));
    assert!(!response.contains("edge_hits_total"));
}

#[test]
fn stalled_client_does_not_block_healthz() {
    let sidecar = start_sidecar();
    let addr = sidecar.local_addr();
    // A client that connects, sends half a request line, and stalls. It
    // pins one pool worker for up to the 2 s read timeout...
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.write_all(b"GET /met").expect("partial write");
    thread::sleep(Duration::from_millis(50));
    // ...while liveness probes keep getting answered promptly on the
    // other worker, instead of queueing behind the stall.
    let started = Instant::now();
    let (code, body) = http_get(&addr, "/healthz").expect("healthz while stalled");
    assert_eq!(code, 200);
    assert!(body.starts_with("ok\n"));
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "healthz took {:?} behind a stalled client",
        started.elapsed()
    );
    drop(stalled);
}

/// A one-connection fake server answering with `response` verbatim,
/// optionally holding the connection open afterwards (keep-alive
/// behaviour the strict client must not block on).
fn fake_server(response: &'static [u8], linger: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("local addr");
    thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            // Drain the request head so the client's write succeeds.
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let _ = stream.write_all(response);
            let _ = stream.flush();
            thread::sleep(linger);
        }
    });
    addr
}

#[test]
fn http_get_rejects_malformed_status_lines_typed() {
    let addr = fake_server(b"TOTALLY NOT HTTP\r\n\r\n", Duration::ZERO);
    let err = http_get(&addr, "/").expect_err("garbage status line must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("TOTALLY NOT HTTP"),
        "error should name the line: {err}"
    );
}

#[test]
fn http_get_uses_content_length_instead_of_waiting_for_eof() {
    // A keep-alive server: correct response, connection held open well
    // past the client's 2 s read timeout. Content-Length must end the
    // body read promptly.
    let addr = fake_server(
        b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello",
        Duration::from_secs(4),
    );
    let started = Instant::now();
    let (code, body) = http_get(&addr, "/").expect("prompt scrape");
    assert_eq!(code, 200);
    assert_eq!(body, "hello");
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "scrape took {:?} against a keep-alive server",
        started.elapsed()
    );
}

#[test]
fn http_get_rejects_a_body_shorter_than_declared() {
    let addr = fake_server(
        b"HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort",
        Duration::ZERO,
    );
    let err = http_get(&addr, "/").expect_err("short body must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn http_get_reads_close_delimited_bodies() {
    let addr = fake_server(b"HTTP/1.1 200 OK\r\n\r\nno content length", Duration::ZERO);
    let (code, body) = http_get(&addr, "/").expect("close-delimited body");
    assert_eq!(code, 200);
    assert_eq!(body, "no content length");
}
