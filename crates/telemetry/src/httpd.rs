//! Shared bounded HTTP/1.1 primitives for the scrape [`crate::Sidecar`]
//! and the query gateway in `problp-engine`: request parsing with hard
//! size limits (oversized heads → 431, oversized bodies → 413, truncated
//! bodies → 400 instead of unbounded reads), a canonical response
//! writer, a small bounded [`WorkerPool`] so one stalled connection
//! cannot serialize every other client behind it, and a strict client
//! ([`read_response`] / [`http_request`]) that fails malformed status
//! lines with a typed error and uses `Content-Length` instead of
//! blocking until the read timeout.
//!
//! Everything is `std::net` + `std::io`; no dependencies, no panics.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Hard size limits of [`read_request`]. "Head" is the request line
/// plus all header lines together (including their CRLFs).
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Max bytes of request line + headers before the read is rejected
    /// with [`HttpError::HeadTooLarge`] (→ 431).
    pub max_head: usize,
    /// Max declared `Content-Length` before the body is rejected with
    /// [`HttpError::BodyTooLarge`] (→ 413), *without* reading it.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head: 8 * 1024,
            max_body: 64 * 1024,
        }
    }
}

/// One parsed request: the routing fields plus the raw body bytes.
/// Header names are lower-cased at parse time; values keep their case.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// The request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (`/v1/query`).
    pub path: String,
    /// Parsed headers, names lower-cased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Why [`read_request`] rejected a connection. Every protocol-level
/// variant carries the HTTP status it should be answered with
/// ([`HttpError::status`]); [`HttpError::Io`] means the socket died and
/// there is nobody left to answer.
#[derive(Debug)]
pub enum HttpError {
    /// The request is not parseable HTTP/1.1 (garbage request line,
    /// header without a colon, body shorter than its declared
    /// `Content-Length`). Answered 400.
    Malformed(String),
    /// Request line + headers exceeded [`HttpLimits::max_head`].
    /// Answered 431.
    HeadTooLarge {
        /// The configured head cap, bytes.
        limit: usize,
    },
    /// The declared `Content-Length` exceeded [`HttpLimits::max_body`];
    /// the body was not read. Answered 413.
    BodyTooLarge {
        /// The configured body cap, bytes.
        limit: usize,
        /// The declared `Content-Length`.
        length: usize,
    },
    /// The client stalled past the socket's read timeout mid-request.
    /// Answered 408.
    Timeout,
    /// The socket failed outright (reset, broken pipe); no response is
    /// possible.
    Io(io::Error),
}

impl HttpError {
    /// The status line this rejection should be answered with, or
    /// `None` for [`HttpError::Io`] (just drop the connection).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::HeadTooLarge { .. } => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge { .. } => Some((413, "Content Too Large")),
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request line + headers exceed {limit} bytes")
            }
            HttpError::BodyTooLarge { limit, length } => {
                write!(
                    f,
                    "declared body of {length} bytes exceeds the {limit}-byte cap"
                )
            }
            HttpError::Timeout => write!(f, "client stalled mid-request"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Classifies a raw socket error: stalls (read timeout) become
/// [`HttpError::Timeout`], everything else is terminal [`HttpError::Io`].
fn classify_io(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Reads one head line (request line or header) without ever buffering
/// more than the remaining head `budget`: over-budget lines fail
/// [`HttpError::HeadTooLarge`] instead of growing a string until the
/// client stops. Returns `None` on a clean EOF before any byte.
fn read_head_line<R: BufRead>(
    reader: &mut R,
    limit: usize,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let n = reader
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut raw)
        .map_err(classify_io)?;
    if n == 0 {
        return Ok(None);
    }
    if !raw.ends_with(b"\n") {
        // Either the line overflowed the budget, or the stream ended
        // mid-line; only the former gets its own status.
        if n > *budget {
            return Err(HttpError::HeadTooLarge { limit });
        }
        return Err(HttpError::Malformed(
            "connection closed mid-line".to_string(),
        ));
    }
    *budget = budget.saturating_sub(n);
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    match String::from_utf8(raw) {
        Ok(line) => Ok(Some(line)),
        Err(_) => Err(HttpError::Malformed("head line is not UTF-8".to_string())),
    }
}

/// Reads and parses one HTTP/1.1 request under `limits`.
///
/// The head (request line + headers) is read through a hard byte budget
/// — an attacker streaming an endless header line costs
/// `limits.max_head` bytes of memory, then a 431. The body is only read
/// after its declared `Content-Length` passed the `max_body` cap (413
/// otherwise, without reading), and a connection that closes or stalls
/// before delivering the declared bytes fails typed
/// ([`HttpError::Malformed`] / [`HttpError::Timeout`]) instead of
/// blocking forever or returning a short body.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    limits: &HttpLimits,
) -> Result<HttpRequest, HttpError> {
    let mut budget = limits.max_head;
    let request_line = read_head_line(reader, limits.max_head, &mut budget)?
        .ok_or_else(|| HttpError::Malformed("connection closed before a request".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/") {
        return Err(HttpError::Malformed(format!(
            "bad protocol version {version:?}"
        )));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_head_line(reader, limits.max_head, &mut budget)?
            .ok_or_else(|| HttpError::Malformed("connection closed inside headers".to_string()))?;
        if line.is_empty() {
            break;
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()))
            }
            None => {
                return Err(HttpError::Malformed(format!(
                    "header line without a colon: {line:?}"
                )))
            }
        }
    }
    let length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("unparseable content-length {v:?}")))?,
        None => 0,
    };
    if length > limits.max_body {
        return Err(HttpError::BodyTooLarge {
            limit: limits.max_body,
            length,
        });
    }
    let mut body = vec![0u8; length];
    let mut got = 0;
    while got < length {
        match reader.read(&mut body[got..]) {
            Ok(0) => {
                return Err(HttpError::Malformed(format!(
                    "body ended after {got} of {length} declared bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) => return Err(classify_io(e)),
        }
    }
    Ok(HttpRequest {
        method,
        path,
        headers,
        body,
    })
}

/// Bytes a rejecting server is willing to drain before closing.
const DRAIN_CAP: usize = 256 * 1024;

/// Briefly drains what is left of a rejected request so closing the
/// socket does not RST away the error response still sitting in the
/// client's receive buffer (a close with unread data discards delivered
/// bytes on most TCP stacks). Bounded to 256 KiB and a short read
/// timeout, so a hostile sender cannot turn the courtesy into a hold.
pub fn drain_rejected(stream: &TcpStream, reader: &mut impl Read) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    let mut total = 0;
    loop {
        match reader.read(&mut sink) {
            Ok(0) => break,
            Ok(n) => {
                total += n;
                if total >= DRAIN_CAP {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// The reason phrase of every status this stack emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes one `Connection: close` response with an exact
/// `Content-Length`, plus any `extra_headers` (e.g. `Retry-After`).
pub fn write_response(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_reason(code),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A fixed-size connection worker pool over a bounded queue: the accept
/// loop stays free to answer (or shed) new connections while at most
/// `workers` requests are being handled, and a full queue hands the
/// connection *back* to the caller ([`WorkerPool::dispatch`]) so it can
/// answer 503 instead of queueing unboundedly. Dropping the pool joins
/// the workers after the queue drains.
pub struct WorkerPool {
    tx: Option<mpsc::SyncSender<TcpStream>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) named `name-<i>`, each
    /// pulling connections off a queue of at most `backlog` waiting
    /// connections and running `handler` on them.
    pub fn new(
        name: &str,
        workers: usize,
        backlog: usize,
        handler: Arc<dyn Fn(TcpStream) + Send + Sync>,
    ) -> WorkerPool {
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .filter_map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only across recv keeps the
                        // handoff serialized but the handling parallel.
                        let next = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return,
                        };
                        match next {
                            Ok(stream) => handler(stream),
                            Err(_) => return, // sender dropped: shutdown
                        }
                    })
                    .ok()
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queues `stream` for a worker. A full (or shut down) pool returns
    /// the stream so the caller can shed load with a prompt 503.
    pub fn dispatch(&self, stream: TcpStream) -> Result<(), TcpStream> {
        match &self.tx {
            Some(tx) => tx.try_send(stream).map_err(|e| match e {
                TrySendError::Full(s) | TrySendError::Disconnected(s) => s,
            }),
            None => Err(stream),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx = None; // disconnect: workers exit once the queue drains
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// What the client helpers return for one exchange: status code,
/// headers (names lower-cased) and the UTF-8 body.
pub type HttpResponse = (u16, Vec<(String, String)>, String);

/// Reads one HTTP response off `stream`: status code, headers (names
/// lower-cased) and body.
///
/// Malformed status lines fail with a typed
/// [`io::ErrorKind::InvalidData`] error naming the offending line
/// (never a silently degraded code), and a response that declares
/// `Content-Length` is read to exactly that many bytes — no waiting for
/// EOF, so a keep-alive server that never closes cannot park the client
/// on its read timeout. Without `Content-Length` the body runs to EOF
/// (close-delimited), with a read timeout treated as end of body.
pub fn read_response(stream: TcpStream) -> io::Result<HttpResponse> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let line = status_line.trim_end();
    let code: u16 = match line.strip_prefix("HTTP/") {
        Some(_) => line.split_whitespace().nth(1).and_then(|s| s.parse().ok()),
        None => None,
    }
    .ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad status line {line:?}"),
        )
    })?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed inside response headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = Vec::new();
    match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => {
            let length: usize = v.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparseable content-length {v:?}"),
                )
            })?;
            body.resize(length, 0);
            reader.read_exact(&mut body).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response body shorter than its declared {length} bytes"),
                    )
                } else {
                    e
                }
            })?;
        }
        None => {
            // Close-delimited body: EOF ends it; a stalling keep-alive
            // server ends it at the read timeout with what arrived.
            if let Err(e) = reader.read_to_end(&mut body) {
                if !matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) {
                    return Err(e);
                }
            }
        }
    }
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response body is not UTF-8"))?;
    Ok((code, headers, body))
}

/// Issues one `method path` request against `addr` with `Connection:
/// close`, a 2-second connect/read/write timeout, and returns
/// `(status, headers, body)` via [`read_response`].
pub fn http_request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<HttpResponse> {
    let timeout = Duration::from_secs(2);
    let mut stream = TcpStream::connect_timeout(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(stream)
}

/// [`http_request`] for `POST` with a string body — the shape every
/// gateway client (tests, serve-http self-drive) uses.
pub fn http_post(
    addr: &SocketAddr,
    path: &str,
    headers: &[(&str, String)],
    body: &str,
) -> io::Result<HttpResponse> {
    http_request(addr, "POST", path, headers, body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str, limits: &HttpLimits) -> Result<HttpRequest, HttpError> {
        read_request(&mut Cursor::new(text.as_bytes()), limits)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nAuthorization: Bearer t\r\nContent-Length: 4\r\n\r\nabcd",
            &HttpLimits::default(),
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.header("authorization"), Some("Bearer t"));
        assert_eq!(req.header("AUTHORIZATION"), Some("Bearer t"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_garbage_request_lines() {
        for garbage in ["\r\n", "GET\r\n", "GET /x NOTHTTP\r\n"] {
            let text = format!("{garbage}\r\n");
            assert!(
                matches!(
                    parse(&text, &HttpLimits::default()),
                    Err(HttpError::Malformed(_))
                ),
                "{garbage:?}"
            );
        }
    }

    #[test]
    fn rejects_oversized_heads_without_buffering_them() {
        let limits = HttpLimits {
            max_head: 64,
            max_body: 1024,
        };
        // One endless request line.
        let text = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(1000));
        assert!(matches!(
            parse(&text, &limits),
            Err(HttpError::HeadTooLarge { .. })
        ));
        // Many small headers summing past the budget.
        let mut text = String::from("GET / HTTP/1.1\r\n");
        for i in 0..50 {
            text.push_str(&format!("x-h{i}: v\r\n"));
        }
        text.push_str("\r\n");
        assert!(matches!(
            parse(&text, &limits),
            Err(HttpError::HeadTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_oversized_bodies_by_declared_length() {
        let limits = HttpLimits {
            max_head: 1024,
            max_body: 8,
        };
        let text = "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        match parse(text, &limits) {
            Err(HttpError::BodyTooLarge {
                limit: 8,
                length: 9,
            }) => {}
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_bodies() {
        let text = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(
            parse(text, &HttpLimits::default()),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn http_error_statuses() {
        assert_eq!(
            HttpError::Malformed(String::new()).status(),
            Some((400, "Bad Request"))
        );
        assert_eq!(
            HttpError::HeadTooLarge { limit: 1 }.status().map(|s| s.0),
            Some(431)
        );
        assert_eq!(
            HttpError::BodyTooLarge {
                limit: 1,
                length: 2
            }
            .status()
            .map(|s| s.0),
            Some(413)
        );
        assert_eq!(HttpError::Timeout.status().map(|s| s.0), Some(408));
        assert!(HttpError::Io(io::Error::other("x")).status().is_none());
        // Display stays informative for the error bodies.
        assert!(HttpError::BodyTooLarge {
            limit: 8,
            length: 9
        }
        .to_string()
        .contains('9'));
    }
}
