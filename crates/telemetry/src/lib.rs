//! # problp-telemetry — dependency-free observability for ProbLP
//!
//! Everything the serving stack exports about itself flows through this
//! crate: a [`MetricsRegistry`] of atomic counters, gauges and
//! fixed-bucket histograms (lock-free hot path, Prometheus text
//! rendering), span tracing ([`Tracer`] / [`Span`]) with a ring buffer
//! of recent slow traces, a hand-rolled JSON value type
//! ([`JsonValue`]) for `/statz` and `BENCH_*.json`, and a minimal
//! HTTP/1.1 [`Sidecar`] serving `/metrics`, `/healthz` and `/statz` on
//! `std::net::TcpListener`.
//!
//! The crate deliberately has **zero dependencies** (std only) so it
//! slots into the offline, vendor-shimmed workspace and can be pulled
//! in by `problp-engine` without a cycle.
//!
//! ## The metric namespace
//!
//! All serve-pipeline metric names live in [`metric_names`] with
//! rustdoc per name; the README "Observability" section carries the
//! same catalog. Conventions: `_total` for monotone counters, `_us`
//! for microsecond histograms, and every gauge additionally renders a
//! `<name>_high_water` series.
//!
//! ## Example
//!
//! ```
//! use problp_telemetry::{MetricsRegistry, default_latency_buckets_us};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let admitted = registry.counter("problp_serve_admitted_total", "lanes admitted");
//! let latency = registry.histogram(
//!     "problp_serve_sojourn_us",
//!     "submit-to-completion, microseconds",
//!     default_latency_buckets_us(),
//! );
//! admitted.add(3);
//! latency.observe(120);
//! let text = registry.render_prometheus();
//! assert!(text.contains("problp_serve_admitted_total 3"));
//! assert!(text.contains("problp_serve_sojourn_us_count 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod httpd;
pub mod json;
pub mod registry;
pub mod sidecar;
pub mod trace;

pub use httpd::{
    drain_rejected, http_post, http_request, read_request, read_response, status_reason,
    write_response, HttpError, HttpLimits, HttpRequest, HttpResponse, WorkerPool,
};
pub use json::{JsonError, JsonValue};
pub use registry::{
    default_latency_buckets_us, default_size_buckets, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry,
};
pub use sidecar::{http_get, HealthFn, HealthStatus, Sidecar};
pub use trace::{SlowTrace, Span, Tracer, SLOW_RING_CAPACITY};

/// The serve-pipeline metric catalog: one documented constant per
/// exported metric name, so instrumentation sites and tests never
/// hand-type a name and the rustdoc doubles as the reference catalog.
pub mod metric_names {
    /// Counter: every lane submitted to [`Server::submit`], admitted or
    /// not.
    ///
    /// [`Server::submit`]: https://docs.rs/problp-engine
    pub const SERVE_REQUESTS_TOTAL: &str = "problp_serve_requests_total";
    /// Counter: lanes that passed admission and were queued.
    pub const SERVE_ADMITTED_TOTAL: &str = "problp_serve_admitted_total";
    /// Counter, label `kind` ∈ {`unknown_model`, `bad_shape`, `quota`,
    /// `shutdown`}: typed admission rejects by `ServeError` kind.
    pub const SERVE_REJECTED_TOTAL: &str = "problp_serve_rejected_total";
    /// Gauge, label `model`: lanes currently queued or in flight for a
    /// tenant (only exported when a tenant quota is configured).
    pub const SERVE_TENANT_LANES: &str = "problp_serve_tenant_lanes";
    /// Gauge: coalesced groups currently waiting for dispatch; its
    /// `_high_water` series is the max queue depth ever seen.
    pub const SERVE_QUEUE_DEPTH: &str = "problp_serve_queue_depth";
    /// Histogram: lanes per dispatched group (coalescing effectiveness).
    pub const SERVE_GROUP_LANES: &str = "problp_serve_group_lanes";
    /// Histogram: the adaptive coalescing wait actually applied per
    /// dispatched group, microseconds.
    pub const SERVE_EFFECTIVE_WAIT_US: &str = "problp_serve_effective_wait_us";
    /// Counter: batch groups promoted to interactive rank by priority
    /// aging before dispatch.
    pub const SERVE_AGING_PROMOTIONS_TOTAL: &str = "problp_serve_aging_promotions_total";
    /// Counter: dispatched groups (one evaluate call each).
    pub const SERVE_DISPATCHES_TOTAL: &str = "problp_serve_dispatches_total";
    /// Counter: exact answer-cache hits — lanes resolved at admission
    /// with a memoized, bit-identical payload. Always exported; stays
    /// at zero when `ServeConfig::cache_capacity` is zero.
    pub const SERVE_CACHE_HITS_TOTAL: &str = "problp_serve_cache_hits_total";
    /// Counter: answer-cache lookups that fell through to the queue.
    pub const SERVE_CACHE_MISSES_TOTAL: &str = "problp_serve_cache_misses_total";
    /// Counter: answer-cache entries dropped — LRU capacity pressure
    /// plus per-model invalidation on a hot reload.
    pub const SERVE_CACHE_EVICTIONS_TOTAL: &str = "problp_serve_cache_evictions_total";
    /// Gauge, label `model`: the tape version currently serving new
    /// admissions for a hosted model (starts at 1, bumped by each
    /// reload or re-register).
    pub const POOL_MODEL_VERSION: &str = "problp_pool_model_version";
    /// Histogram, labels `query` ∈ {`marginal`, `mpe`, `conditional`} ×
    /// `priority` ∈ {`interactive`, `batch`}: enqueue-to-completion
    /// sojourn, microseconds.
    pub const SERVE_SOJOURN_US: &str = "problp_serve_sojourn_us";
    /// Histogram, label `query`: engine evaluate wall time per
    /// dispatched group, microseconds.
    pub const ENGINE_EVALUATE_US: &str = "problp_engine_evaluate_us";
    /// Counter: tape instructions executed, summed as
    /// `instructions × lanes` per dispatched group. For engines running
    /// the fused kernel this still counts the *unfused* stream — the
    /// work the sweep answers for — while
    /// [`ENGINE_FUSED_INSTRS_TOTAL`] counts the superinstructions it
    /// actually dispatched; the ratio of the two is the live fusion
    /// rate.
    pub const ENGINE_TAPE_INSTRS_TOTAL: &str = "problp_engine_tape_instrs_total";
    /// Counter: fused superinstructions executed, summed as
    /// `fused instructions × lanes` per dispatched group. Only engines
    /// running the `fused` kernel (`Engine::with_kernel`) move it;
    /// compare against [`ENGINE_TAPE_INSTRS_TOTAL`] for the dispatch
    /// amplification fusion removed.
    pub const ENGINE_FUSED_INSTRS_TOTAL: &str = "problp_engine_fused_instrs_total";
    /// Counter, label `kernel` ∈ {`scalar`, `simd`, `fused`}: dispatched
    /// groups by the evaluator core that served them — the live mix of
    /// kernel dispatch across the pool.
    pub const ENGINE_KERNEL_DISPATCHES_TOTAL: &str = "problp_engine_kernel_dispatches_total";
    /// Counter, label `flag` ∈ {`overflow`, `underflow`, `inexact`,
    /// `invalid`}: groups whose evaluation raised the sticky flag.
    pub const ENGINE_FLAG_RAISES_TOTAL: &str = "problp_engine_flag_raises_total";
    /// Histogram, label `stage`: per-stage elapsed time recorded by
    /// [`crate::Tracer`] spans, microseconds.
    pub const STAGE_ELAPSED_US: &str = "problp_stage_elapsed_us";
    /// Counter: static verifier / range-analysis passes run (one per
    /// tape × format analyzed).
    pub const VERIFY_RUNS_TOTAL: &str = "problp_verify_runs_total";
    /// Counter: tapes the static verifier rejected with a typed
    /// `VerifyError` (admission-gate and CLI rejects alike).
    pub const VERIFY_REJECTS_TOTAL: &str = "problp_verify_rejects_total";
    /// Counter: instructions classified *provably-safe* by the range
    /// analysis, summed across runs.
    pub const VERIFY_INSTRS_SAFE_TOTAL: &str = "problp_verify_instrs_safe_total";
    /// Counter: instructions classified *may-saturate*, summed across
    /// runs.
    pub const VERIFY_INSTRS_MAY_SATURATE_TOTAL: &str = "problp_verify_instrs_may_saturate_total";
    /// Counter: instructions classified *may-underflow*, summed across
    /// runs.
    pub const VERIFY_INSTRS_MAY_UNDERFLOW_TOTAL: &str = "problp_verify_instrs_may_underflow_total";
    /// Counter, label `status` (HTTP status code as a string, e.g.
    /// `"200"`, `"429"`): every HTTP response the query gateway wrote,
    /// including protocol-level rejects (400/408/413/431) and
    /// load-shedding 503s from a full worker queue.
    pub const GATEWAY_REQUESTS_TOTAL: &str = "problp_gateway_requests_total";
    /// Histogram: request body bytes per gateway query (after the
    /// max-body admission cap).
    pub const GATEWAY_BODY_BYTES: &str = "problp_gateway_body_bytes";
    /// Histogram: gateway handler latency per parsed request —
    /// auth + decode + `Server::submit` + ticket wait + render,
    /// excluding socket read/write time — microseconds.
    pub const GATEWAY_HANDLER_US: &str = "problp_gateway_handler_us";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 20, 50]);
        // Exactly on an edge → that bucket, one past → the next.
        h.observe(10);
        h.observe(11);
        h.observe(20);
        h.observe(21);
        h.observe(50);
        h.observe(51); // +Inf bucket
        h.observe(0); // below the first edge → first bucket
        let snap = h.snapshot();
        assert_eq!(snap.bounds, vec![10, 20, 50]);
        assert_eq!(snap.counts, vec![2, 2, 2, 1]);
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 10 + 11 + 20 + 21 + 50 + 51);
        assert_eq!(snap.max, 51);
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let h = Histogram::new(&[1, 2, 5, 10]);
        for v in [1, 1, 2, 5, 9] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), Some(1));
        assert_eq!(snap.quantile(50.0), Some(2));
        // p100 clamps to the observed max, never out of range.
        assert_eq!(snap.quantile(100.0), Some(9));
        assert_eq!(snap.quantile(f64::NAN), Some(1));
        assert_eq!(Histogram::new(&[1]).snapshot().quantile(50.0), None);
    }

    #[test]
    fn quantile_caps_at_observed_max_within_bucket() {
        let h = Histogram::new(&[1_000_000]);
        h.observe(3);
        // Everything is in the 1s bucket but the real max is 3 µs.
        assert_eq!(h.snapshot().quantile(99.0), Some(3));
    }

    #[test]
    fn prometheus_rendering_golden() {
        let registry = MetricsRegistry::new();
        let c = registry.counter_with(
            "problp_serve_rejected_total",
            &[("kind", "quota")],
            "typed admission rejects",
        );
        c.add(4);
        let g = registry.gauge("problp_serve_queue_depth", "groups waiting");
        g.set(7);
        g.set(2);
        let h = registry.histogram("req_us", "request latency", &[10, 100]);
        h.observe(5);
        h.observe(10);
        h.observe(500);
        let expected = "\
# HELP problp_serve_rejected_total typed admission rejects
# TYPE problp_serve_rejected_total counter
problp_serve_rejected_total{kind=\"quota\"} 4
# HELP problp_serve_queue_depth groups waiting
# TYPE problp_serve_queue_depth gauge
problp_serve_queue_depth 2
problp_serve_queue_depth_high_water 7
# HELP req_us request latency
# TYPE req_us histogram
req_us_bucket{le=\"10\"} 2
req_us_bucket{le=\"100\"} 2
req_us_bucket{le=\"+Inf\"} 3
req_us_sum 515
req_us_count 3
";
        assert_eq!(registry.render_prometheus(), expected);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("c_total", "test");
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), threads as u64 * per_thread);
    }

    #[test]
    fn registry_get_or_create_returns_same_series() {
        let registry = MetricsRegistry::new();
        registry.counter("a_total", "a").add(2);
        registry.counter("a_total", "a").add(3);
        assert_eq!(registry.counter("a_total", "a").get(), 5);
        // Distinct labels are distinct series.
        registry.counter_with("b_total", &[("k", "x")], "b").inc();
        assert_eq!(
            registry.counter_with("b_total", &[("k", "y")], "b").get(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn registry_panics_on_type_clash() {
        let registry = MetricsRegistry::new();
        registry.counter("x", "x");
        registry.gauge("x", "x");
    }

    #[test]
    fn gauge_add_tracks_high_water() {
        let g = MetricsRegistry::new().gauge("g", "g");
        g.add(5);
        g.add(3);
        g.add(-6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 8);
    }

    #[test]
    fn tracer_records_spans_and_retains_slow_ones() {
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Tracer::new(Arc::clone(&registry), Duration::ZERO);
        {
            let _span = tracer.span("dispatch");
        }
        {
            let _span = tracer.span("dispatch");
        }
        let text = registry.render_prometheus();
        assert!(text.contains("problp_stage_elapsed_us_count{stage=\"dispatch\"} 2"));
        let slow = tracer.recent_slow();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].stage, "dispatch");
    }

    #[test]
    fn tracer_slow_ring_is_bounded() {
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Tracer::new(registry, Duration::ZERO);
        for _ in 0..SLOW_RING_CAPACITY + 5 {
            let _span = tracer.span("s");
        }
        assert_eq!(tracer.recent_slow().len(), SLOW_RING_CAPACITY);
    }

    #[test]
    fn json_round_trip() {
        let doc = JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::from("problp-bench/v1")),
            ("requests".to_string(), JsonValue::from(512u64)),
            ("throughput_rps".to_string(), JsonValue::from(1234.5)),
            ("ok".to_string(), JsonValue::Bool(true)),
            ("none".to_string(), JsonValue::Null),
            (
                "arr".to_string(),
                JsonValue::Array(vec![JsonValue::from(1u64), JsonValue::from("x\n\"y")]),
            ),
        ]);
        let compact = doc.render();
        assert_eq!(JsonValue::parse(&compact).unwrap(), doc);
        let pretty = doc.render_pretty();
        assert_eq!(JsonValue::parse(&pretty).unwrap(), doc);
        assert!(pretty.contains("\"schema\": \"problp-bench/v1\""));
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(JsonValue::parse("{\"a\":}").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn json_get_and_accessors() {
        let doc = JsonValue::parse("{\"a\": 3, \"b\": \"s\", \"c\": [1, 2]}").unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(doc.get("b").and_then(JsonValue::as_str), Some("s"));
        assert_eq!(
            doc.get("c").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn sidecar_serves_metrics_healthz_statz() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("hits_total", "test hits").add(9);
        let sidecar = Sidecar::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Box::new(|| HealthStatus {
                healthy: true,
                detail: vec![("models".to_string(), "alarm,asia".to_string())],
            }),
        )
        .expect("bind sidecar");
        let addr = sidecar.local_addr();

        let (code, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("hits_total 9"));

        let (code, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!(code, 200);
        assert!(body.starts_with("ok\n"));
        assert!(body.contains("models: alarm,asia"));

        let (code, body) = http_get(&addr, "/statz").unwrap();
        assert_eq!(code, 200);
        let doc = JsonValue::parse(&body).expect("statz is valid json");
        assert_eq!(doc.get("healthy"), Some(&JsonValue::Bool(true)));
        assert!(doc.get("metrics").and_then(|m| m.get("series")).is_some());

        let (code, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(code, 404);
    }

    #[test]
    fn sidecar_unhealthy_is_503_and_shutdown_is_prompt() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut sidecar = Sidecar::start(
            "127.0.0.1:0",
            registry,
            Box::new(|| HealthStatus {
                healthy: false,
                detail: vec![("workers_alive".to_string(), "0".to_string())],
            }),
        )
        .expect("bind sidecar");
        let addr = sidecar.local_addr();
        let (code, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!(code, 503);
        assert!(body.starts_with("unhealthy\n"));
        let started = std::time::Instant::now();
        sidecar.shutdown();
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
