//! Lightweight span tracing: scoped timers that feed per-stage elapsed
//! histograms in a [`MetricsRegistry`], plus a bounded ring buffer of
//! recent slow spans for post-hoc "what was slow" questions without a
//! full tracing dependency.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::registry::{default_latency_buckets_us, Histogram, MetricsRegistry};

/// How many slow spans [`Tracer`] retains; older entries are evicted
/// first.
pub const SLOW_RING_CAPACITY: usize = 64;

/// A retained record of a span that exceeded the tracer's slow
/// threshold.
#[derive(Clone, Debug)]
pub struct SlowTrace {
    /// The pipeline stage the span measured.
    pub stage: String,
    /// How long the span ran.
    pub elapsed: Duration,
    /// When the span ended.
    pub ended_at: Instant,
}

struct TracerInner {
    registry: Arc<MetricsRegistry>,
    slow_threshold: Duration,
    slow: Mutex<VecDeque<SlowTrace>>,
}

/// Hands out [`Span`]s and aggregates their elapsed times into
/// `problp_stage_elapsed_us{stage=...}` histograms. Spans longer than
/// the slow threshold are additionally kept in a small ring buffer
/// ([`Tracer::recent_slow`]).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Creates a tracer recording into `registry`, retaining spans
    /// slower than `slow_threshold`.
    pub fn new(registry: Arc<MetricsRegistry>, slow_threshold: Duration) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                registry,
                slow_threshold,
                slow: Mutex::new(VecDeque::with_capacity(SLOW_RING_CAPACITY)),
            }),
        }
    }

    /// Starts timing `stage`; the elapsed time is recorded when the
    /// returned [`Span`] drops.
    pub fn span(&self, stage: &str) -> Span {
        Span::enter(self, stage)
    }

    /// The retained slow spans, oldest first.
    pub fn recent_slow(&self) -> Vec<SlowTrace> {
        let ring = self
            .inner
            .slow
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        ring.iter().cloned().collect()
    }

    fn histogram_for(&self, stage: &str) -> Histogram {
        self.inner.registry.histogram_with(
            "problp_stage_elapsed_us",
            &[("stage", stage)],
            "Elapsed wall time per traced pipeline stage, microseconds",
            default_latency_buckets_us(),
        )
    }

    fn record(&self, stage: &str, elapsed: Duration, hist: &Histogram) {
        hist.observe_duration(elapsed);
        if elapsed >= self.inner.slow_threshold {
            let mut ring = self
                .inner
                .slow
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if ring.len() == SLOW_RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(SlowTrace {
                stage: stage.to_string(),
                elapsed,
                ended_at: Instant::now(),
            });
        }
    }
}

/// A scoped timer for one pipeline stage. Records its elapsed time into
/// the owning [`Tracer`] on drop, so early returns and panics are still
/// measured.
pub struct Span {
    tracer: Tracer,
    stage: String,
    hist: Histogram,
    started: Instant,
}

impl Span {
    /// Starts timing `stage` on `tracer`.
    pub fn enter(tracer: &Tracer, stage: &str) -> Span {
        // Resolve the histogram up front so Drop's hot path is a pure
        // atomic observe (registration locks once per stage name).
        let hist = tracer.histogram_for(stage);
        Span {
            tracer: tracer.clone(),
            stage: stage.to_string(),
            hist,
            started: Instant::now(),
        }
    }

    /// The elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        self.tracer.record(&self.stage, elapsed, &self.hist);
    }
}
