//! A minimal JSON value type with a writer and a recursive-descent
//! parser — enough for `/statz` snapshots and `BENCH_*.json` perf
//! trajectories without pulling a serde dependency into the offline
//! workspace.
//!
//! Numbers are stored as `f64` (integers render without a fractional
//! part when they round-trip exactly). Object keys keep insertion
//! order, which keeps rendered snapshots diffable.

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value under `key` when `self` is an object, else `None`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value when `self` is a number, else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice when `self` is a string, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector when `self` is an array, else `None`.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation — the format the checked-in
    /// `BENCH_*.json` files use so diffs stay readable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(*n, out),
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

/// A parse failure with the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: &str) -> Self {
        JsonError {
            offset,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the least-surprising stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::at(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(JsonValue::Number),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, "invalid literal"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| JsonError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are out of scope for metric
                        // payloads; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar; input came from &str so the
                // encoding is valid, but fail typed rather than panic if
                // a caller ever feeds raw bytes through here.
                let c = std::str::from_utf8(&bytes[*pos..])
                    .ok()
                    .and_then(|rest| rest.chars().next())
                    .ok_or_else(|| JsonError::at(*pos, "invalid utf-8"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| JsonError::at(start, "invalid number"))
}
