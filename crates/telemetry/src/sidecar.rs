//! A minimal HTTP/1.1 sidecar on `std::net::TcpListener` exposing the
//! registry: `GET /metrics` (Prometheus text), `GET /healthz`
//! (liveness + detail lines, 200/503) and `GET /statz` (JSON snapshot).
//!
//! One accept thread handles connections serially — scrape traffic is
//! a request every few seconds, not a load-bearing path — with read and
//! write timeouts so a stuck client cannot wedge the exporter. The
//! listener is non-blocking and polls a shutdown flag so
//! [`Sidecar::shutdown`] returns promptly.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::json::JsonValue;
use crate::registry::MetricsRegistry;

/// What `/healthz` reports. Produced by the health callback on every
/// request, so liveness reflects the serving stack *now*, not at
/// startup.
#[derive(Clone, Debug)]
pub struct HealthStatus {
    /// Overall liveness; `false` renders a 503.
    pub healthy: bool,
    /// Free-form key/value detail lines (worker counts, pool models).
    pub detail: Vec<(String, String)>,
}

impl HealthStatus {
    /// A healthy status with no detail.
    pub fn ok() -> Self {
        HealthStatus {
            healthy: true,
            detail: Vec::new(),
        }
    }
}

/// The health callback type: invoked per `/healthz` / `/statz` request.
pub type HealthFn = Box<dyn Fn() -> HealthStatus + Send + Sync>;

/// A running metrics sidecar; shuts down when dropped.
pub struct Sidecar {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Sidecar {
    /// Binds `addr` (use port 0 for an OS-assigned port, then
    /// [`Sidecar::local_addr`]) and starts serving `registry` and
    /// `health` on a background thread.
    pub fn start(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        health: HealthFn,
    ) -> std::io::Result<Sidecar> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("problp-metrics-sidecar".to_string())
            .spawn(move || serve_loop(listener, registry, health, stop_flag))?;
        Ok(Sidecar {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sidecar {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    health: HealthFn,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serial handling is fine for scrape traffic; timeouts
                // below bound how long one client can hold the loop.
                let _ = handle_connection(stream, &registry, &health);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &MetricsRegistry,
    health: &HealthFn,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; we only route on the request line.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = stream;
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    match path {
        "/metrics" => {
            let body = registry.render_prometheus();
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let status = health();
            let mut body = String::new();
            body.push_str(if status.healthy {
                "ok\n"
            } else {
                "unhealthy\n"
            });
            for (k, v) in &status.detail {
                body.push_str(&format!("{k}: {v}\n"));
            }
            let (code, reason) = if status.healthy {
                (200, "OK")
            } else {
                (503, "Service Unavailable")
            };
            respond(
                &mut stream,
                code,
                reason,
                "text/plain; charset=utf-8",
                &body,
            )
        }
        "/statz" => {
            let status = health();
            let doc = JsonValue::Object(vec![
                ("healthy".to_string(), JsonValue::Bool(status.healthy)),
                (
                    "detail".to_string(),
                    JsonValue::Object(
                        status
                            .detail
                            .iter()
                            .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str())))
                            .collect(),
                    ),
                ),
                ("metrics".to_string(), registry.render_json()),
            ]);
            respond(
                &mut stream,
                200,
                "OK",
                "application/json; charset=utf-8",
                &doc.render(),
            )
        }
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics, /healthz or /statz\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A tiny scrape client for tests and the serve-sim self-check: issues
/// `GET path` against `addr` and returns `(status_code, body)`.
pub fn http_get(addr: &std::net::SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    // Skip headers.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut body = String::new();
    use std::io::Read;
    reader.read_to_string(&mut body)?;
    Ok((code, body))
}
