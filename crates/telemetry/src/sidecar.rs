//! A minimal HTTP/1.1 sidecar on `std::net::TcpListener` exposing the
//! registry: `GET /metrics` (Prometheus text), `GET /healthz`
//! (liveness + detail lines, 200/503) and `GET /statz` (JSON snapshot).
//!
//! The accept thread only accepts: connections are handled on a small
//! bounded [`WorkerPool`] (shared with the query gateway in
//! `problp-engine`), so one slow or stalled scraper cannot delay a
//! `/healthz` probe behind it and flap liveness. Requests are parsed
//! through [`crate::httpd::read_request`] under hard size limits —
//! oversized request lines/headers answer 431 and oversized bodies 413
//! instead of reading unboundedly into memory — and read/write timeouts
//! bound how long any one client can hold a worker. The listener is
//! non-blocking and polls a shutdown flag so [`Sidecar::shutdown`]
//! returns promptly.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::httpd::{
    drain_rejected, http_request, read_request, write_response, HttpLimits, WorkerPool,
};
use crate::json::JsonValue;
use crate::registry::MetricsRegistry;

/// Worker threads handling sidecar connections: two, so a stalled
/// scraper can burn one full IO timeout while `/healthz` stays prompt
/// on the other.
const SIDECAR_WORKERS: usize = 2;
/// Connections queued for the workers before the accept loop sheds load
/// with an immediate 503.
const SIDECAR_BACKLOG: usize = 16;
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Size limits of one scrape request: routing needs no body, so both
/// caps stay small.
const SIDECAR_LIMITS: HttpLimits = HttpLimits {
    max_head: 8 * 1024,
    max_body: 4 * 1024,
};

/// What `/healthz` reports. Produced by the health callback on every
/// request, so liveness reflects the serving stack *now*, not at
/// startup.
#[derive(Clone, Debug)]
pub struct HealthStatus {
    /// Overall liveness; `false` renders a 503.
    pub healthy: bool,
    /// Free-form key/value detail lines (worker counts, pool models).
    pub detail: Vec<(String, String)>,
}

impl HealthStatus {
    /// A healthy status with no detail.
    pub fn ok() -> Self {
        HealthStatus {
            healthy: true,
            detail: Vec::new(),
        }
    }
}

/// The health callback type: invoked per `/healthz` / `/statz` request.
pub type HealthFn = Box<dyn Fn() -> HealthStatus + Send + Sync>;

/// A running metrics sidecar; shuts down when dropped.
pub struct Sidecar {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Sidecar {
    /// Binds `addr` (use port 0 for an OS-assigned port, then
    /// [`Sidecar::local_addr`]) and starts serving `registry` and
    /// `health` on a background accept thread plus a small worker pool.
    pub fn start(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        health: HealthFn,
    ) -> std::io::Result<Sidecar> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("problp-metrics-sidecar".to_string())
            .spawn(move || serve_loop(listener, registry, health, stop_flag))?;
        Ok(Sidecar {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sidecar {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    health: HealthFn,
    stop: Arc<AtomicBool>,
) {
    let health = Arc::new(health);
    let handler: Arc<dyn Fn(TcpStream) + Send + Sync> = Arc::new(move |stream| {
        let _ = handle_connection(stream, &registry, &health);
    });
    let pool = WorkerPool::new("problp-sidecar", SIDECAR_WORKERS, SIDECAR_BACKLOG, handler);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(stream) = pool.dispatch(stream) {
                    // Queue full (every worker stalled): shed load with
                    // a prompt 503 instead of queueing unboundedly.
                    let _ = busy_reject(stream);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
    // Dropping the pool drains the queue and joins the workers.
}

/// Answers a connection the worker pool could not take. The short write
/// timeout keeps the accept loop from being the thing a slow client
/// stalls.
fn busy_reject(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_millis(100)))?;
    write_response(
        &mut stream,
        503,
        "text/plain; charset=utf-8",
        &[],
        b"sidecar worker queue is full\n",
    )
}

fn handle_connection(
    stream: TcpStream,
    registry: &MetricsRegistry,
    health: &HealthFn,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let request = match read_request(&mut reader, &SIDECAR_LIMITS) {
        Ok(request) => request,
        Err(e) => {
            // Protocol-level rejects (400/408/413/431) are answered;
            // a dead socket is just dropped.
            if let Some((code, _)) = e.status() {
                respond(
                    &mut stream,
                    code,
                    "text/plain; charset=utf-8",
                    &format!("{e}\n"),
                )?;
                drain_rejected(&stream, &mut reader);
            }
            return Ok(());
        }
    };
    if request.method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    match request.path.as_str() {
        "/metrics" => {
            let body = registry.render_prometheus();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let status = health();
            let mut body = String::new();
            body.push_str(if status.healthy {
                "ok\n"
            } else {
                "unhealthy\n"
            });
            for (k, v) in &status.detail {
                body.push_str(&format!("{k}: {v}\n"));
            }
            let code = if status.healthy { 200 } else { 503 };
            respond(&mut stream, code, "text/plain; charset=utf-8", &body)
        }
        "/statz" => {
            let status = health();
            let doc = JsonValue::Object(vec![
                ("healthy".to_string(), JsonValue::Bool(status.healthy)),
                (
                    "detail".to_string(),
                    JsonValue::Object(
                        status
                            .detail
                            .iter()
                            .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str())))
                            .collect(),
                    ),
                ),
                ("metrics".to_string(), registry.render_json()),
            ]);
            respond(
                &mut stream,
                200,
                "application/json; charset=utf-8",
                &doc.render(),
            )
        }
        _ => respond(
            &mut stream,
            404,
            "text/plain; charset=utf-8",
            "unknown path; try /metrics, /healthz or /statz\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response(stream, code, content_type, &[], body.as_bytes())
}

/// A tiny scrape client for tests and the serve-sim self-check: issues
/// `GET path` against `addr` and returns `(status_code, body)`.
///
/// Built on [`crate::httpd::read_response`], so a malformed status line
/// fails with a typed [`std::io::ErrorKind::InvalidData`] error naming
/// the line, and a response that declares `Content-Length` is read to
/// exactly that many bytes instead of blocking on a keep-alive server
/// until the 2-second read timeout.
pub fn http_get(addr: &std::net::SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let (code, _headers, body) = http_request(addr, "GET", path, &[], &[])?;
    Ok((code, body))
}
