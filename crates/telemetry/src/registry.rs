//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with a lock-free hot path.
//!
//! Registration (`[MetricsRegistry::counter]` and friends) takes a
//! mutex once per `(name, labels)` series and hands back a cheap
//! clonable handle; every update after that is a single atomic
//! operation, so instrumented hot paths (admission queues, dispatch
//! loops, per-lane result routing) pay no lock. Rendering walks the
//! registered series under the same mutex — scrapes are rare and cheap.
//!
//! Conventions:
//!
//! * Metric names are `snake_case` with a unit suffix where one applies
//!   (`_us` for microseconds, `_total` for monotone counters).
//! * Histograms store **microsecond** (or plain count) observations in
//!   fixed buckets chosen at registration; bucket edges are *inclusive
//!   upper bounds* (`value <= bound`), matching Prometheus `le`.
//! * Every gauge also exports a `<name>_high_water` series — the
//!   largest value the gauge ever held — because queue-depth style
//!   gauges are most useful with their high-water mark.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::json::JsonValue;

/// A monotonically increasing counter. Handles are cheap clones sharing
/// one atomic cell; incrementing never locks.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicI64,
    high_water: AtomicI64,
}

/// An instantaneous value (queue depth, occupancy). Tracks its
/// high-water mark on every update; both series are rendered (the mark
/// as `<name>_high_water`). Updates never lock.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `d` (which may be negative) and returns the new value.
    pub fn add(&self, d: i64) -> i64 {
        let now = self.0.value.fetch_add(d, Ordering::Relaxed) + d;
        self.0.high_water.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The largest value the gauge ever held.
    pub fn high_water(&self) -> i64 {
        self.0.high_water.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// Inclusive upper bounds of the finite buckets, ascending.
    bounds: Vec<u64>,
    /// Per-bucket observation counts (NOT cumulative); one extra slot
    /// for the `+Inf` bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram of non-negative integer observations
/// (latencies in microseconds, batch sizes). Observing is a binary
/// search plus three atomic adds — no lock.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Creates a standalone histogram (not attached to any registry —
    /// useful for study-local percentile accounting). `bounds` are the
    /// inclusive upper bucket edges; they are sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket");
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCell {
            bounds,
            counts,
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation. A value exactly on a bucket edge lands
    /// in that bucket (edges are inclusive upper bounds, like
    /// Prometheus `le`).
    pub fn observe(&self, value: u64) {
        let cell = &self.0;
        let idx = cell.bounds.partition_point(|&b| b < value);
        cell.counts[idx].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
        cell.total.fetch_add(1, Ordering::Relaxed);
        cell.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a `std::time::Duration` in microseconds (saturating at
    /// `u64::MAX`).
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// A consistent-enough point-in-time copy of the histogram state.
    /// (Counts are read one atomic at a time; a scrape racing an
    /// observation may be off by that single observation, which is the
    /// usual Prometheus contract.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cell = &self.0;
        HistogramSnapshot {
            bounds: cell.bounds.clone(),
            counts: cell
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: cell.sum.load(Ordering::Relaxed),
            count: cell.total.load(Ordering::Relaxed),
            max: cell.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets, with quantile
/// estimation — what the perf-trajectory (`BENCH_*.json`) files derive
/// their latency percentiles from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (not cumulative); the last slot is
    /// the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The estimated `p`-th percentile (0..=100): the inclusive upper
    /// bound of the first bucket whose cumulative count reaches the
    /// rank. Observations in the `+Inf` bucket report the observed
    /// maximum. Returns `None` on an empty histogram.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = if p.is_finite() {
            p.clamp(0.0, 100.0)
        } else {
            0.0
        };
        // Nearest-rank on the cumulative bucket counts.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// Mean of the observations, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// The default microsecond-latency bucket edges: roughly logarithmic
/// from 1 µs to 1 s. Shared by every latency histogram in the serve
/// pipeline so percentiles stay comparable across metrics and PRs.
pub fn default_latency_buckets_us() -> &'static [u64] {
    &[
        1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
        200_000, 500_000, 1_000_000,
    ]
}

/// The default batch-size bucket edges (powers of two up to 1024) for
/// coalescing-group histograms.
pub fn default_size_buckets() -> &'static [u64] {
    &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
}

/// One registered series and its handle.
enum SeriesKind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl SeriesKind {
    fn type_name(&self) -> &'static str {
        match self {
            SeriesKind::Counter(_) => "counter",
            SeriesKind::Gauge(_) => "gauge",
            SeriesKind::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    kind: SeriesKind,
}

/// The registry of every metric a process exports: get-or-create
/// handles by `(name, labels)`, render the whole set as Prometheus text
/// or JSON.
///
/// # Examples
///
/// ```
/// use problp_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let served = registry.counter("requests_total", "requests admitted");
/// served.inc();
/// let rendered = registry.render_prometheus();
/// assert!(rendered.contains("# TYPE requests_total counter"));
/// assert!(rendered.contains("requests_total 1"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    series: Mutex<Vec<Series>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Series>> {
        // Registration and rendering hold no invariants across a panic
        // point; recover rather than poison every future scrape.
        self.series
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn get_or_insert<F>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: F,
    ) -> SeriesKind
    where
        F: FnOnce() -> SeriesKind,
    {
        let mut series = self.lock();
        if let Some(s) = series
            .iter()
            .find(|s| s.name == name && labels_eq(&s.labels, labels))
        {
            return match &s.kind {
                SeriesKind::Counter(c) => SeriesKind::Counter(c.clone()),
                SeriesKind::Gauge(g) => SeriesKind::Gauge(g.clone()),
                SeriesKind::Histogram(h) => SeriesKind::Histogram(h.clone()),
            };
        }
        let kind = make();
        let handle = match &kind {
            SeriesKind::Counter(c) => SeriesKind::Counter(c.clone()),
            SeriesKind::Gauge(g) => SeriesKind::Gauge(g.clone()),
            SeriesKind::Histogram(h) => SeriesKind::Histogram(h.clone()),
        };
        series.push(Series {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            kind,
        });
        handle
    }

    /// Get-or-create an unlabelled counter.
    ///
    /// # Panics
    ///
    /// Panics if the same `(name, labels)` series was already registered
    /// with a different metric type.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Get-or-create a counter with labels.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type clash (see [`MetricsRegistry::counter`]).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.get_or_insert(name, labels, help, || {
            SeriesKind::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            SeriesKind::Counter(c) => c,
            other => panic!("{name} is registered as a {}", other.type_name()),
        }
    }

    /// Get-or-create an unlabelled gauge.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type clash (see [`MetricsRegistry::counter`]).
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Get-or-create a gauge with labels.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type clash (see [`MetricsRegistry::counter`]).
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.get_or_insert(name, labels, help, || {
            SeriesKind::Gauge(Gauge(Arc::new(GaugeCell::default())))
        }) {
            SeriesKind::Gauge(g) => g,
            other => panic!("{name} is registered as a {}", other.type_name()),
        }
    }

    /// Get-or-create an unlabelled histogram with the given inclusive
    /// upper bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type clash or empty `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, &[], help, bounds)
    }

    /// Get-or-create a histogram with labels.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type clash or empty `bounds`.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        bounds: &[u64],
    ) -> Histogram {
        match self.get_or_insert(name, labels, help, || {
            SeriesKind::Histogram(Histogram::new(bounds))
        }) {
            SeriesKind::Histogram(h) => h,
            other => panic!("{name} is registered as a {}", other.type_name()),
        }
    }

    /// Renders every registered series in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP` / `# TYPE` once per metric name,
    /// then one sample line per series (histograms expand to cumulative
    /// `_bucket{le=...}` lines plus `_sum` and `_count`; gauges add a
    /// `<name>_high_water` series).
    pub fn render_prometheus(&self) -> String {
        let series = self.lock();
        let mut out = String::new();
        let mut seen_header: Vec<&str> = Vec::new();
        for s in series.iter() {
            if !seen_header.contains(&s.name.as_str()) {
                seen_header.push(&s.name);
                out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
                out.push_str(&format!("# TYPE {} {}\n", s.name, s.kind.type_name()));
            }
            match &s.kind {
                SeriesKind::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        label_block(&s.labels, &[]),
                        c.get()
                    ));
                }
                SeriesKind::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        label_block(&s.labels, &[]),
                        g.get()
                    ));
                    out.push_str(&format!(
                        "{}_high_water{} {}\n",
                        s.name,
                        label_block(&s.labels, &[]),
                        g.high_water()
                    ));
                }
                SeriesKind::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, bound) in snap.bounds.iter().enumerate() {
                        cumulative += snap.counts[i];
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            s.name,
                            label_block(&s.labels, &[("le", &bound.to_string())]),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        label_block(&s.labels, &[("le", "+Inf")]),
                        snap.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.name,
                        label_block(&s.labels, &[]),
                        snap.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.name,
                        label_block(&s.labels, &[]),
                        snap.count
                    ));
                }
            }
        }
        out
    }

    /// Renders every registered series as a JSON object (the `/statz`
    /// payload): `{"series": [{"name", "labels", "type", ...}]}` with
    /// counters/gauges carrying `value` (gauges also `high_water`) and
    /// histograms their buckets, `sum`, `count`, `max` and the
    /// p50/p90/p99 estimates.
    pub fn render_json(&self) -> JsonValue {
        let series = self.lock();
        let items: Vec<JsonValue> = series
            .iter()
            .map(|s| {
                let mut obj = vec![
                    ("name".to_string(), JsonValue::from(s.name.as_str())),
                    (
                        "labels".to_string(),
                        JsonValue::Object(
                            s.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str())))
                                .collect(),
                        ),
                    ),
                    ("type".to_string(), JsonValue::from(s.kind.type_name())),
                ];
                match &s.kind {
                    SeriesKind::Counter(c) => {
                        obj.push(("value".to_string(), JsonValue::from(c.get())));
                    }
                    SeriesKind::Gauge(g) => {
                        obj.push(("value".to_string(), JsonValue::from(g.get())));
                        obj.push(("high_water".to_string(), JsonValue::from(g.high_water())));
                    }
                    SeriesKind::Histogram(h) => {
                        let snap = h.snapshot();
                        obj.push((
                            "buckets".to_string(),
                            JsonValue::Array(
                                snap.bounds
                                    .iter()
                                    .zip(&snap.counts)
                                    .map(|(b, c)| {
                                        JsonValue::Object(vec![
                                            ("le".to_string(), JsonValue::from(*b)),
                                            ("count".to_string(), JsonValue::from(*c)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                        obj.push(("sum".to_string(), JsonValue::from(snap.sum)));
                        obj.push(("count".to_string(), JsonValue::from(snap.count)));
                        obj.push(("max".to_string(), JsonValue::from(snap.max)));
                        for p in [50.0, 90.0, 99.0] {
                            obj.push((
                                format!("p{}", p as u32),
                                snap.quantile(p).map_or(JsonValue::Null, JsonValue::from),
                            ));
                        }
                    }
                }
                JsonValue::Object(obj)
            })
            .collect();
        JsonValue::Object(vec![("series".to_string(), JsonValue::Array(items))])
    }
}

fn labels_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// Renders `{k1="v1",k2="v2"}` (or the empty string with no labels),
/// with `extra` pairs appended — used for histogram `le` labels.
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", parts.join(","))
}

/// Escapes a label value per the Prometheus text format (backslash,
/// double quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}
