//! Telemetry for the static-analysis subsystem: `problp_verify_*`
//! counters published through the shared [`MetricsRegistry`].

use problp_telemetry::{metric_names, Counter, MetricsRegistry};

use crate::RangeReport;

/// Handle bundle for the `problp_verify_*` counters. The serving pool
/// has no registry of its own, so callers that want verification
/// observable (the CLI `verify` command, the conformance harness) build
/// one of these next to their registry and record through it.
#[derive(Clone)]
pub struct VerifyMetrics {
    runs: Counter,
    rejects: Counter,
    instrs_safe: Counter,
    instrs_may_saturate: Counter,
    instrs_may_underflow: Counter,
}

impl VerifyMetrics {
    /// Registers (or re-attaches to) the verify counters on `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        VerifyMetrics {
            runs: registry.counter(
                metric_names::VERIFY_RUNS_TOTAL,
                "Static verifier / range-analysis passes run.",
            ),
            rejects: registry.counter(
                metric_names::VERIFY_REJECTS_TOTAL,
                "Tapes rejected by the static verifier with a typed error.",
            ),
            instrs_safe: registry.counter(
                metric_names::VERIFY_INSTRS_SAFE_TOTAL,
                "Instructions classified provably-safe by the range analysis.",
            ),
            instrs_may_saturate: registry.counter(
                metric_names::VERIFY_INSTRS_MAY_SATURATE_TOTAL,
                "Instructions classified may-saturate by the range analysis.",
            ),
            instrs_may_underflow: registry.counter(
                metric_names::VERIFY_INSTRS_MAY_UNDERFLOW_TOTAL,
                "Instructions classified may-underflow by the range analysis.",
            ),
        }
    }

    /// Records one completed range analysis: a run plus its per-verdict
    /// instruction counts.
    pub fn observe_report(&self, report: &RangeReport) {
        self.runs.inc();
        self.instrs_safe.add(report.safe as u64);
        self.instrs_may_saturate.add(report.may_saturate as u64);
        self.instrs_may_underflow.add(report.may_underflow as u64);
    }

    /// Records a structural verifier pass that found nothing to reject
    /// (Layer 1 alone, no range verdicts).
    pub fn observe_pass(&self) {
        self.runs.inc();
    }

    /// Records a typed rejection (Layer 1 or a corrupted-tape CLI run).
    pub fn observe_reject(&self) {
        self.runs.inc();
        self.rejects.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::{compile, Semiring};
    use problp_bayes::networks;
    use problp_engine::Tape;
    use problp_num::ArithSpec;

    #[test]
    fn counters_track_reports_and_rejects() {
        let registry = MetricsRegistry::new();
        let metrics = VerifyMetrics::new(&registry);

        let ac = compile(&networks::sprinkler()).unwrap();
        let tape = Tape::compile(&ac, Semiring::SumProduct).unwrap();
        let report = crate::analyze(&tape, ArithSpec::F64).unwrap();
        metrics.observe_report(&report);
        metrics.observe_reject();

        let rendered = registry.render_prometheus();
        assert!(rendered.contains("problp_verify_runs_total 2"));
        assert!(rendered.contains("problp_verify_rejects_total 1"));
        assert!(rendered.contains(&format!("problp_verify_instrs_safe_total {}", report.safe)));
    }
}
