//! Layer 2: abstract-interpretation range analysis over the tape IR.
//!
//! # The abstract domain
//!
//! Every register carries an [`Interval`] `⟨lo, hi, min_nz⟩` of the `f64`
//! values it can hold across **all** evidence instantiations: `lo`/`hi`
//! bound the value, `min_nz` lower-bounds its smallest possible *nonzero*
//! magnitude (the quantity that decides underflow). Arithmetic circuits
//! compute non-negative values only, so `lo ≥ 0` throughout.
//!
//! Inputs are exactly the paper's analytical premises: an indicator is
//! `{0, 1}` (converted to the target format), a CPT parameter is the
//! point interval of its format-converted constant, read from the
//! compiled model. The transfer functions mirror the runtime semantics
//! of `problp-num` — fixed-point add is exact-or-saturate, fixed-point
//! multiply rounds half-up within one [`FixedFormat::ulp`], low-precision
//! float ops round to nearest within a relative
//! [`FloatFormat::epsilon`], there are no subnormals (flush-to-zero
//! raises `underflow`), and saturation clamps fixed values at the format
//! maximum while floats overflow to infinity.
//!
//! Every widening is **outward only**, so the analysis is sound in the
//! direction that matters: an instruction classified
//! [`InstrVerdict::ProvablySafe`] can never raise `overflow` or
//! `underflow` at runtime for any evidence (the conformance harness
//! asserts exactly this against the sticky flags of its whole backend
//! matrix); the `May*` verdicts are conservative warnings.

use problp_engine::tape::Instr;
use problp_engine::{Tape, VerifyError};
use problp_num::{ArithSpec, Fixed, FixedFormat, Flags, LpFloat};

/// The abstract value of one register: bounds over every evidence
/// instantiation, plus the smallest possible nonzero magnitude.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Interval {
    /// Lower bound of the value (circuits are non-negative: `lo ≥ 0`).
    pub lo: f64,
    /// Upper bound of the value.
    pub hi: f64,
    /// Lower bound of the smallest *nonzero* value; [`f64::INFINITY`]
    /// when the register is provably always zero.
    pub min_nz: f64,
}

impl Interval {
    /// The point interval of a known constant.
    fn point(x: f64) -> Interval {
        Interval {
            lo: x,
            hi: x,
            min_nz: if x > 0.0 { x } else { f64::INFINITY },
        }
    }
}

/// The static safety classification of one tape instruction under a
/// concrete arithmetic format.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstrVerdict {
    /// No evidence instantiation can make this instruction raise
    /// `overflow` or `underflow` — a proof, not a heuristic.
    ProvablySafe,
    /// Some reachable value may exceed the format's largest finite value
    /// (fixed point clamps and raises `overflow`; low-precision float
    /// overflows to infinity).
    MaySaturate,
    /// Some reachable nonzero value may fall below the format's smallest
    /// positive value (low-precision float flushes to zero and raises
    /// `underflow`; fixed point rounds to zero, conservatively treated
    /// as a loss here even though its runtime flag is only `inexact`).
    MayUnderflow,
}

impl InstrVerdict {
    /// The verdict's report name (`safe`, `may-saturate`,
    /// `may-underflow`).
    pub fn name(&self) -> &'static str {
        match self {
            InstrVerdict::ProvablySafe => "safe",
            InstrVerdict::MaySaturate => "may-saturate",
            InstrVerdict::MayUnderflow => "may-underflow",
        }
    }
}

/// The result of one range analysis: a verdict per tape instruction plus
/// the aggregate view the CLI table and the conformance cross-check read.
#[derive(Clone, Debug)]
pub struct RangeReport {
    /// The arithmetic the tape was analyzed for.
    pub spec: ArithSpec,
    /// One verdict per instruction of [`Tape::instrs`], in stream order.
    pub verdicts: Vec<InstrVerdict>,
    /// The root register's interval (the answer's analytical bounds).
    pub root: Interval,
    /// Instructions classified [`InstrVerdict::ProvablySafe`].
    pub safe: usize,
    /// Instructions classified [`InstrVerdict::MaySaturate`].
    pub may_saturate: usize,
    /// Instructions classified [`InstrVerdict::MayUnderflow`].
    pub may_underflow: usize,
    /// Flags raised while converting the CPT parameters themselves into
    /// the format (the engine performs the same conversions once per
    /// sweep, before any instruction runs).
    pub param_flags: Flags,
}

impl RangeReport {
    /// `true` when every instruction is provably safe **and** parameter
    /// conversion cannot raise a range flag: no evidence instantiation
    /// can make a sweep raise `overflow` or `underflow`.
    pub fn all_safe(&self) -> bool {
        self.may_saturate == 0 && self.may_underflow == 0 && !self.param_flags.range_violation()
    }

    /// The first non-safe instruction, with its verdict.
    pub fn first_unsafe(&self) -> Option<(usize, InstrVerdict)> {
        self.verdicts
            .iter()
            .enumerate()
            .find(|(_, v)| **v != InstrVerdict::ProvablySafe)
            .map(|(i, v)| (i, *v))
    }
}

/// The minimal safe fixed format derived for a tape by
/// [`minimal_fixed_format`]: the paper's analytical precision bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FixedRecommendation {
    /// The recommended format (minimal integer bits, then minimal
    /// fractional bits, each verified by re-running the analysis).
    pub format: FixedFormat,
    /// `true` when the format provably never saturates; `false` when no
    /// searched width could rule saturation out.
    pub saturation_free: bool,
    /// `true` when the format provably never loses a nonzero value to
    /// rounding; `false` when no searched width could rule it out.
    pub underflow_free: bool,
}

/// Converts a constant into the format, returning the representable
/// value actually computed with plus the conversion flags.
fn convert(spec: ArithSpec, x: f64) -> (f64, Flags) {
    let mut flags = Flags::default();
    let v = match spec {
        ArithSpec::F64 => x,
        ArithSpec::Fixed(f) => Fixed::from_f64(x, f, &mut flags).to_f64(),
        ArithSpec::Float(f) => LpFloat::from_f64(x, f, &mut flags).to_f64(),
    };
    (v, flags)
}

/// Outward rounding slack applied to upper bounds: one ulp for a
/// fixed-point multiply's half-up rounding, one relative epsilon (plus
/// analysis-side `f64` error margin) for float round-to-nearest.
fn widen_up(spec: ArithSpec, x: f64) -> f64 {
    match spec {
        ArithSpec::F64 => x,
        ArithSpec::Fixed(f) => x + f.ulp(),
        ArithSpec::Float(f) => x * (1.0 + 2.0 * f.epsilon() + 1e-12),
    }
}

/// Outward rounding slack applied to lower bounds (clamped at zero).
fn widen_down(spec: ArithSpec, x: f64) -> f64 {
    let w = match spec {
        ArithSpec::F64 => x,
        ArithSpec::Fixed(f) => x - f.ulp(),
        ArithSpec::Float(f) => x * (1.0 - 2.0 * f.epsilon() - 1e-12),
    };
    if w.is_finite() {
        w.max(0.0)
    } else {
        w
    }
}

/// Runs the interval dataflow over a verified tape, classifying each
/// instruction for `spec` (the abstract domain and its soundness
/// direction are described in this module's source-level docs).
///
/// # Errors
///
/// Returns the [`VerifyError`] of [`Tape::verify`] if the tape is not
/// structurally well-formed — range analysis only runs on streams whose
/// dataflow is already proven.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, Semiring};
/// use problp_bayes::networks;
/// use problp_engine::Tape;
/// use problp_num::ArithSpec;
///
/// let ac = compile(&networks::asia())?;
/// let tape = Tape::compile(&ac, Semiring::SumProduct)?;
/// let report = problp_verify::analyze(&tape, ArithSpec::parse("fixed:2.14").unwrap())?;
/// assert_eq!(report.verdicts.len(), tape.instrs().len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze(tape: &Tape, spec: ArithSpec) -> Result<RangeReport, VerifyError> {
    tape.verify()?;

    let max = spec.max_value();
    let min_pos = spec.min_positive();
    // `f64` computes every probability exactly enough and never flags:
    // safety is definitional, and the interval pass below would agree.
    let is_f64 = spec == ArithSpec::F64;

    let mut regs: Vec<Interval> = vec![Interval::point(0.0); tape.num_regs()];
    let mut param_flags = Flags::default();
    for (&reg, &value) in tape.param_regs().iter().zip(tape.params()) {
        let (converted, flags) = convert(spec, value);
        param_flags.overflow |= flags.overflow;
        param_flags.underflow |= flags.underflow;
        param_flags.inexact |= flags.inexact;
        param_flags.invalid |= flags.invalid;
        regs[reg as usize] = Interval::point(converted);
    }
    let (one, one_flags) = convert(spec, 1.0);

    let mut verdicts = Vec::with_capacity(tape.instrs().len());
    let mut safe = 0usize;
    let mut may_saturate = 0usize;
    let mut may_underflow = 0usize;

    for &instr in tape.instrs() {
        let (result, verdict) = match instr {
            Instr::LoadIndicator { .. } => {
                // {0, 1} in the format: saturates only when the format
                // cannot even represent 1 (e.g. `fixed:0.F`).
                let v = if one_flags.overflow {
                    InstrVerdict::MaySaturate
                } else {
                    InstrVerdict::ProvablySafe
                };
                (
                    Interval {
                        lo: 0.0,
                        hi: one,
                        min_nz: if one > 0.0 { one } else { f64::INFINITY },
                    },
                    v,
                )
            }
            Instr::Add { lhs, rhs, .. } => {
                let (a, b) = (regs[lhs as usize], regs[rhs as usize]);
                // Exact in fixed point; one rounding in float. A sum of
                // non-negatives is at least each operand, so its nonzero
                // minimum never shrinks below the operands' — addition
                // cannot underflow.
                let hi = widen_up(spec, a.hi + b.hi);
                let iv = Interval {
                    lo: widen_down(spec, a.lo + b.lo),
                    hi,
                    min_nz: a.min_nz.min(b.min_nz),
                };
                let v = if !is_f64 && hi > max {
                    InstrVerdict::MaySaturate
                } else {
                    InstrVerdict::ProvablySafe
                };
                (iv, v)
            }
            Instr::Mul { lhs, rhs, .. } => {
                let (a, b) = (regs[lhs as usize], regs[rhs as usize]);
                let hi = widen_up(spec, a.hi * b.hi);
                let raw_min_nz = if a.min_nz.is_infinite() || b.min_nz.is_infinite() {
                    f64::INFINITY
                } else {
                    a.min_nz * b.min_nz
                };
                let iv = Interval {
                    lo: widen_down(spec, a.lo * b.lo),
                    hi,
                    min_nz: widen_down(spec, raw_min_nz).max(0.0_f64.min(raw_min_nz)),
                };
                // The product is where both failure directions live: the
                // only op whose result can shrink below its operands.
                let v = if !is_f64 && hi > max {
                    InstrVerdict::MaySaturate
                } else if !is_f64 && raw_min_nz < min_pos * (1.0 + 1e-9) {
                    InstrVerdict::MayUnderflow
                } else {
                    InstrVerdict::ProvablySafe
                };
                (iv, v)
            }
            Instr::Max { lhs, rhs, .. } => {
                let (a, b) = (regs[lhs as usize], regs[rhs as usize]);
                // Selection, not arithmetic: exact, never flags.
                (
                    Interval {
                        lo: a.lo.max(b.lo),
                        hi: a.hi.max(b.hi),
                        min_nz: a.min_nz.min(b.min_nz),
                    },
                    InstrVerdict::ProvablySafe,
                )
            }
            Instr::MinNz { lhs, rhs, .. } => {
                let (a, b) = (regs[lhs as usize], regs[rhs as usize]);
                // Skip-zero minimum: zero only when both sides are zero,
                // `minnz(x, 0) = x` reaches either side's maximum.
                (
                    Interval {
                        lo: a.lo.min(b.lo),
                        hi: a.hi.max(b.hi),
                        min_nz: a.min_nz.min(b.min_nz),
                    },
                    InstrVerdict::ProvablySafe,
                )
            }
        };

        // Post-verdict clamp to the runtime's saturation semantics:
        // fixed point clamps at the format maximum; float overflows to
        // infinity, which then taints everything downstream (correct —
        // every consumer of an infinity may flag).
        let mut result = result;
        if verdict == InstrVerdict::MaySaturate {
            match spec {
                ArithSpec::Fixed(_) => result.hi = result.hi.min(max),
                ArithSpec::Float(_) => result.hi = f64::INFINITY,
                ArithSpec::F64 => {}
            }
        }
        if verdict == InstrVerdict::MayUnderflow {
            // The value may flush (or round) to zero.
            result.lo = 0.0;
        }

        let dst = match instr {
            Instr::LoadIndicator { dst, .. }
            | Instr::Add { dst, .. }
            | Instr::Mul { dst, .. }
            | Instr::Max { dst, .. }
            | Instr::MinNz { dst, .. } => dst,
        };
        regs[dst as usize] = result;
        match verdict {
            InstrVerdict::ProvablySafe => safe += 1,
            InstrVerdict::MaySaturate => may_saturate += 1,
            InstrVerdict::MayUnderflow => may_underflow += 1,
        }
        verdicts.push(verdict);
    }

    Ok(RangeReport {
        spec,
        root: regs[tape.root_reg() as usize],
        verdicts,
        safe,
        may_saturate,
        may_underflow,
        param_flags,
    })
}

/// Widest integer width tried by [`minimal_fixed_format`].
const MAX_INT_SEARCH: u32 = 32;
/// Widest fractional width tried by [`minimal_fixed_format`].
const MAX_FRAC_SEARCH: u32 = 90;

/// Derives the minimal fixed format `fixed:I.F` for which the range
/// analysis proves every instruction of `tape` safe: first the smallest
/// integer width that rules out saturation (searched with generous
/// fraction bits), then the smallest fraction width that also rules out
/// underflow — each candidate verified by re-running [`analyze`], never
/// extrapolated. This is the per-model analytical bound of the paper's
/// precision tables, as a pass.
///
/// When no searched width suffices, the widest candidate is returned
/// with the corresponding `*_free` flag cleared.
///
/// # Errors
///
/// Returns the [`VerifyError`] of [`Tape::verify`] if the tape is not
/// structurally well-formed.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, Semiring};
/// use problp_bayes::networks;
/// use problp_engine::Tape;
/// use problp_num::ArithSpec;
///
/// let ac = compile(&networks::asia())?;
/// let tape = Tape::compile(&ac, Semiring::SumProduct)?;
/// let rec = problp_verify::minimal_fixed_format(&tape)?;
/// assert!(rec.saturation_free && rec.underflow_free);
/// // The recommendation is verified, not extrapolated.
/// let report = problp_verify::analyze(&tape, ArithSpec::Fixed(rec.format))?;
/// assert!(report.all_safe());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn minimal_fixed_format(tape: &Tape) -> Result<FixedRecommendation, VerifyError> {
    tape.verify()?;

    // Phase 1: minimal integer width, probed with generous fraction bits
    // so rounding never masks saturation.
    let probe_frac = MAX_FRAC_SEARCH;
    let mut int_bits = None;
    for i in 0..=MAX_INT_SEARCH {
        let fmt = FixedFormat::new(i, probe_frac).expect("searched widths stay in range");
        let report = analyze(tape, ArithSpec::Fixed(fmt))?;
        if report.may_saturate == 0 && !report.param_flags.overflow {
            int_bits = Some(i);
            break;
        }
    }
    let (i, saturation_free) = match int_bits {
        Some(i) => (i, true),
        None => (MAX_INT_SEARCH, false),
    };

    // Phase 2: minimal fraction width at that integer width.
    for f in 1..=MAX_FRAC_SEARCH {
        let fmt = FixedFormat::new(i, f).expect("searched widths stay in range");
        let report = analyze(tape, ArithSpec::Fixed(fmt))?;
        if report.all_safe() {
            return Ok(FixedRecommendation {
                format: fmt,
                saturation_free: true,
                underflow_free: true,
            });
        }
    }
    Ok(FixedRecommendation {
        format: FixedFormat::new(i, MAX_FRAC_SEARCH).expect("searched widths stay in range"),
        saturation_free,
        underflow_free: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::{compile, AcGraph, Semiring};
    use problp_bayes::{networks, VarId};

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    /// λ_{a0}·0.3 + λ_{a1}·0.7.
    fn tiny() -> AcGraph {
        let mut g = AcGraph::new(vec![2]);
        let a0 = g.indicator(v(0), 0).unwrap();
        let a1 = g.indicator(v(0), 1).unwrap();
        let t0 = g.param(0.3).unwrap();
        let t1 = g.param(0.7).unwrap();
        let p0 = g.product(vec![a0, t0]).unwrap();
        let p1 = g.product(vec![a1, t1]).unwrap();
        let root = g.sum(vec![p0, p1]).unwrap();
        g.set_root(root);
        g
    }

    #[test]
    fn f64_is_always_safe() {
        let tape = Tape::compile(&tiny(), Semiring::SumProduct).unwrap();
        let report = analyze(&tape, ArithSpec::F64).unwrap();
        assert!(report.all_safe());
        assert_eq!(report.safe, tape.instrs().len());
        // The root is a convex combination: its bounds say so.
        assert!(report.root.lo >= 0.0);
        assert!(report.root.hi <= 1.0 + 1e-12, "hi = {}", report.root.hi);
    }

    #[test]
    fn builtin_networks_pin_the_paper_shaped_verdicts() {
        // Sprinkler's products never leave what 2.14 fixed point holds.
        let ac = compile(&networks::sprinkler()).unwrap();
        let tape = Tape::compile(&ac, Semiring::SumProduct).unwrap();
        for spec in ["f64", "fixed:2.14", "float:8.23"] {
            let spec = ArithSpec::parse(spec).unwrap();
            let report = analyze(&tape, spec).unwrap();
            assert!(report.all_safe(), "{spec} on sprinkler");
        }

        // Asia's deepest product chain bottoms out near 1.5e-9 — far
        // below the 2^-14 ulp — so 2.14 fixed point may round nonzero
        // posterior mass to zero, and the analysis must say so, while
        // an 8-bit-exponent float shrugs it off.
        let ac = compile(&networks::asia()).unwrap();
        let tape = Tape::compile(&ac, Semiring::SumProduct).unwrap();
        for spec in ["f64", "float:8.23"] {
            let spec = ArithSpec::parse(spec).unwrap();
            let report = analyze(&tape, spec).unwrap();
            assert!(report.all_safe(), "{spec} on asia");
        }
        let report = analyze(&tape, ArithSpec::parse("fixed:2.14").unwrap()).unwrap();
        assert_eq!(report.may_saturate, 0, "asia never saturates 2 int bits");
        assert!(report.may_underflow > 0, "asia's deep products may vanish");
        assert!(!report.all_safe());
    }

    #[test]
    fn a_format_that_cannot_hold_one_may_saturate() {
        let tape = Tape::compile(&tiny(), Semiring::SumProduct).unwrap();
        // fixed:0.4 tops out at 1 - 2^-4 < 1: the indicator loads saturate.
        let spec = ArithSpec::parse("fixed:0.4").unwrap();
        let report = analyze(&tape, spec).unwrap();
        assert!(report.may_saturate > 0);
        assert!(!report.all_safe());
        assert!(matches!(
            report.first_unsafe(),
            Some((_, InstrVerdict::MaySaturate))
        ));
    }

    #[test]
    fn a_coarse_fixed_format_may_underflow_the_products() {
        let tape = Tape::compile(&tiny(), Semiring::SumProduct).unwrap();
        // fixed:2.2 has ulp 0.25; 1·0.3 rounds below a representable
        // nonzero, so the analysis must warn.
        let spec = ArithSpec::parse("fixed:2.2").unwrap();
        let report = analyze(&tape, spec).unwrap();
        assert!(report.may_underflow > 0, "{report:?}");
    }

    #[test]
    fn verdict_vector_is_stream_aligned() {
        let tape = Tape::compile(&tiny(), Semiring::SumProduct).unwrap();
        let report = analyze(&tape, ArithSpec::parse("fixed:2.14").unwrap()).unwrap();
        assert_eq!(report.verdicts.len(), tape.instrs().len());
        assert_eq!(
            report.safe + report.may_saturate + report.may_underflow,
            report.verdicts.len()
        );
    }

    #[test]
    fn analysis_covers_all_semirings() {
        let g = tiny();
        for semiring in [
            Semiring::SumProduct,
            Semiring::MaxProduct,
            Semiring::MinProduct,
        ] {
            let tape = Tape::compile(&g, semiring).unwrap();
            let report = analyze(&tape, ArithSpec::parse("fixed:2.14").unwrap()).unwrap();
            assert!(report.all_safe(), "{semiring:?}");
        }
    }

    #[test]
    fn minimal_fixed_format_is_verified_and_minimal() {
        let ac = compile(&networks::sprinkler()).unwrap();
        let tape = Tape::compile(&ac, Semiring::SumProduct).unwrap();
        let rec = minimal_fixed_format(&tape).unwrap();
        assert!(rec.saturation_free && rec.underflow_free);

        // Verified at the recommendation...
        let report = analyze(&tape, ArithSpec::Fixed(rec.format)).unwrap();
        assert!(report.all_safe());

        // ...and minimal in both widths.
        let (i, f) = (rec.format.int_bits(), rec.format.frac_bits());
        if f > 1 {
            let narrower = FixedFormat::new(i, f - 1).unwrap();
            let report = analyze(&tape, ArithSpec::Fixed(narrower)).unwrap();
            assert!(!report.all_safe(), "one fewer fraction bit must fail");
        }
    }

    #[test]
    fn readme_walkthrough_formats_stay_pinned() {
        // The README's "Static analysis" walkthrough quotes these exact
        // derivations; keep them honest.
        let asia =
            Tape::compile(&compile(&networks::asia()).unwrap(), Semiring::SumProduct).unwrap();
        let rec = minimal_fixed_format(&asia).unwrap();
        assert!(rec.saturation_free && rec.underflow_free);
        assert_eq!((rec.format.int_bits(), rec.format.frac_bits()), (1, 31));

        // Alarm's smallest joint products need more than the searched 90
        // fraction bits: the search pins the integer width (probabilities
        // never exceed 1) but honestly reports underflow unresolved.
        let alarm = Tape::compile(
            &compile(&networks::alarm(11)).unwrap(),
            Semiring::SumProduct,
        )
        .unwrap();
        let rec = minimal_fixed_format(&alarm).unwrap();
        assert_eq!(rec.format.int_bits(), 1);
        assert!(rec.saturation_free);
        assert!(!rec.underflow_free);
    }

    #[test]
    fn rejects_a_corrupted_tape_before_analyzing() {
        let mut tape = Tape::compile(&tiny(), Semiring::SumProduct).unwrap();
        let oob = tape.num_regs() as u32 + 7;
        let mul = tape
            .raw_instrs_mut()
            .iter_mut()
            .find_map(|i| match i {
                Instr::Mul { rhs, .. } => Some(rhs),
                _ => None,
            })
            .expect("the tiny circuit multiplies");
        *mul = oob;
        assert!(analyze(&tape, ArithSpec::F64).is_err());
        assert!(minimal_fixed_format(&tape).is_err());
    }
}
