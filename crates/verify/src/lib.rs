//! # problp-verify — static analysis over the ProbLP tape IR
//!
//! conf_dac_ShahOMV19's central claim is that numeric safety of
//! low-precision probabilistic inference can be established
//! **analytically, before execution**. This crate is that claim as a
//! reusable subsystem, layered over the execution tape of
//! `problp-engine`:
//!
//! 1. **Layer 1 — the tape verifier** (re-exported from
//!    [`problp_engine::verify`]): a single-pass dataflow checker proving
//!    an instruction stream well-formed — def-before-use, no clobbered
//!    live registers, parameter immutability, bounds, fused-stream
//!    equivalence with fold order preserved. See
//!    [`problp_engine::Tape::verify`] and
//!    [`problp_engine::Tape::verify_fused`].
//! 2. **Layer 2 — abstract-interpretation range analysis** ([`analyze`]):
//!    an interval dataflow over the same tape per [`ArithSpec`], with
//!    probability-bounded indicator inputs and CPT parameters read from
//!    the compiled model, statically classifying each instruction as
//!    [*provably-safe*](InstrVerdict::ProvablySafe),
//!    [*may-saturate*](InstrVerdict::MaySaturate) or
//!    [*may-underflow*](InstrVerdict::MayUnderflow) for a concrete
//!    `fixed:I.F` / `float:E.M` format — and deriving the **minimal safe
//!    fixed format** per model ([`minimal_fixed_format`]), the paper's
//!    analytical bound as a pass.
//!
//! The verdicts are sound in one direction by construction: every
//! interval is only ever widened outward, so *provably-safe* really is a
//! proof (`problp-conformance` cross-checks this against runtime sticky
//! flags across its whole backend matrix), while *may-*\* verdicts are
//! conservative warnings.
//!
//! # Examples
//!
//! ```
//! use problp_ac::{compile, Semiring};
//! use problp_bayes::networks;
//! use problp_engine::Tape;
//! use problp_num::ArithSpec;
//! use problp_verify::analyze;
//!
//! let ac = compile(&networks::sprinkler())?;
//! let tape = Tape::compile(&ac, Semiring::SumProduct)?;
//!
//! // f64 never saturates or flushes: everything is provably safe.
//! let report = analyze(&tape, ArithSpec::F64)?;
//! assert!(report.all_safe());
//!
//! // A 2.14 fixed format holds every intermediate of this model too.
//! let report = analyze(&tape, ArithSpec::parse("fixed:2.14").unwrap())?;
//! assert!(report.all_safe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod range;

pub use metrics::VerifyMetrics;
pub use range::{
    analyze, minimal_fixed_format, FixedRecommendation, InstrVerdict, Interval, RangeReport,
};

// Layer 1 lives next to the tape compiler (debug builds auto-run it);
// re-exported here so `problp::verify` is the one facade for both layers.
pub use problp_engine::verify::VerifyError;

// The format vocabulary the analysis speaks.
pub use problp_num::ArithSpec;
