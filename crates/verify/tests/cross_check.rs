//! Cross-checks between the two ways the workspace derives a safe fixed
//! format: the circuit-level value analysis of `problp-bounds`
//! (paper-style, over the AC graph) and the tape-level abstract
//! interpretation of `problp-verify`. They reason over different IRs
//! with different conservatisms, so the test asserts agreement within
//! one bit, not equality.

use problp_ac::{compile, transform::binarize, Semiring};
use problp_bayes::networks;
use problp_bounds::{required_frac_bits, required_int_bits, AcAnalysis};
use problp_engine::Tape;
use problp_num::ArithSpec;
use problp_verify::{analyze, minimal_fixed_format};

#[test]
fn tape_level_minimal_format_agrees_with_the_circuit_level_analysis() {
    for net in [
        networks::sprinkler(),
        networks::asia(),
        networks::student(),
        networks::earthquake(),
    ] {
        let nary = compile(&net).unwrap();
        let bin = binarize(&nary).unwrap();
        let analysis = AcAnalysis::new(&bin).unwrap();
        let circuit_int = required_int_bits(&analysis, 0.0);
        let circuit_frac = required_frac_bits(&analysis);

        let tape = Tape::compile(&nary, Semiring::SumProduct).unwrap();
        let rec = minimal_fixed_format(&tape).unwrap();
        assert!(rec.saturation_free && rec.underflow_free);

        let di = (rec.format.int_bits() as i64 - circuit_int as i64).abs();
        let df = (rec.format.frac_bits() as i64 - circuit_frac as i64).abs();
        assert!(
            di <= 1,
            "int bits disagree: tape {} vs circuit {circuit_int}",
            rec.format.int_bits()
        );
        assert!(
            df <= 1,
            "frac bits disagree: tape {} vs circuit {circuit_frac}",
            rec.format.frac_bits()
        );

        // The recommendation really is safe on its own terms.
        let report = analyze(&tape, ArithSpec::Fixed(rec.format)).unwrap();
        assert!(report.all_safe());
    }
}

#[test]
fn circuit_level_widths_are_safe_under_the_tape_analysis() {
    // Granting the circuit-level derivation one extra bit in each
    // direction (its conservatisms differ from the tape's), the range
    // analysis must agree nothing can leave the format.
    for net in [networks::sprinkler(), networks::asia()] {
        let nary = compile(&net).unwrap();
        let bin = binarize(&nary).unwrap();
        let analysis = AcAnalysis::new(&bin).unwrap();
        let fmt = problp_num::FixedFormat::new(
            required_int_bits(&analysis, 0.0) + 1,
            required_frac_bits(&analysis) + 1,
        )
        .unwrap();
        let tape = Tape::compile(&nary, Semiring::SumProduct).unwrap();
        let report = analyze(&tape, ArithSpec::Fixed(fmt)).unwrap();
        assert!(report.all_safe(), "{fmt:?} on a builtin network");
    }
}
