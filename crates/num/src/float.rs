//! Parameterised normalized floating-point arithmetic (soft-float).
//!
//! ProbLP's floating-point error models (paper §3.1.2) assume a *normalized*
//! representation with `E` exponent bits and `M` mantissa bits, where every
//! operation introduces at most one relative rounding of magnitude
//! `ε = 2^-(M+1)` (round to nearest). This module implements such a format
//! for arbitrary `E`/`M`:
//!
//! * round-to-nearest-even on every operation,
//! * no subnormals: results below the smallest normal magnitude are flushed
//!   to zero and raise the `underflow` flag (the framework sizes `E` so this
//!   never happens, §3.1.4),
//! * results above the largest normal magnitude saturate to infinity and
//!   raise `overflow`,
//! * IEEE-754-compatible behaviour otherwise — with `(E, M) = (8, 23)` or
//!   `(11, 52)` the operations match hardware `f32`/`f64` bit-for-bit on
//!   normal values (verified by property tests).
//!
//! Every operation is implemented as *exact* integer arithmetic on
//! significands (using [`U256`] intermediates) followed by a single
//! round-to-nearest-even step, which makes correct rounding straightforward
//! to verify.

use crate::error::FormatError;
use crate::flags::Flags;
use crate::wide::U256;

/// Minimum supported exponent width in bits.
pub const MIN_EXP_BITS: u32 = 2;
/// Maximum supported exponent width in bits.
pub const MAX_EXP_BITS: u32 = 20;
/// Minimum supported mantissa width in bits.
pub const MIN_MANT_BITS: u32 = 1;
/// Maximum supported mantissa width in bits.
pub const MAX_MANT_BITS: u32 = 118;

/// A normalized floating-point format with `E` exponent bits and `M`
/// mantissa bits (plus one implicit leading bit and one sign bit).
///
/// The exponent encoding follows IEEE 754: bias `2^(E-1) - 1`, biased value
/// `0` reserved for zero and all-ones reserved for infinity/NaN, giving
/// normal exponents in `[1 - bias, bias]`.
///
/// # Examples
///
/// ```
/// use problp_num::FloatFormat;
///
/// let fmt = FloatFormat::new(8, 23)?; // IEEE single precision
/// assert_eq!(fmt.bias(), 127);
/// assert_eq!(fmt.min_exp(), -126);
/// assert_eq!(fmt.max_exp(), 127);
/// // Per-operation relative error bound ε = 2^-(M+1), paper eq. (6).
/// assert_eq!(fmt.epsilon(), 2.0_f64.powi(-24));
/// # Ok::<(), problp_num::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FloatFormat {
    exp_bits: u32,
    mant_bits: u32,
}

impl FloatFormat {
    /// Creates a floating-point format.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::ExpBitsOutOfRange`] or
    /// [`FormatError::MantBitsOutOfRange`] when a width is outside the
    /// supported range, and [`FormatError::WidthTooLarge`] when the packed
    /// encoding (`E + M` bits) would exceed 127 bits.
    pub fn new(exp_bits: u32, mant_bits: u32) -> Result<Self, FormatError> {
        if !(MIN_EXP_BITS..=MAX_EXP_BITS).contains(&exp_bits) {
            return Err(FormatError::ExpBitsOutOfRange {
                requested: exp_bits,
                min: MIN_EXP_BITS,
                max: MAX_EXP_BITS,
            });
        }
        if !(MIN_MANT_BITS..=MAX_MANT_BITS).contains(&mant_bits) {
            return Err(FormatError::MantBitsOutOfRange {
                requested: mant_bits,
                min: MIN_MANT_BITS,
                max: MAX_MANT_BITS,
            });
        }
        if exp_bits + mant_bits > 127 {
            return Err(FormatError::WidthTooLarge {
                requested: exp_bits + mant_bits,
                max: 127,
            });
        }
        Ok(FloatFormat {
            exp_bits,
            mant_bits,
        })
    }

    /// IEEE 754 single precision, `(E, M) = (8, 23)`.
    pub fn ieee_single() -> Self {
        FloatFormat {
            exp_bits: 8,
            mant_bits: 23,
        }
    }

    /// IEEE 754 double precision, `(E, M) = (11, 52)`.
    pub fn ieee_double() -> Self {
        FloatFormat {
            exp_bits: 11,
            mant_bits: 52,
        }
    }

    /// IEEE 754 half precision, `(E, M) = (5, 10)`.
    pub fn ieee_half() -> Self {
        FloatFormat {
            exp_bits: 5,
            mant_bits: 10,
        }
    }

    /// Number of exponent bits `E`.
    #[inline]
    pub const fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Number of explicit mantissa bits `M`.
    #[inline]
    pub const fn mant_bits(&self) -> u32 {
        self.mant_bits
    }

    /// The exponent bias, `2^(E-1) - 1`.
    #[inline]
    pub const fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// The smallest normal exponent, `1 - bias`.
    #[inline]
    pub const fn min_exp(&self) -> i32 {
        1 - self.bias()
    }

    /// The largest normal exponent, `bias`.
    #[inline]
    pub const fn max_exp(&self) -> i32 {
        self.bias()
    }

    /// Per-operation relative rounding error bound `ε = 2^-(M+1)`
    /// (paper eq. 6).
    pub fn epsilon(&self) -> f64 {
        (-(self.mant_bits as f64 + 1.0)).exp2()
    }

    /// The smallest positive normal value, `2^min_exp`.
    pub fn min_positive(&self) -> f64 {
        (self.min_exp() as f64).exp2()
    }

    /// The largest finite value, `(2 - 2^-M) * 2^max_exp`.
    pub fn max_finite(&self) -> f64 {
        (2.0 - (-(self.mant_bits as f64)).exp2()) * (self.max_exp() as f64).exp2()
    }

    /// Width of the packed hardware encoding *without* a sign bit
    /// (`E + M`); ProbLP datapaths carry only non-negative values.
    #[inline]
    pub const fn packed_bits(&self) -> u32 {
        self.exp_bits + self.mant_bits
    }
}

impl std::fmt::Display for FloatFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fl(E={}, M={})", self.exp_bits, self.mant_bits)
    }
}

/// Numeric class of an [`LpFloat`] value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Class {
    Zero,
    /// A normal value `sig * 2^(exp - M)` with `sig` having exactly `M + 1`
    /// bits (the top bit is the implicit one).
    Normal {
        exp: i32,
        sig: u128,
    },
    Inf,
    Nan,
}

/// A low-precision floating-point number in a given [`FloatFormat`].
///
/// # Examples
///
/// ```
/// use problp_num::{Flags, FloatFormat, LpFloat};
///
/// let fmt = FloatFormat::new(6, 9)?;
/// let mut flags = Flags::default();
/// let a = LpFloat::from_f64(0.3, fmt, &mut flags);
/// let b = LpFloat::from_f64(0.2, fmt, &mut flags);
/// let sum = a.add(&b, &mut flags);
/// // Each conversion and the addition round once: three ε-sized errors.
/// let eps = fmt.epsilon();
/// assert!((sum.to_f64() - 0.5).abs() / 0.5 <= 3.1 * eps);
/// # Ok::<(), problp_num::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LpFloat {
    format: FloatFormat,
    sign: bool,
    class: Class,
}

impl LpFloat {
    /// Positive zero in the given format.
    pub fn zero(format: FloatFormat) -> Self {
        LpFloat {
            format,
            sign: false,
            class: Class::Zero,
        }
    }

    /// The value one in the given format (always exactly representable).
    pub fn one(format: FloatFormat) -> Self {
        LpFloat {
            format,
            sign: false,
            class: Class::Normal {
                exp: 0,
                sig: 1u128 << format.mant_bits,
            },
        }
    }

    /// Positive infinity in the given format.
    pub fn infinity(format: FloatFormat) -> Self {
        LpFloat {
            format,
            sign: false,
            class: Class::Inf,
        }
    }

    /// A NaN in the given format.
    pub fn nan(format: FloatFormat) -> Self {
        LpFloat {
            format,
            sign: false,
            class: Class::Nan,
        }
    }

    /// The largest finite value in the given format.
    pub fn max_finite(format: FloatFormat) -> Self {
        LpFloat {
            format,
            sign: false,
            class: Class::Normal {
                exp: format.max_exp(),
                sig: (1u128 << (format.mant_bits + 1)) - 1,
            },
        }
    }

    /// The smallest positive normal value in the given format.
    pub fn min_positive(format: FloatFormat) -> Self {
        LpFloat {
            format,
            sign: false,
            class: Class::Normal {
                exp: format.min_exp(),
                sig: 1u128 << format.mant_bits,
            },
        }
    }

    /// Converts an `f64` into the format, rounding to nearest-even.
    ///
    /// Values whose rounded magnitude exceeds the format's range become
    /// infinity (`overflow`); non-zero values below the smallest normal
    /// magnitude are flushed to zero (`underflow`); rounding raises
    /// `inexact`.
    pub fn from_f64(value: f64, format: FloatFormat, flags: &mut Flags) -> Self {
        if value.is_nan() {
            return LpFloat::nan(format);
        }
        let sign = value.is_sign_negative();
        if value == 0.0 {
            return LpFloat {
                format,
                sign,
                class: Class::Zero,
            };
        }
        if value.is_infinite() {
            return LpFloat {
                format,
                sign,
                class: Class::Inf,
            };
        }
        let bits = value.abs().to_bits();
        let raw_exp = (bits >> 52) as i32;
        let raw_mant = bits & ((1u64 << 52) - 1);
        // Normalize: obtain a 53-bit significand with the top bit set and
        // the unbiased exponent of the leading bit.
        let (sig53, exp) = if raw_exp == 0 {
            // Subnormal f64: value = raw_mant * 2^(-1074).
            let shift = raw_mant.leading_zeros() - 11;
            (raw_mant << shift, -1022 - shift as i32)
        } else {
            (raw_mant | (1u64 << 52), raw_exp - 1023)
        };
        // value = sig53 * 2^(exp - 52): finalize rounds into the format.
        finalize(
            format,
            sign,
            U256::from_u128(sig53 as u128),
            exp - 52,
            false,
            flags,
        )
    }

    /// Builds a float from raw parts: `(-1)^sign * sig * 2^(exp - M)` where
    /// `sig` must have exactly `M + 1` bits (top bit set) and `exp` must be
    /// within the format's normal range.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is not a normalized `M + 1`-bit significand or `exp`
    /// is out of range.
    pub fn from_parts(sign: bool, exp: i32, sig: u128, format: FloatFormat) -> Self {
        let m = format.mant_bits;
        assert!(
            sig >> m == 1,
            "significand must have exactly M+1 bits with the top bit set"
        );
        assert!(
            (format.min_exp()..=format.max_exp()).contains(&exp),
            "exponent {exp} outside normal range"
        );
        LpFloat {
            format,
            sign,
            class: Class::Normal { exp, sig },
        }
    }

    /// The format of this number.
    #[inline]
    pub const fn format(&self) -> FloatFormat {
        self.format
    }

    /// Returns `true` for zero (of either sign).
    pub const fn is_zero(&self) -> bool {
        matches!(self.class, Class::Zero)
    }

    /// Returns `true` for a normal (finite, non-zero) value.
    pub const fn is_normal(&self) -> bool {
        matches!(self.class, Class::Normal { .. })
    }

    /// Returns `true` for infinity of either sign.
    pub const fn is_infinite(&self) -> bool {
        matches!(self.class, Class::Inf)
    }

    /// Returns `true` for NaN.
    pub const fn is_nan(&self) -> bool {
        matches!(self.class, Class::Nan)
    }

    /// The sign bit (`true` = negative). NaN reports `false`.
    pub const fn sign(&self) -> bool {
        self.sign
    }

    /// The unbiased exponent of a normal value, `None` otherwise.
    pub const fn exponent(&self) -> Option<i32> {
        match self.class {
            Class::Normal { exp, .. } => Some(exp),
            _ => None,
        }
    }

    /// The full `M + 1`-bit significand of a normal value (implicit bit
    /// included), `None` otherwise.
    pub const fn significand(&self) -> Option<u128> {
        match self.class {
            Class::Normal { sig, .. } => Some(sig),
            _ => None,
        }
    }

    /// The magnitude of this value (sign cleared).
    pub fn abs(&self) -> Self {
        LpFloat {
            sign: false,
            ..*self
        }
    }

    /// The negation of this value.
    pub fn neg(&self) -> Self {
        LpFloat {
            sign: !self.sign && !self.is_nan(),
            ..*self
        }
    }

    /// Converts to `f64` (one extra rounding when `M > 52`; infinity when
    /// the exponent exceeds the `f64` range).
    pub fn to_f64(&self) -> f64 {
        let mag = match self.class {
            Class::Zero => 0.0,
            Class::Inf => f64::INFINITY,
            Class::Nan => return f64::NAN,
            Class::Normal { exp, sig } => {
                // Scale in two steps so that intermediate powers of two stay
                // within f64 range: first bring the significand into [1, 2)
                // (exact), then apply the exponent.
                let unit = (sig as f64) * (-(self.format.mant_bits as f64)).exp2();
                unit * (exp as f64).exp2()
            }
        };
        if self.sign {
            -mag
        } else {
            mag
        }
    }

    /// The packed hardware encoding: `E + M` bits, `[exponent | mantissa]`,
    /// no sign bit (ProbLP datapaths are unsigned). Biased exponent 0 is
    /// zero, all-ones is infinity/NaN (NaN sets mantissa LSB).
    ///
    /// # Panics
    ///
    /// Panics if the value is negative (cannot be encoded).
    pub fn to_bits(&self) -> u128 {
        assert!(
            !self.sign || self.is_zero(),
            "negative values have no unsigned hardware encoding"
        );
        let m = self.format.mant_bits;
        let all_ones_exp = (1u128 << self.format.exp_bits) - 1;
        match self.class {
            Class::Zero => 0,
            Class::Inf => all_ones_exp << m,
            Class::Nan => (all_ones_exp << m) | 1,
            Class::Normal { exp, sig } => {
                let biased = (exp + self.format.bias()) as u128;
                debug_assert!(biased >= 1 && biased < all_ones_exp);
                let mant = sig & ((1u128 << m) - 1);
                (biased << m) | mant
            }
        }
    }

    /// Decodes a packed hardware encoding produced by [`LpFloat::to_bits`].
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not fit in `E + M` bits.
    pub fn from_bits(bits: u128, format: FloatFormat) -> Self {
        let m = format.mant_bits;
        assert!(
            format.packed_bits() == 128 || bits < (1u128 << format.packed_bits()),
            "encoding wider than the format"
        );
        let all_ones_exp = (1u128 << format.exp_bits) - 1;
        let biased = bits >> m;
        let mant = bits & ((1u128 << m) - 1);
        let class = if biased == 0 {
            Class::Zero
        } else if biased == all_ones_exp {
            if mant == 0 {
                Class::Inf
            } else {
                Class::Nan
            }
        } else {
            Class::Normal {
                exp: biased as i32 - format.bias(),
                sig: mant | (1u128 << m),
            }
        };
        LpFloat {
            format,
            sign: false,
            class,
        }
    }

    fn check_format(&self, other: &LpFloat) {
        assert_eq!(
            self.format, other.format,
            "floating-point operands must share a format"
        );
    }

    /// Adds two floats with a single round-to-nearest-even step
    /// (paper eq. 9: one `(1 ± ε)` factor per addition).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn add(&self, other: &LpFloat, flags: &mut Flags) -> LpFloat {
        self.check_format(other);
        let format = self.format;
        match (&self.class, &other.class) {
            (Class::Nan, _) | (_, Class::Nan) => return LpFloat::nan(format),
            (Class::Inf, Class::Inf) => {
                if self.sign != other.sign {
                    flags.invalid = true;
                    return LpFloat::nan(format);
                }
                return *self;
            }
            (Class::Inf, _) => return *self,
            (_, Class::Inf) => return *other,
            (Class::Zero, Class::Zero) => {
                // IEEE: +0 + -0 = +0 under round-to-nearest.
                return LpFloat {
                    format,
                    sign: self.sign && other.sign,
                    class: Class::Zero,
                };
            }
            (Class::Zero, _) => return *other,
            (_, Class::Zero) => return *self,
            _ => {}
        }
        let (ea, sa) = match self.class {
            Class::Normal { exp, sig } => (exp, sig),
            _ => unreachable!(),
        };
        let (eb, sb) = match other.class {
            Class::Normal { exp, sig } => (exp, sig),
            _ => unreachable!(),
        };
        // Order by magnitude: (e1, s1) >= (e2, s2).
        let (sign1, e1, s1, sign2, e2, s2) = if (ea, sa) >= (eb, sb) {
            (self.sign, ea, sa, other.sign, eb, sb)
        } else {
            (other.sign, eb, sb, self.sign, ea, sa)
        };
        let d = (e1 - e2) as u32;
        let m = format.mant_bits;
        if d >= m + 4 {
            // The smaller operand is below a quarter-ulp of the larger: the
            // rounded result is exactly the larger operand (see the module
            // docs for the proof sketch), but the operation is inexact.
            flags.inexact = true;
            return LpFloat {
                format,
                sign: sign1,
                class: Class::Normal { exp: e1, sig: s1 },
            };
        }
        // Exact path: w = s1 * 2^d ± s2 on the 2^(e2 - M) grid.
        let w1 = U256::from_u128(s1)
            .checked_shl(d)
            .expect("aligned significand exceeds 256 bits");
        let w2 = U256::from_u128(s2);
        if sign1 == sign2 {
            let w = w1
                .checked_add(w2)
                .expect("significand sum exceeds 256 bits");
            finalize(format, sign1, w, e2 - m as i32, false, flags)
        } else {
            let w = w1.checked_sub(w2).expect("magnitude ordering violated");
            if w.is_zero() {
                // Exact cancellation: +0 under round-to-nearest.
                return LpFloat::zero(format);
            }
            finalize(format, sign1, w, e2 - m as i32, false, flags)
        }
    }

    /// Subtracts `other` from `self` (implemented as `self + (-other)`).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn sub(&self, other: &LpFloat, flags: &mut Flags) -> LpFloat {
        self.add(&other.neg(), flags)
    }

    /// Multiplies two floats with a single round-to-nearest-even step
    /// (paper eq. 11: one `(1 ± ε)` factor per multiplication).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn mul(&self, other: &LpFloat, flags: &mut Flags) -> LpFloat {
        self.check_format(other);
        let format = self.format;
        let sign = self.sign ^ other.sign;
        match (&self.class, &other.class) {
            (Class::Nan, _) | (_, Class::Nan) => return LpFloat::nan(format),
            (Class::Inf, Class::Zero) | (Class::Zero, Class::Inf) => {
                flags.invalid = true;
                return LpFloat::nan(format);
            }
            (Class::Inf, _) | (_, Class::Inf) => {
                return LpFloat {
                    format,
                    sign,
                    class: Class::Inf,
                };
            }
            (Class::Zero, _) | (_, Class::Zero) => {
                return LpFloat {
                    format,
                    sign,
                    class: Class::Zero,
                };
            }
            _ => {}
        }
        let (ea, sa) = match self.class {
            Class::Normal { exp, sig } => (exp, sig),
            _ => unreachable!(),
        };
        let (eb, sb) = match other.class {
            Class::Normal { exp, sig } => (exp, sig),
            _ => unreachable!(),
        };
        let m = format.mant_bits as i32;
        let w = U256::widening_mul(sa, sb);
        // value = w * 2^(ea - M) * 2^(eb - M) = w * 2^(ea + eb - 2M).
        finalize(format, sign, w, ea + eb - 2 * m, false, flags)
    }

    /// Divides `self` by `other` with a single round-to-nearest-even step.
    ///
    /// Division is provided for completeness (conditional probabilities take
    /// a ratio of two AC outputs, paper §3.2.2); the generated hardware does
    /// not contain dividers.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn div(&self, other: &LpFloat, flags: &mut Flags) -> LpFloat {
        self.check_format(other);
        let format = self.format;
        let sign = self.sign ^ other.sign;
        match (&self.class, &other.class) {
            (Class::Nan, _) | (_, Class::Nan) => return LpFloat::nan(format),
            (Class::Inf, Class::Inf) | (Class::Zero, Class::Zero) => {
                flags.invalid = true;
                return LpFloat::nan(format);
            }
            (Class::Inf, _) => {
                return LpFloat {
                    format,
                    sign,
                    class: Class::Inf,
                };
            }
            (_, Class::Inf) | (Class::Zero, _) => {
                return LpFloat {
                    format,
                    sign,
                    class: Class::Zero,
                };
            }
            (_, Class::Zero) => {
                // Non-zero / zero: IEEE raises divide-by-zero; we fold it
                // into `invalid` and return infinity.
                flags.invalid = true;
                return LpFloat {
                    format,
                    sign,
                    class: Class::Inf,
                };
            }
            _ => {}
        }
        let (ea, sa) = match self.class {
            Class::Normal { exp, sig } => (exp, sig),
            _ => unreachable!(),
        };
        let (eb, sb) = match other.class {
            Class::Normal { exp, sig } => (exp, sig),
            _ => unreachable!(),
        };
        let m = format.mant_bits;
        // Long division producing M + 2 quotient bits plus a sticky bit:
        // q = floor(sa * 2^(M+2) / sb), sticky = remainder != 0.
        // sa / sb is in [2^-(M+1) ... actually (1/2, 2)), so q has M + 2 or
        // M + 3 significant bits.
        let mut rem: u128 = 0;
        let mut q: u128 = 0;
        let total = m + 2 + m + 1; // bits of sa << (M+2)
        for i in (0..total).rev() {
            rem <<= 1;
            if i >= m + 2 {
                // Feed bit (i - (M+2)) of sa.
                if (sa >> (i - (m + 2))) & 1 == 1 {
                    rem |= 1;
                }
            }
            q <<= 1;
            if rem >= sb {
                rem -= sb;
                q |= 1;
            }
        }
        let sticky = rem != 0;
        // value = q~ * 2^(ea - eb - (M+2)) with q~ = q + fraction(sticky).
        finalize(
            format,
            sign,
            U256::from_u128(q),
            ea - eb - (m as i32 + 2),
            sticky,
            flags,
        )
    }

    /// Returns the larger of two floats by numeric value (NaN propagates;
    /// used by max-product / MPE evaluation).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn max(&self, other: &LpFloat) -> LpFloat {
        self.check_format(other);
        if self.is_nan() || other.is_nan() {
            return LpFloat::nan(self.format);
        }
        match self.partial_cmp(other) {
            Some(std::cmp::Ordering::Less) => *other,
            _ => *self,
        }
    }

    /// Returns the smaller of two floats by numeric value (NaN propagates;
    /// used by min-value analysis).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn min(&self, other: &LpFloat) -> LpFloat {
        self.check_format(other);
        if self.is_nan() || other.is_nan() {
            return LpFloat::nan(self.format);
        }
        match self.partial_cmp(other) {
            Some(std::cmp::Ordering::Greater) => *other,
            _ => *self,
        }
    }

    /// Re-rounds this value into another format (one rounding step).
    pub fn convert(&self, target: FloatFormat, flags: &mut Flags) -> LpFloat {
        match self.class {
            Class::Zero => LpFloat {
                format: target,
                sign: self.sign,
                class: Class::Zero,
            },
            Class::Inf => LpFloat {
                format: target,
                sign: self.sign,
                class: Class::Inf,
            },
            Class::Nan => LpFloat::nan(target),
            Class::Normal { exp, sig } => finalize(
                target,
                self.sign,
                U256::from_u128(sig),
                exp - self.format.mant_bits as i32,
                false,
                flags,
            ),
        }
    }
}

/// Normalizes and rounds an exact intermediate `(-1)^sign * w * 2^scale`
/// into `format`, raising flags as needed. This is the single rounding step
/// shared by every operation.
fn finalize(
    format: FloatFormat,
    sign: bool,
    w: U256,
    scale: i32,
    extra_sticky: bool,
    flags: &mut Flags,
) -> LpFloat {
    debug_assert!(!w.is_zero(), "finalize requires a non-zero magnitude");
    let m = format.mant_bits;
    let h = w.bit_len() as i32 - 1; // position of the leading bit
                                    // Target significand: M + 1 bits; the leading bit of w has weight
                                    // 2^(h + scale), so the result exponent is h + scale.
    let mut exp = h + scale;
    let sig = if h as u32 > m {
        let shift = h as u32 - m;
        let (rounded, inexact) = w.round_shr_rne(shift, extra_sticky);
        flags.inexact |= inexact;
        if rounded == 1u128 << (m + 1) {
            // Rounding carried out of the significand: renormalize.
            exp += 1;
            1u128 << m
        } else {
            rounded
        }
    } else {
        // The target grid is at least as fine as w's grid: the value is
        // exactly representable. A sticky flag would be meaningless here
        // (it marks value below w's LSB, which is *coarser* than the
        // rounding position); all callers guarantee `h > m` when passing
        // one (division quotients always carry M+2 significant bits).
        debug_assert!(!extra_sticky, "sticky requires h > M");
        w.to_u128() << (m - h as u32)
    };
    if exp > format.max_exp() {
        flags.overflow = true;
        flags.inexact = true;
        return LpFloat {
            format,
            sign,
            class: Class::Inf,
        };
    }
    if exp < format.min_exp() {
        flags.underflow = true;
        flags.inexact = true;
        return LpFloat {
            format,
            sign,
            class: Class::Zero,
        };
    }
    LpFloat {
        format,
        sign,
        class: Class::Normal { exp, sig },
    }
}

impl PartialOrd for LpFloat {
    /// Compares by numeric value (exact, format-independent). NaN compares
    /// as `None`, like `f64`.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        if self.is_nan() || other.is_nan() {
            return None;
        }
        let key = |v: &LpFloat| -> i32 {
            // Coarse class ordering by sign and finiteness.
            match (&v.class, v.sign) {
                (Class::Inf, true) => -3,
                (Class::Normal { .. }, true) => -2,
                (Class::Zero, _) => 0,
                (Class::Normal { .. }, false) => 2,
                (Class::Inf, false) => 3,
                (Class::Nan, _) => unreachable!(),
            }
        };
        let (ka, kb) = (key(self), key(other));
        if ka != kb {
            return Some(ka.cmp(&kb));
        }
        // Same class; compare magnitudes of normals exactly.
        if let (Class::Normal { exp: ea, sig: sa }, Class::Normal { exp: eb, sig: sb }) =
            (&self.class, &other.class)
        {
            let ma = self.format.mant_bits;
            let mb = other.format.mant_bits;
            let mag = if ea != eb {
                ea.cmp(eb)
            } else {
                // Align significands to a common width for an exact compare.
                let width = ma.max(mb);
                let va = U256::from_u128(*sa).checked_shl(width - ma)?;
                let vb = U256::from_u128(*sb).checked_shl(width - mb)?;
                va.cmp(&vb)
            };
            return Some(if self.sign { mag.reverse() } else { mag });
        }
        Some(Ordering::Equal)
    }
}

impl std::fmt::Display for LpFloat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(e: u32, m: u32) -> FloatFormat {
        FloatFormat::new(e, m).unwrap()
    }

    fn f(x: f64, format: FloatFormat) -> LpFloat {
        let mut flags = Flags::default();
        LpFloat::from_f64(x, format, &mut flags)
    }

    #[test]
    fn format_validation() {
        assert!(FloatFormat::new(1, 10).is_err());
        assert!(FloatFormat::new(21, 10).is_err());
        assert!(FloatFormat::new(8, 0).is_err());
        assert!(FloatFormat::new(8, 119).is_err());
        assert!(FloatFormat::new(8, 23).is_ok());
        assert!(FloatFormat::new(20, 107).is_ok());
        assert!(FloatFormat::new(20, 108).is_err()); // packed > 127
    }

    #[test]
    fn format_derived_quantities() {
        let s = FloatFormat::ieee_single();
        assert_eq!(s.bias(), 127);
        assert_eq!(s.min_exp(), -126);
        assert_eq!(s.max_exp(), 127);
        assert_eq!(s.min_positive(), f64::from(f32::MIN_POSITIVE));
        assert_eq!(s.max_finite(), f64::from(f32::MAX));
        let d = FloatFormat::ieee_double();
        assert_eq!(d.min_positive(), f64::MIN_POSITIVE);
        assert_eq!(d.max_finite(), f64::MAX);
    }

    #[test]
    fn exact_small_values_roundtrip() {
        let format = fmt(5, 4);
        for x in [1.0, 0.5, 0.75, 1.5, 2.0, 3.0, 0.0625] {
            let mut flags = Flags::default();
            let v = LpFloat::from_f64(x, format, &mut flags);
            assert_eq!(v.to_f64(), x, "x={x}");
            assert!(!flags.inexact, "x={x} should be exact");
        }
    }

    #[test]
    fn conversion_rounds_to_nearest_even() {
        // M = 2: significands 1.00, 1.01, 1.10, 1.11.
        let format = fmt(5, 2);
        // 1.125 is halfway between 1.0 (even mantissa .00) and 1.25 (.01):
        // ties to even -> 1.0.
        assert_eq!(f(1.125, format).to_f64(), 1.0);
        // 1.375 is halfway between 1.25 (.01) and 1.5 (.10): ties to even
        // -> 1.5.
        assert_eq!(f(1.375, format).to_f64(), 1.5);
        // Just above halfway rounds up.
        assert_eq!(f(1.126, format).to_f64(), 1.25);
    }

    #[test]
    fn conversion_relative_error_within_epsilon() {
        let format = fmt(8, 11);
        let eps = format.epsilon();
        let mut x = 1e-20;
        while x < 1e20 {
            let got = f(x, format).to_f64();
            let rel = ((got - x) / x).abs();
            assert!(rel <= eps, "x={x} got={got} rel={rel} eps={eps}");
            x *= 3.7;
        }
    }

    #[test]
    fn conversion_carry_renormalizes() {
        // M = 2: 1.984 rounds up to 2.0 (carry into the exponent).
        let format = fmt(5, 2);
        assert_eq!(f(1.99, format).to_f64(), 2.0);
    }

    #[test]
    fn overflow_and_underflow_flags() {
        let format = fmt(4, 4); // bias 7, range ~ [2^-6, ~255]
        let mut flags = Flags::default();
        let v = LpFloat::from_f64(1e9, format, &mut flags);
        assert!(v.is_infinite());
        assert!(flags.overflow);
        flags.clear();
        let v = LpFloat::from_f64(1e-9, format, &mut flags);
        assert!(v.is_zero());
        assert!(flags.underflow);
    }

    #[test]
    fn addition_exact_cases() {
        let format = fmt(6, 6);
        let mut flags = Flags::default();
        let a = f(1.5, format);
        let b = f(0.25, format);
        assert_eq!(a.add(&b, &mut flags).to_f64(), 1.75);
        assert!(!flags.inexact);
    }

    #[test]
    fn addition_far_apart_returns_larger() {
        let format = fmt(8, 8);
        let mut flags = Flags::default();
        let a = f(1.0, format);
        let tiny = f(2e-10, format);
        let sum = a.add(&tiny, &mut flags);
        assert_eq!(sum.to_f64(), 1.0);
        assert!(flags.inexact);
    }

    #[test]
    fn subtraction_with_cancellation_is_exact() {
        // Sterbenz: if a/2 <= b <= 2a, a - b is exact.
        let format = fmt(6, 5);
        let mut flags = Flags::default();
        let a = f(1.75, format);
        let b = f(1.5, format);
        let d = a.sub(&b, &mut flags);
        assert_eq!(d.to_f64(), 0.25);
        assert!(!flags.inexact);
    }

    #[test]
    fn subtraction_to_zero() {
        let format = fmt(6, 5);
        let mut flags = Flags::default();
        let a = f(1.25, format);
        let d = a.sub(&a, &mut flags);
        assert!(d.is_zero());
        assert!(!d.sign(), "exact cancellation gives +0");
    }

    #[test]
    fn multiplication_exact_powers_of_two() {
        let format = fmt(8, 4);
        let mut flags = Flags::default();
        let a = f(0.5, format);
        let b = f(8.0, format);
        assert_eq!(a.mul(&b, &mut flags).to_f64(), 4.0);
        assert!(!flags.inexact);
    }

    #[test]
    fn multiplication_rounds_once() {
        let format = fmt(8, 23);
        let mut flags = Flags::default();
        let a = f(1.1, format);
        let b = f(1.3, format);
        let p = a.mul(&b, &mut flags);
        let expected = (1.1f32 * 1.3f32) as f64; // hardware single
        assert_eq!(
            p.to_f64(),
            (f32::from_bits((1.1f32).to_bits()) * 1.3f32) as f64
        );
        assert_eq!(p.to_f64(), expected);
    }

    #[test]
    fn ieee_single_matches_f32_on_simple_values() {
        let format = FloatFormat::ieee_single();
        let cases: &[(f64, f64)] = &[
            (0.1, 0.2),
            (1.0 / 3.0, 3.0),
            (123.456, 0.001),
            (1e10, 1e-10),
            (5.5, 5.5),
        ];
        for &(x, y) in cases {
            let mut flags = Flags::default();
            let a = LpFloat::from_f64(x, format, &mut flags);
            let b = LpFloat::from_f64(y, format, &mut flags);
            let (xf, yf) = (x as f32, y as f32);
            assert_eq!(a.to_f64(), xf as f64, "conversion {x}");
            assert_eq!(
                a.add(&b, &mut flags).to_f64(),
                (xf + yf) as f64,
                "add {x}+{y}"
            );
            assert_eq!(
                a.mul(&b, &mut flags).to_f64(),
                (xf * yf) as f64,
                "mul {x}*{y}"
            );
            assert_eq!(
                a.div(&b, &mut flags).to_f64(),
                (xf / yf) as f64,
                "div {x}/{y}"
            );
            assert_eq!(
                a.sub(&b, &mut flags).to_f64(),
                (xf - yf) as f64,
                "sub {x}-{y}"
            );
        }
    }

    #[test]
    fn division_rounds_correctly() {
        let format = fmt(8, 23);
        let mut flags = Flags::default();
        let a = f(1.0, format);
        let b = f(3.0, format);
        let q = a.div(&b, &mut flags);
        assert_eq!(q.to_f64(), (1.0f32 / 3.0f32) as f64);
        assert!(flags.inexact);
    }

    #[test]
    fn special_value_propagation() {
        let format = fmt(6, 6);
        let mut flags = Flags::default();
        let inf = LpFloat::infinity(format);
        let one = LpFloat::one(format);
        let zero = LpFloat::zero(format);
        assert!(inf.add(&one, &mut flags).is_infinite());
        assert!(inf.mul(&zero, &mut flags).is_nan());
        assert!(flags.invalid);
        flags.clear();
        assert!(inf.sub(&inf, &mut flags).is_nan());
        assert!(flags.invalid);
        flags.clear();
        assert!(one.div(&zero, &mut flags).is_infinite());
        assert!(flags.invalid);
        assert!(zero.add(&one, &mut flags).to_f64() == 1.0);
        assert!(LpFloat::nan(format).mul(&one, &mut flags).is_nan());
    }

    #[test]
    fn packed_bits_roundtrip() {
        let format = fmt(6, 9);
        for x in [0.0, 1.0, 0.3, 1e-4, 250.0] {
            let v = f(x, format);
            let packed = v.to_bits();
            let back = LpFloat::from_bits(packed, format);
            assert_eq!(back, v, "x={x}");
        }
        let inf = LpFloat::infinity(format);
        assert_eq!(LpFloat::from_bits(inf.to_bits(), format), inf);
        assert!(LpFloat::from_bits(LpFloat::nan(format).to_bits(), format).is_nan());
    }

    #[test]
    fn packed_bits_match_ieee_single() {
        let format = FloatFormat::ieee_single();
        for x in [1.0f32, 0.5, std::f32::consts::PI, 1e-20, 2.5e20] {
            let v = f(x as f64, format);
            // Our packing has no sign bit; positive f32 bit patterns match.
            assert_eq!(v.to_bits() as u32, x.to_bits(), "x={x}");
        }
    }

    #[test]
    fn comparison_by_value() {
        let format = fmt(6, 6);
        assert!(f(1.0, format) < f(2.0, format));
        assert!(f(-1.0, format) < f(0.5, format));
        assert!(f(-1.0, format) > f(-2.0, format));
        assert!(f(0.0, format) < f(0.5, format));
        assert_eq!(
            f(1.5, format).partial_cmp(&f(1.5, format)),
            Some(std::cmp::Ordering::Equal)
        );
        assert!(f(f64::NAN, format).partial_cmp(&f(1.0, format)).is_none());
    }

    #[test]
    fn cross_format_comparison_is_exact() {
        let a = f(1.5, fmt(6, 3));
        let b = f(1.5, fmt(8, 20));
        assert_eq!(a.partial_cmp(&b), Some(std::cmp::Ordering::Equal));
        let c = f(1.25, fmt(8, 20));
        assert!(a > c);
    }

    #[test]
    fn min_max_semantics() {
        let format = fmt(6, 6);
        let a = f(0.25, format);
        let b = f(0.5, format);
        assert_eq!(a.max(&b), b);
        assert_eq!(a.min(&b), a);
        assert!(a.max(&LpFloat::nan(format)).is_nan());
    }

    #[test]
    fn convert_between_formats() {
        let wide = fmt(8, 20);
        let narrow = fmt(8, 4);
        let mut flags = Flags::default();
        let v = LpFloat::from_f64(1.23456, wide, &mut flags);
        let n = v.convert(narrow, &mut flags);
        assert_eq!(n.format(), narrow);
        let rel = ((n.to_f64() - v.to_f64()) / v.to_f64()).abs();
        assert!(rel <= narrow.epsilon());
    }

    #[test]
    fn one_and_extremes() {
        let format = fmt(5, 7);
        assert_eq!(LpFloat::one(format).to_f64(), 1.0);
        let max = LpFloat::max_finite(format);
        let min = LpFloat::min_positive(format);
        assert_eq!(max.to_f64(), format.max_finite());
        assert_eq!(min.to_f64(), format.min_positive());
    }

    #[test]
    fn subnormal_f64_inputs_are_normalized() {
        let format = fmt(20, 52);
        let mut flags = Flags::default();
        let tiny = f64::MIN_POSITIVE / 4.0; // subnormal f64
        let v = LpFloat::from_f64(tiny, format, &mut flags);
        assert_eq!(v.to_f64(), tiny);
        assert!(!flags.inexact);
    }

    #[test]
    #[should_panic(expected = "share a format")]
    fn mismatched_formats_panic() {
        let mut flags = Flags::default();
        let a = f(1.0, fmt(6, 6));
        let b = f(1.0, fmt(6, 7));
        let _ = a.add(&b, &mut flags);
    }
}
