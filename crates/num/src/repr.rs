//! The representation choice: fixed point or floating point.

use crate::fixed::FixedFormat;
use crate::float::FloatFormat;

/// One of the two candidate number representations ProbLP chooses between
/// (paper Fig. 2, "Selected representation").
///
/// # Examples
///
/// ```
/// use problp_num::{FixedFormat, Representation};
///
/// let r = Representation::Fixed(FixedFormat::new(1, 15)?);
/// assert_eq!(r.word_bits(), 16);
/// assert!(r.is_fixed());
/// assert_eq!(r.to_string(), "fx(I=1, F=15)");
/// # Ok::<(), problp_num::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Representation {
    /// Unsigned fixed point with `(I, F)` bits.
    Fixed(FixedFormat),
    /// Normalized floating point with `(E, M)` bits.
    Float(FloatFormat),
}

impl Representation {
    /// The datapath word width in bits: `I + F` for fixed point, `E + M`
    /// for floating point (ProbLP datapaths carry no sign bit).
    pub fn word_bits(&self) -> u32 {
        match self {
            Representation::Fixed(f) => f.total_bits(),
            Representation::Float(f) => f.packed_bits(),
        }
    }

    /// Returns `true` for a fixed-point representation.
    pub const fn is_fixed(&self) -> bool {
        matches!(self, Representation::Fixed(_))
    }

    /// Returns `true` for a floating-point representation.
    pub const fn is_float(&self) -> bool {
        matches!(self, Representation::Float(_))
    }

    /// The fixed-point format, if this is a fixed-point representation.
    pub const fn as_fixed(&self) -> Option<FixedFormat> {
        match self {
            Representation::Fixed(f) => Some(*f),
            Representation::Float(_) => None,
        }
    }

    /// The floating-point format, if this is a floating-point
    /// representation.
    pub const fn as_float(&self) -> Option<FloatFormat> {
        match self {
            Representation::Float(f) => Some(*f),
            Representation::Fixed(_) => None,
        }
    }
}

impl From<FixedFormat> for Representation {
    fn from(f: FixedFormat) -> Self {
        Representation::Fixed(f)
    }
}

impl From<FloatFormat> for Representation {
    fn from(f: FloatFormat) -> Self {
        Representation::Float(f)
    }
}

impl std::fmt::Display for Representation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Representation::Fixed(fmt) => write!(f, "{fmt}"),
            Representation::Float(fmt) => write!(f, "{fmt}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let fx = Representation::Fixed(FixedFormat::new(1, 15).unwrap());
        let fl = Representation::Float(FloatFormat::new(8, 13).unwrap());
        assert!(fx.is_fixed() && !fx.is_float());
        assert!(fl.is_float() && !fl.is_fixed());
        assert_eq!(fx.word_bits(), 16);
        assert_eq!(fl.word_bits(), 21);
        assert!(fx.as_fixed().is_some() && fx.as_float().is_none());
        assert!(fl.as_float().is_some() && fl.as_fixed().is_none());
    }

    #[test]
    fn conversions() {
        let f = FixedFormat::new(1, 7).unwrap();
        let r: Representation = f.into();
        assert_eq!(r.as_fixed(), Some(f));
    }
}
