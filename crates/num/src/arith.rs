//! The [`Arith`] abstraction: a pluggable arithmetic context.
//!
//! Arithmetic-circuit evaluation is generic over the number system it runs
//! in. An [`Arith`] context owns the format and the sticky [`Flags`]
//! accumulated across operations, so evaluating an AC under exact `f64`,
//! low-precision fixed point, or low-precision floating point is the same
//! code path with a different context.

use crate::fixed::{Fixed, FixedFormat, FixedRounding};
use crate::flags::Flags;
use crate::float::{FloatFormat, LpFloat};

/// A number system in which an arithmetic circuit can be evaluated.
///
/// Implementations accumulate status [`Flags`] internally; call
/// [`Arith::flags`] after an evaluation to check that no overflow or
/// underflow invalidated ProbLP's error bounds (paper §3.1.4).
///
/// # Examples
///
/// ```
/// use problp_num::{Arith, FixedArith, FixedFormat};
///
/// let mut ctx = FixedArith::new(FixedFormat::new(1, 8)?);
/// let half = ctx.from_f64(0.5);
/// let quarter = ctx.from_f64(0.25);
/// let sum = ctx.add(&half, &quarter);
/// assert_eq!(ctx.to_f64(&sum), 0.75);
/// assert!(!ctx.flags().any());
/// # Ok::<(), problp_num::FormatError>(())
/// ```
pub trait Arith {
    /// The value type of this number system.
    type Value: Clone + std::fmt::Debug;

    /// Converts a real value into this number system (rounding as needed).
    ///
    /// Takes `&mut self` because conversions can raise flags on the
    /// context (clippy's `from_*`-without-self convention targets
    /// constructors, which this is not).
    #[allow(clippy::wrong_self_convention)]
    fn from_f64(&mut self, x: f64) -> Self::Value;

    /// Converts a value back to `f64` for inspection.
    fn to_f64(&self, v: &Self::Value) -> f64;

    /// The additive identity.
    fn zero(&mut self) -> Self::Value;

    /// The multiplicative identity.
    fn one(&mut self) -> Self::Value;

    /// Adds two values.
    fn add(&mut self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Multiplies two values.
    fn mul(&mut self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// The larger of two values (max-product / MPE evaluation).
    fn max(&mut self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// The smaller of two values (min-value analysis).
    fn min(&mut self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// The sticky flags accumulated so far.
    fn flags(&self) -> Flags;

    /// Clears the accumulated flags.
    fn clear_flags(&mut self);

    /// Merges externally-computed sticky flags into this context.
    ///
    /// Vectorized kernel implementations (`problp-engine`'s lane-chunked
    /// fast paths) accumulate per-chunk flags out of band and fold them
    /// back through this hook. Contexts that never raise flags keep the
    /// default no-op.
    fn merge_flags(&mut self, flags: Flags) {
        let _ = flags;
    }
}

/// Exact double-precision arithmetic: the reference ("ideal") evaluation.
///
/// `f64` stands in for exact real arithmetic; with probabilities and AC
/// depths in the benchmarks' range its 2^-53 rounding is negligible next to
/// the low-precision errors under study.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct F64Arith;

impl F64Arith {
    /// Creates the reference context.
    pub fn new() -> Self {
        F64Arith
    }
}

impl Arith for F64Arith {
    type Value = f64;

    fn from_f64(&mut self, x: f64) -> f64 {
        x
    }

    fn to_f64(&self, v: &f64) -> f64 {
        *v
    }

    fn zero(&mut self) -> f64 {
        0.0
    }

    fn one(&mut self) -> f64 {
        1.0
    }

    fn add(&mut self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn mul(&mut self, a: &f64, b: &f64) -> f64 {
        a * b
    }

    fn max(&mut self, a: &f64, b: &f64) -> f64 {
        a.max(*b)
    }

    fn min(&mut self, a: &f64, b: &f64) -> f64 {
        a.min(*b)
    }

    fn flags(&self) -> Flags {
        Flags::new()
    }

    fn clear_flags(&mut self) {}
}

/// Low-precision fixed-point arithmetic context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedArith {
    format: FixedFormat,
    rounding: FixedRounding,
    flags: Flags,
}

impl FixedArith {
    /// Creates a fixed-point context for the given format with the
    /// default half-up multiplier rounding.
    pub fn new(format: FixedFormat) -> Self {
        Self::with_rounding(format, FixedRounding::HalfUp)
    }

    /// Creates a fixed-point context with an explicit multiplier rounding
    /// mode (the `DESIGN.md` rounding ablation).
    pub fn with_rounding(format: FixedFormat, rounding: FixedRounding) -> Self {
        FixedArith {
            format,
            rounding,
            flags: Flags::new(),
        }
    }

    /// The fixed-point format of this context.
    pub fn format(&self) -> FixedFormat {
        self.format
    }

    /// The multiplier rounding mode of this context.
    pub fn rounding(&self) -> FixedRounding {
        self.rounding
    }
}

impl Arith for FixedArith {
    type Value = Fixed;

    fn from_f64(&mut self, x: f64) -> Fixed {
        Fixed::from_f64(x, self.format, &mut self.flags)
    }

    fn to_f64(&self, v: &Fixed) -> f64 {
        v.to_f64()
    }

    fn zero(&mut self) -> Fixed {
        Fixed::zero(self.format)
    }

    fn one(&mut self) -> Fixed {
        Fixed::one(self.format, &mut self.flags)
    }

    fn add(&mut self, a: &Fixed, b: &Fixed) -> Fixed {
        a.add(b, &mut self.flags)
    }

    fn mul(&mut self, a: &Fixed, b: &Fixed) -> Fixed {
        a.mul_with(b, self.rounding, &mut self.flags)
    }

    fn max(&mut self, a: &Fixed, b: &Fixed) -> Fixed {
        a.max(b)
    }

    fn min(&mut self, a: &Fixed, b: &Fixed) -> Fixed {
        a.min(b)
    }

    fn flags(&self) -> Flags {
        self.flags
    }

    fn clear_flags(&mut self) {
        self.flags.clear();
    }

    fn merge_flags(&mut self, flags: Flags) {
        self.flags.merge(flags);
    }
}

/// Low-precision floating-point arithmetic context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FloatArith {
    format: FloatFormat,
    flags: Flags,
}

impl FloatArith {
    /// Creates a floating-point context for the given format.
    pub fn new(format: FloatFormat) -> Self {
        FloatArith {
            format,
            flags: Flags::new(),
        }
    }

    /// The floating-point format of this context.
    pub fn format(&self) -> FloatFormat {
        self.format
    }
}

impl Arith for FloatArith {
    type Value = LpFloat;

    fn from_f64(&mut self, x: f64) -> LpFloat {
        LpFloat::from_f64(x, self.format, &mut self.flags)
    }

    fn to_f64(&self, v: &LpFloat) -> f64 {
        v.to_f64()
    }

    fn zero(&mut self) -> LpFloat {
        LpFloat::zero(self.format)
    }

    fn one(&mut self) -> LpFloat {
        LpFloat::one(self.format)
    }

    fn add(&mut self, a: &LpFloat, b: &LpFloat) -> LpFloat {
        a.add(b, &mut self.flags)
    }

    fn mul(&mut self, a: &LpFloat, b: &LpFloat) -> LpFloat {
        a.mul(b, &mut self.flags)
    }

    fn max(&mut self, a: &LpFloat, b: &LpFloat) -> LpFloat {
        a.max(b)
    }

    fn min(&mut self, a: &LpFloat, b: &LpFloat) -> LpFloat {
        a.min(b)
    }

    fn flags(&self) -> Flags {
        self.flags
    }

    fn clear_flags(&mut self) {
        self.flags.clear();
    }

    fn merge_flags(&mut self, flags: Flags) {
        self.flags.merge(flags);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<A: Arith>(ctx: &mut A) -> (f64, f64, f64) {
        let a = ctx.from_f64(0.5);
        let b = ctx.from_f64(0.25);
        let s = ctx.add(&a, &b);
        let p = ctx.mul(&a, &b);
        let m = ctx.max(&a, &b);
        (ctx.to_f64(&s), ctx.to_f64(&p), ctx.to_f64(&m))
    }

    #[test]
    fn all_contexts_agree_on_exact_values() {
        let mut f64ctx = F64Arith::new();
        let mut fx = FixedArith::new(FixedFormat::new(1, 8).unwrap());
        let mut fl = FloatArith::new(FloatFormat::new(6, 8).unwrap());
        let expected = (0.75, 0.125, 0.5);
        assert_eq!(exercise(&mut f64ctx), expected);
        assert_eq!(exercise(&mut fx), expected);
        assert_eq!(exercise(&mut fl), expected);
        assert!(!fx.flags().any());
        assert!(!fl.flags().any());
    }

    #[test]
    fn identities() {
        let mut fx = FixedArith::new(FixedFormat::new(1, 8).unwrap());
        let one = fx.one();
        let zero = fx.zero();
        let x = fx.from_f64(0.625);
        let via_one = fx.mul(&x, &one);
        let via_zero = fx.add(&x, &zero);
        assert_eq!(fx.to_f64(&via_one), 0.625);
        assert_eq!(fx.to_f64(&via_zero), 0.625);

        let mut fl = FloatArith::new(FloatFormat::new(6, 8).unwrap());
        let one = fl.one();
        let x = fl.from_f64(0.625);
        let p = fl.mul(&x, &one);
        assert_eq!(fl.to_f64(&p), 0.625);
    }

    #[test]
    fn flags_accumulate_and_clear() {
        let mut fx = FixedArith::new(FixedFormat::new(1, 4).unwrap());
        let big = fx.from_f64(1.9);
        let _ = fx.add(&big, &big);
        assert!(fx.flags().overflow);
        fx.clear_flags();
        assert!(!fx.flags().any());
    }

    #[test]
    fn min_matches_value_order() {
        let mut fl = FloatArith::new(FloatFormat::new(6, 8).unwrap());
        let a = fl.from_f64(0.125);
        let b = fl.from_f64(0.5);
        let m = fl.min(&a, &b);
        assert_eq!(fl.to_f64(&m), 0.125);
    }
}
