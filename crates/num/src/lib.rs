//! # problp-num — low-precision arithmetic for ProbLP
//!
//! This crate is the numeric substrate of the ProbLP framework
//! (Shah et al., *ProbLP: A framework for low-precision probabilistic
//! inference*, DAC 2019). It provides software implementations of the two
//! reduced-precision representations the framework chooses between:
//!
//! * [`Fixed`] / [`FixedFormat`] — unsigned fixed point with `I` integer and
//!   `F` fraction bits; exact addition, half-up-rounded multiplication
//!   (the `(p + half) >> F` hardware idiom), satisfying the paper's
//!   `|Δ| <= 2^-(F+1)` per-operation error model.
//! * [`LpFloat`] / [`FloatFormat`] — normalized floating point with `E`
//!   exponent and `M` mantissa bits; round-to-nearest-even everywhere,
//!   satisfying the `(1 ± ε)` per-operation model with `ε = 2^-(M+1)`.
//!   With IEEE widths it matches hardware `f32`/`f64` bit-for-bit on
//!   normal values.
//!
//! Both carry sticky status [`Flags`]; the framework sizes integer and
//! exponent bits so that no flag other than `inexact` is ever raised, and
//! the test-suite asserts this.
//!
//! The [`Arith`] trait abstracts over the number systems so that arithmetic
//! circuits evaluate identically under exact `f64` ([`F64Arith`]),
//! fixed point ([`FixedArith`]) or floating point ([`FloatArith`]).
//!
//! # Examples
//!
//! Quantify the error of evaluating `0.3 * 0.7 + 0.2` in an 8-fraction-bit
//! fixed-point datapath:
//!
//! ```
//! use problp_num::{Arith, F64Arith, FixedArith, FixedFormat};
//!
//! let mut exact = F64Arith::new();
//! let mut lp = FixedArith::new(FixedFormat::new(1, 8)?);
//!
//! fn eval<A: Arith>(ctx: &mut A) -> f64 {
//!     let a = ctx.from_f64(0.3);
//!     let b = ctx.from_f64(0.7);
//!     let c = ctx.from_f64(0.2);
//!     let p = ctx.mul(&a, &b);
//!     let s = ctx.add(&p, &c);
//!     ctx.to_f64(&s)
//! }
//!
//! let err = (eval(&mut exact) - eval(&mut lp)).abs();
//! assert!(err < 0.01);
//! assert!(!lp.flags().range_violation());
//! # Ok::<(), problp_num::FormatError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod error;
mod fixed;
mod flags;
mod float;
mod repr;
mod spec;
mod wide;

pub use arith::{Arith, F64Arith, FixedArith, FloatArith};
pub use error::FormatError;
pub use fixed::{Fixed, FixedFormat, FixedRounding, MAX_FIXED_WIDTH};
pub use flags::Flags;
pub use float::{FloatFormat, LpFloat, MAX_EXP_BITS, MAX_MANT_BITS, MIN_EXP_BITS, MIN_MANT_BITS};
pub use repr::Representation;
pub use spec::ArithSpec;
pub use wide::U256;
