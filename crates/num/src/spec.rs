//! [`ArithSpec`]: the workspace-wide name of one concrete arithmetic.

use crate::fixed::FixedFormat;
use crate::float::FloatFormat;

/// One concrete arithmetic a tool runs in, by name.
///
/// Unlike [`crate::Representation`] this includes the exact `f64`
/// reference arithmetic: differential harnesses and static analyses must
/// speak about full precision too, not only the low-precision formats the
/// framework sizes. The textual grammar (`f64`, `fixed:I.F`,
/// `float:E.M`) is shared by the CLI's `--repr` flags, the conformance
/// reports and the `problp verify` verdict tables.
///
/// # Examples
///
/// ```
/// use problp_num::ArithSpec;
///
/// let spec = ArithSpec::parse("fixed:2.14").unwrap();
/// assert_eq!(spec.to_string(), "fixed:2.14");
/// assert!(ArithSpec::parse("decimal:1.2").is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithSpec {
    /// Exact double precision ([`crate::F64Arith`]).
    F64,
    /// Low-precision fixed point in the given format.
    Fixed(FixedFormat),
    /// Low-precision floating point in the given format.
    Float(FloatFormat),
}

impl ArithSpec {
    /// Parses `f64`, `fixed:I.F` or `float:E.M` (the CLI's `--repr`
    /// grammar), e.g. `fixed:2.14` or `float:8.13`.
    pub fn parse(spec: &str) -> Option<ArithSpec> {
        if spec == "f64" {
            return Some(ArithSpec::F64);
        }
        let (kind, fmt) = spec.split_once(':')?;
        let (a, b) = fmt.split_once('.')?;
        let a: u32 = a.parse().ok()?;
        let b: u32 = b.parse().ok()?;
        match kind {
            "fixed" => FixedFormat::new(a, b).ok().map(ArithSpec::Fixed),
            "float" => FloatFormat::new(a, b).ok().map(ArithSpec::Float),
            _ => None,
        }
    }

    /// The largest finite value the arithmetic can represent.
    pub fn max_value(&self) -> f64 {
        match self {
            ArithSpec::F64 => f64::MAX,
            ArithSpec::Fixed(f) => f.max_value(),
            ArithSpec::Float(f) => f.max_finite(),
        }
    }

    /// The smallest positive value the arithmetic can represent —
    /// [`FixedFormat::ulp`] for fixed point, [`FloatFormat::min_positive`]
    /// for the (subnormal-free) low-precision floats.
    pub fn min_positive(&self) -> f64 {
        match self {
            ArithSpec::F64 => f64::MIN_POSITIVE,
            ArithSpec::Fixed(f) => f.ulp(),
            ArithSpec::Float(f) => f.min_positive(),
        }
    }

    /// Narrows the spec to a [`crate::Representation`] (the structural
    /// tag hardware emission uses); `None` for the `f64` reference, which
    /// has no low-precision hardware representation.
    pub fn representation(&self) -> Option<crate::Representation> {
        match self {
            ArithSpec::F64 => None,
            ArithSpec::Fixed(f) => Some(crate::Representation::Fixed(*f)),
            ArithSpec::Float(f) => Some(crate::Representation::Float(*f)),
        }
    }
}

impl std::fmt::Display for ArithSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArithSpec::F64 => write!(f, "f64"),
            ArithSpec::Fixed(fmt) => write!(f, "fixed:{}.{}", fmt.int_bits(), fmt.frac_bits()),
            ArithSpec::Float(fmt) => write!(f, "float:{}.{}", fmt.exp_bits(), fmt.mant_bits()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_parse() {
        for spec in ["f64", "fixed:2.14", "float:8.13"] {
            let parsed = ArithSpec::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
        }
        assert_eq!(ArithSpec::parse("fixed:2"), None);
        assert_eq!(ArithSpec::parse("decimal:1.2"), None);
        assert_eq!(ArithSpec::parse("fixed:0.0"), None, "zero-width format");
    }

    #[test]
    fn bounds_match_the_formats() {
        let fixed = ArithSpec::parse("fixed:2.14").unwrap();
        assert_eq!(fixed.max_value(), 4.0 - (0.5f64).powi(14));
        assert_eq!(fixed.min_positive(), (0.5f64).powi(14));
        let float = ArithSpec::parse("float:8.13").unwrap();
        assert!(float.max_value() > 1e30);
        assert!(float.min_positive() < 1e-30);
        assert_eq!(ArithSpec::F64.max_value(), f64::MAX);
    }

    #[test]
    fn representation_narrows_except_f64() {
        assert!(ArithSpec::F64.representation().is_none());
        assert!(ArithSpec::parse("fixed:2.14")
            .unwrap()
            .representation()
            .is_some());
    }
}
