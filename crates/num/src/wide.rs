//! Minimal 256-bit unsigned integer arithmetic.
//!
//! Low-precision operators are implemented *exactly* (full-width
//! intermediate results) followed by a single rounding step. The widest
//! intermediate needed anywhere in ProbLP is the product of two 128-bit
//! significands, so a small, purpose-built 256-bit integer is sufficient and
//! keeps the crate dependency-free.
//!
//! [`U256`] intentionally implements only the operations the arithmetic
//! kernels need: widening multiplication, shifts with sticky tracking,
//! addition/subtraction, bit-length queries and round-to-nearest-even
//! truncation.

/// An unsigned 256-bit integer, stored as two 128-bit limbs.
///
/// # Examples
///
/// ```
/// use problp_num::U256;
///
/// let p = U256::widening_mul(u128::MAX, 2);
/// assert_eq!(p, U256::new(1, u128::MAX - 1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct U256 {
    hi: u128,
    lo: u128,
}

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256 { hi: 0, lo: 0 };

    /// Creates a 256-bit integer from its high and low 128-bit limbs.
    #[inline]
    pub const fn new(hi: u128, lo: u128) -> Self {
        U256 { hi, lo }
    }

    /// Creates a 256-bit integer from a 128-bit value.
    #[inline]
    pub const fn from_u128(lo: u128) -> Self {
        U256 { hi: 0, lo }
    }

    /// Returns the high 128-bit limb.
    #[inline]
    pub const fn high(self) -> u128 {
        self.hi
    }

    /// Returns the low 128-bit limb.
    #[inline]
    pub const fn low(self) -> u128 {
        self.lo
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.hi == 0 && self.lo == 0
    }

    /// Returns the number of bits required to represent the value
    /// (0 for zero).
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_num::U256;
    ///
    /// assert_eq!(U256::ZERO.bit_len(), 0);
    /// assert_eq!(U256::from_u128(1).bit_len(), 1);
    /// assert_eq!(U256::new(1, 0).bit_len(), 129);
    /// ```
    #[inline]
    pub const fn bit_len(self) -> u32 {
        if self.hi != 0 {
            256 - self.hi.leading_zeros()
        } else {
            128 - self.lo.leading_zeros()
        }
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    #[inline]
    pub const fn bit(self, i: u32) -> bool {
        assert!(i < 256, "bit index out of range");
        if i < 128 {
            (self.lo >> i) & 1 == 1
        } else {
            (self.hi >> (i - 128)) & 1 == 1
        }
    }

    /// Full 256-bit product of two 128-bit integers.
    pub fn widening_mul(a: u128, b: u128) -> U256 {
        const MASK: u128 = (1u128 << 64) - 1;
        let (a_hi, a_lo) = (a >> 64, a & MASK);
        let (b_hi, b_lo) = (b >> 64, b & MASK);

        let ll = a_lo * b_lo; // weight 2^0
        let lh = a_lo * b_hi; // weight 2^64
        let hl = a_hi * b_lo; // weight 2^64
        let hh = a_hi * b_hi; // weight 2^128

        let (mid, mid_carry) = lh.overflowing_add(hl);
        let (lo, lo_carry) = ll.overflowing_add(mid << 64);
        let hi = hh
            .wrapping_add(mid >> 64)
            .wrapping_add((mid_carry as u128) << 64)
            .wrapping_add(lo_carry as u128);
        U256 { hi, lo }
    }

    /// Checked addition; `None` on overflow past 256 bits.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        let (lo, carry) = self.lo.overflowing_add(rhs.lo);
        let (hi, c1) = self.hi.overflowing_add(rhs.hi);
        let (hi, c2) = hi.overflowing_add(carry as u128);
        if c1 || c2 {
            None
        } else {
            Some(U256 { hi, lo })
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        if rhs > self {
            return None;
        }
        let (lo, borrow) = self.lo.overflowing_sub(rhs.lo);
        let hi = self.hi - rhs.hi - borrow as u128;
        Some(U256 { hi, lo })
    }

    /// Checked left shift; `None` if any set bit would be shifted out.
    pub fn checked_shl(self, k: u32) -> Option<U256> {
        if k == 0 {
            return Some(self);
        }
        if k >= 256 {
            return if self.is_zero() { Some(self) } else { None };
        }
        if self.bit_len() + k > 256 {
            return None;
        }
        Some(self.wrapping_shl(k))
    }

    fn wrapping_shl(self, k: u32) -> U256 {
        debug_assert!(k < 256);
        if k == 0 {
            self
        } else if k < 128 {
            U256 {
                hi: (self.hi << k) | (self.lo >> (128 - k)),
                lo: self.lo << k,
            }
        } else {
            U256 {
                hi: self.lo << (k - 128),
                lo: 0,
            }
        }
    }

    /// Logical right shift (bits shifted out are discarded).
    ///
    /// Named like the `Shr` trait method on purpose: unlike `>>` on
    /// primitives it accepts shifts of 256 and beyond (returning zero).
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, k: u32) -> U256 {
        if k == 0 {
            self
        } else if k >= 256 {
            U256::ZERO
        } else if k < 128 {
            U256 {
                hi: self.hi >> k,
                lo: (self.lo >> k) | (self.hi << (128 - k)),
            }
        } else {
            U256 {
                hi: 0,
                lo: self.hi >> (k - 128),
            }
        }
    }

    /// The low `k` bits of the value (`k <= 256`).
    pub fn low_bits(self, k: u32) -> U256 {
        if k == 0 {
            U256::ZERO
        } else if k >= 256 {
            self
        } else if k <= 128 {
            U256 {
                hi: 0,
                lo: if k == 128 {
                    self.lo
                } else {
                    self.lo & ((1u128 << k) - 1)
                },
            }
        } else {
            U256 {
                hi: self.hi & ((1u128 << (k - 128)) - 1),
                lo: self.lo,
            }
        }
    }

    /// Converts to `u128`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in 128 bits.
    #[inline]
    pub fn to_u128(self) -> u128 {
        assert_eq!(self.hi, 0, "U256 value does not fit in u128");
        self.lo
    }

    /// Shifts right by `k` bits, rounding to nearest with ties to even.
    ///
    /// `extra_sticky` marks additional value strictly below the LSB of
    /// `self` (as produced by a previous truncation); it participates in the
    /// tie-breaking decision. Returns the rounded value and whether any
    /// precision was lost (`inexact`).
    ///
    /// # Panics
    ///
    /// Panics if the rounded result does not fit in 128 bits.
    pub fn round_shr_rne(self, k: u32, extra_sticky: bool) -> (u128, bool) {
        if k == 0 {
            return (self.to_u128(), extra_sticky);
        }
        if k >= 256 {
            // Everything is fractional; value in [0, 1).
            let half_up = self.bit(255) && k == 256;
            // For k > 256 the value is < 1/2: round down.
            let inexact = !self.is_zero() || extra_sticky;
            if half_up {
                // Tie or above-half cases with k == 256.
                let below = !self.low_bits(255).is_zero() || extra_sticky;
                let up = below; // exactly half rounds to even = 0
                return (up as u128, inexact);
            }
            return (0, inexact);
        }
        let q = self.shr(k);
        let rem = self.low_bits(k);
        let half = U256::from_u128(1).wrapping_shl(k - 1);
        let inexact = !rem.is_zero() || extra_sticky;
        let round_up = match rem.cmp(&half) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => extra_sticky || q.bit(0),
        };
        let rounded = if round_up {
            q.checked_add(U256::from_u128(1))
                .expect("rounding carry overflowed 256 bits")
        } else {
            q
        };
        (rounded.to_u128(), inexact)
    }

    /// Shifts right by `k` bits, rounding half-up (adds half, truncates).
    ///
    /// This matches the cheap `(x + (1 << (k - 1))) >> k` hardware idiom
    /// ProbLP emits for fixed-point multipliers. Returns the rounded value
    /// and the `inexact` indication.
    ///
    /// # Panics
    ///
    /// Panics if the rounded result does not fit in 128 bits.
    pub fn round_shr_half_up(self, k: u32) -> (u128, bool) {
        if k == 0 {
            return (self.to_u128(), false);
        }
        let inexact = !self.low_bits(k.min(256)).is_zero();
        if k >= 257 {
            // value / 2^k < 2^256 / 2^257 = 1/2: rounds down to zero.
            return (0, inexact);
        }
        if k == 256 {
            // Rounds up exactly when the value is >= 2^255.
            return (self.bit(255) as u128, inexact);
        }
        let half = U256::from_u128(1).wrapping_shl(k - 1);
        let sum = self
            .checked_add(half)
            .expect("half-up rounding overflowed 256 bits");
        (sum.shr(k).to_u128(), inexact)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl std::fmt::Debug for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hi == 0 {
            write!(f, "U256(0x{:x})", self.lo)
        } else {
            write!(f, "U256(0x{:x}_{:032x})", self.hi, self.lo)
        }
    }
}

impl std::fmt::Display for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hi == 0 {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "0x{:x}{:032x}", self.hi, self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_mul_small() {
        assert_eq!(U256::widening_mul(3, 4), U256::from_u128(12));
        assert_eq!(U256::widening_mul(0, u128::MAX), U256::ZERO);
    }

    #[test]
    fn widening_mul_large() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let p = U256::widening_mul(u128::MAX, u128::MAX);
        assert_eq!(p, U256::new(u128::MAX - 1, 1));
    }

    #[test]
    fn widening_mul_cross_terms() {
        // (2^64 + 1) * (2^64 + 3) = 2^128 + 4*2^64 + 3
        let a = (1u128 << 64) + 1;
        let b = (1u128 << 64) + 3;
        assert_eq!(U256::widening_mul(a, b), U256::new(1, (4u128 << 64) + 3));
    }

    #[test]
    fn bit_len_spans_limbs() {
        assert_eq!(U256::from_u128(u128::MAX).bit_len(), 128);
        assert_eq!(U256::new(1, 0).bit_len(), 129);
        assert_eq!(U256::new(u128::MAX, u128::MAX).bit_len(), 256);
    }

    #[test]
    fn shifts_roundtrip() {
        let v = U256::from_u128(0xDEAD_BEEF);
        for k in [0u32, 1, 63, 64, 127, 128, 200] {
            let shifted = v.checked_shl(k).unwrap();
            assert_eq!(shifted.shr(k), v, "k={k}");
        }
    }

    #[test]
    fn checked_shl_detects_loss() {
        let v = U256::new(1 << 100, 0);
        assert!(v.checked_shl(28).is_none());
        assert!(v.checked_shl(27).is_some());
    }

    #[test]
    fn sub_and_add() {
        let a = U256::new(5, 0);
        let b = U256::from_u128(1);
        let c = a.checked_sub(b).unwrap();
        assert_eq!(c, U256::new(4, u128::MAX));
        assert_eq!(c.checked_add(b).unwrap(), a);
        assert!(b.checked_sub(a).is_none());
    }

    #[test]
    fn rne_rounds_to_even_on_ties() {
        // 0b101 >> 1 : rem = 1 = half, q = 0b10 (even) -> stays 2
        assert_eq!(U256::from_u128(0b101).round_shr_rne(1, false), (0b10, true));
        // 0b111 >> 1 : rem = 1 = half, q = 0b11 (odd) -> rounds up to 4
        assert_eq!(
            U256::from_u128(0b111).round_shr_rne(1, false),
            (0b100, true)
        );
        // sticky breaks the tie upward
        assert_eq!(U256::from_u128(0b101).round_shr_rne(1, true), (0b11, true));
        // exact
        assert_eq!(U256::from_u128(0b100).round_shr_rne(2, false), (1, false));
    }

    #[test]
    fn rne_above_and_below_half() {
        // rem = 0b01 < half(0b10): down
        assert_eq!(
            U256::from_u128(0b1001).round_shr_rne(2, false),
            (0b10, true)
        );
        // rem = 0b11 > half: up
        assert_eq!(
            U256::from_u128(0b1011).round_shr_rne(2, false),
            (0b11, true)
        );
    }

    #[test]
    fn half_up_matches_hardware_idiom() {
        // (x + half) >> k
        for x in 0u128..64 {
            let (got, _) = U256::from_u128(x).round_shr_half_up(3);
            assert_eq!(got, (x + 4) >> 3, "x={x}");
        }
    }

    #[test]
    fn low_bits_extracts() {
        let v = U256::new(0xFF, 0x1234);
        assert_eq!(v.low_bits(16), U256::from_u128(0x1234));
        assert_eq!(v.low_bits(130), U256::new(0x3, 0x1234));
        assert_eq!(v.low_bits(0), U256::ZERO);
    }

    #[test]
    fn bit_indexing() {
        let v = U256::new(0b10, 0b1);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(129));
        assert!(!v.bit(128));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(U256::new(1, 0) > U256::from_u128(u128::MAX));
        assert!(U256::new(1, 5) > U256::new(1, 4));
    }
}
