//! Sticky arithmetic status flags.

/// Sticky status flags accumulated by low-precision operations.
///
/// ProbLP's error models (paper §3.1) are only valid when no overflow or
/// underflow occurs; the framework sizes integer/exponent bits so that the
/// flags stay clear, and the test-suite asserts this. The flags are *sticky*:
/// once raised they stay raised until [`Flags::clear`] is called.
///
/// # Examples
///
/// ```
/// use problp_num::{Fixed, FixedFormat, Flags};
///
/// let fmt = FixedFormat::new(1, 4)?;
/// let mut flags = Flags::default();
/// let a = Fixed::from_f64(1.9, fmt, &mut flags);
/// let _sum = a.add(&a, &mut flags); // 3.8 does not fit in (1, 4)
/// assert!(flags.overflow);
/// # Ok::<(), problp_num::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Flags {
    /// A result was too large for the representation and was saturated.
    pub overflow: bool,
    /// A non-zero floating-point result was below the smallest normal value
    /// and was flushed to zero.
    pub underflow: bool,
    /// A result had to be rounded.
    pub inexact: bool,
    /// An invalid operation occurred (NaN produced, or a negative/NaN input
    /// was clamped in a format that cannot represent it).
    pub invalid: bool,
}

impl Flags {
    /// Creates a cleared flag set.
    pub const fn new() -> Self {
        Flags {
            overflow: false,
            underflow: false,
            inexact: false,
            invalid: false,
        }
    }

    /// Returns `true` if any flag is raised.
    pub const fn any(&self) -> bool {
        self.overflow || self.underflow || self.inexact || self.invalid
    }

    /// Returns `true` if a range violation occurred (overflow or underflow).
    ///
    /// ProbLP's bounds are invalid in that case (paper §3.1.4).
    pub const fn range_violation(&self) -> bool {
        self.overflow || self.underflow
    }

    /// Clears all flags.
    pub fn clear(&mut self) {
        *self = Flags::new();
    }

    /// Merges another flag set into this one (logical OR per flag).
    pub fn merge(&mut self, other: Flags) {
        self.overflow |= other.overflow;
        self.underflow |= other.underflow;
        self.inexact |= other.inexact;
        self.invalid |= other.invalid;
    }
}

impl std::fmt::Display for Flags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut raised: Vec<&str> = Vec::new();
        if self.overflow {
            raised.push("overflow");
        }
        if self.underflow {
            raised.push("underflow");
        }
        if self.inexact {
            raised.push("inexact");
        }
        if self.invalid {
            raised.push("invalid");
        }
        if raised.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", raised.join("|"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clear() {
        let f = Flags::default();
        assert!(!f.any());
        assert!(!f.range_violation());
        assert_eq!(f, Flags::new());
    }

    #[test]
    fn merge_is_sticky_or() {
        let mut a = Flags {
            overflow: true,
            ..Flags::new()
        };
        let b = Flags {
            inexact: true,
            ..Flags::new()
        };
        a.merge(b);
        assert!(a.overflow && a.inexact);
        assert!(!a.underflow && !a.invalid);
    }

    #[test]
    fn clear_resets() {
        let mut f = Flags {
            overflow: true,
            underflow: true,
            inexact: true,
            invalid: true,
        };
        assert!(f.range_violation());
        f.clear();
        assert!(!f.any());
    }

    #[test]
    fn display_lists_raised_flags() {
        let f = Flags {
            overflow: true,
            inexact: true,
            ..Flags::new()
        };
        assert_eq!(f.to_string(), "overflow|inexact");
        assert_eq!(Flags::new().to_string(), "none");
    }
}
