//! Error types for format construction.

/// Error returned when constructing an invalid number format.
///
/// # Examples
///
/// ```
/// use problp_num::{FixedFormat, FormatError};
///
/// let err = FixedFormat::new(100, 100).unwrap_err();
/// assert!(matches!(err, FormatError::WidthTooLarge { .. }));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum FormatError {
    /// The total bit width exceeds what the implementation supports.
    WidthTooLarge {
        /// Requested total width in bits.
        requested: u32,
        /// Largest supported total width in bits.
        max: u32,
    },
    /// The total bit width is zero.
    WidthZero,
    /// The exponent bit count is outside the supported range.
    ExpBitsOutOfRange {
        /// Requested exponent bits.
        requested: u32,
        /// Smallest supported exponent bits.
        min: u32,
        /// Largest supported exponent bits.
        max: u32,
    },
    /// The mantissa bit count is outside the supported range.
    MantBitsOutOfRange {
        /// Requested mantissa bits.
        requested: u32,
        /// Smallest supported mantissa bits.
        min: u32,
        /// Largest supported mantissa bits.
        max: u32,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::WidthTooLarge { requested, max } => {
                write!(
                    f,
                    "total width of {requested} bits exceeds the supported maximum of {max}"
                )
            }
            FormatError::WidthZero => write!(f, "total width must be at least one bit"),
            FormatError::ExpBitsOutOfRange {
                requested,
                min,
                max,
            } => {
                write!(f, "exponent width of {requested} bits is outside the supported range {min}..={max}")
            }
            FormatError::MantBitsOutOfRange {
                requested,
                min,
                max,
            } => {
                write!(f, "mantissa width of {requested} bits is outside the supported range {min}..={max}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_descriptive() {
        let e = FormatError::WidthTooLarge {
            requested: 200,
            max: 127,
        };
        let msg = e.to_string();
        assert!(msg.contains("200"));
        assert!(msg.contains("127"));
        assert_eq!(msg, msg.trim());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<FormatError>();
    }
}
