//! Parameterised unsigned fixed-point arithmetic.
//!
//! ProbLP's arithmetic circuits only ever compute on non-negative
//! probability-like values, so the fixed-point representation is unsigned:
//! a format with `I` integer bits and `F` fraction bits stores values
//! `raw / 2^F` with `raw < 2^(I+F)`, covering `[0, 2^I - 2^-F]`.
//!
//! Rounding follows the hardware the framework generates: multiplications
//! compute the exact double-width product and round the low `F` bits
//! *half-up* (the `(p + half) >> F` idiom), which satisfies the paper's
//! half-ulp error model `|Δ| <= 2^-(F+1)` (eq. 4). Additions are exact
//! unless they overflow the representation (eq. 3).

use crate::error::FormatError;
use crate::flags::Flags;
use crate::wide::U256;

/// Maximum supported total width (integer + fraction bits).
pub const MAX_FIXED_WIDTH: u32 = 127;

/// How fixed-point multipliers round the low `F` product bits.
///
/// The framework (and the paper) use [`FixedRounding::HalfUp`], whose
/// error is at most half an ulp (`2^-(F+1)`). [`FixedRounding::Truncate`]
/// drops the bits — cheaper hardware (no rounding adder) but a one-sided
/// error of up to one full ulp (`2^-F`); it is provided for the
/// rounding-mode ablation in `DESIGN.md`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FixedRounding {
    /// Add half an ulp, then truncate: `(p + (1 << (F-1))) >> F`.
    #[default]
    HalfUp,
    /// Truncate: `p >> F`.
    Truncate,
}

impl FixedRounding {
    /// Worst-case absolute error of one multiplier rounding under this
    /// mode, in value units.
    pub fn per_op_error(&self, format: FixedFormat) -> f64 {
        match self {
            FixedRounding::HalfUp => format.conversion_error_bound(),
            FixedRounding::Truncate => format.ulp(),
        }
    }
}

/// An unsigned fixed-point format: `I` integer bits and `F` fraction bits.
///
/// # Examples
///
/// ```
/// use problp_num::FixedFormat;
///
/// let fmt = FixedFormat::new(1, 15)?;
/// assert_eq!(fmt.int_bits(), 1);
/// assert_eq!(fmt.frac_bits(), 15);
/// assert_eq!(fmt.total_bits(), 16);
/// // Half-ulp conversion error bound of the paper, eq. (2).
/// assert_eq!(fmt.conversion_error_bound(), 2.0_f64.powi(-16));
/// # Ok::<(), problp_num::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FixedFormat {
    int_bits: u32,
    frac_bits: u32,
}

impl FixedFormat {
    /// Creates a fixed-point format with `int_bits` integer bits and
    /// `frac_bits` fraction bits.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::WidthTooLarge`] if `int_bits + frac_bits`
    /// exceeds [`MAX_FIXED_WIDTH`], and [`FormatError::WidthZero`] if the
    /// total width is zero.
    pub fn new(int_bits: u32, frac_bits: u32) -> Result<Self, FormatError> {
        let total = int_bits
            .checked_add(frac_bits)
            .ok_or(FormatError::WidthTooLarge {
                requested: u32::MAX,
                max: MAX_FIXED_WIDTH,
            })?;
        if total == 0 {
            return Err(FormatError::WidthZero);
        }
        if total > MAX_FIXED_WIDTH {
            return Err(FormatError::WidthTooLarge {
                requested: total,
                max: MAX_FIXED_WIDTH,
            });
        }
        Ok(FixedFormat {
            int_bits,
            frac_bits,
        })
    }

    /// Number of integer bits `I`.
    #[inline]
    pub const fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Number of fraction bits `F`.
    #[inline]
    pub const fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Total width `I + F` in bits.
    #[inline]
    pub const fn total_bits(&self) -> u32 {
        self.int_bits + self.frac_bits
    }

    /// The largest representable value, `2^I - 2^-F`.
    pub fn max_value(&self) -> f64 {
        self.max_raw() as f64 * self.ulp()
    }

    /// The largest representable raw integer, `2^(I+F) - 1`.
    #[inline]
    pub fn max_raw(&self) -> u128 {
        if self.total_bits() == 128 {
            u128::MAX
        } else {
            (1u128 << self.total_bits()) - 1
        }
    }

    /// The value of one unit in the last place, `2^-F`.
    pub fn ulp(&self) -> f64 {
        (-(self.frac_bits as f64)).exp2()
    }

    /// Worst-case absolute error of converting a real value into this
    /// format, `2^-(F+1)` (paper eq. 2). This is also the per-operation
    /// rounding error of a multiplier (the `2^-(F+1)` term of eq. 4).
    pub fn conversion_error_bound(&self) -> f64 {
        (-(self.frac_bits as f64 + 1.0)).exp2()
    }
}

impl std::fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fx(I={}, F={})", self.int_bits, self.frac_bits)
    }
}

/// An unsigned fixed-point number in a given [`FixedFormat`].
///
/// Operations take a [`Flags`] accumulator that records overflow (result
/// saturated to the maximum), inexactness (rounding happened) and invalid
/// inputs (negative or NaN values clamped to zero).
///
/// # Examples
///
/// ```
/// use problp_num::{Fixed, FixedFormat, Flags};
///
/// let fmt = FixedFormat::new(1, 8)?;
/// let mut flags = Flags::default();
/// let a = Fixed::from_f64(0.5, fmt, &mut flags);
/// let b = Fixed::from_f64(0.25, fmt, &mut flags);
/// assert_eq!(a.mul(&b, &mut flags).to_f64(), 0.125);
/// assert_eq!(a.add(&b, &mut flags).to_f64(), 0.75);
/// assert!(!flags.overflow);
/// # Ok::<(), problp_num::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fixed {
    raw: u128,
    format: FixedFormat,
}

impl Fixed {
    /// The value zero in the given format.
    pub fn zero(format: FixedFormat) -> Self {
        Fixed { raw: 0, format }
    }

    /// The value one in the given format.
    ///
    /// If the format has no integer bits, one is not representable; the
    /// result saturates to the maximum value and `flags.overflow` is set.
    pub fn one(format: FixedFormat, flags: &mut Flags) -> Self {
        Self::from_f64(1.0, format, flags)
    }

    /// The largest representable value in the given format.
    pub fn max_value(format: FixedFormat) -> Self {
        Fixed {
            raw: format.max_raw(),
            format,
        }
    }

    /// Converts a real value to fixed point, rounding to nearest.
    ///
    /// Out-of-range positive values saturate to the maximum and raise
    /// `overflow`; negative or NaN inputs clamp to zero and raise
    /// `invalid`; any rounding raises `inexact`.
    pub fn from_f64(value: f64, format: FixedFormat, flags: &mut Flags) -> Self {
        if value.is_nan() || value < 0.0 {
            flags.invalid = true;
            return Fixed { raw: 0, format };
        }
        // Scaling by a power of two is exact in f64 (only the exponent
        // changes), so `scaled` carries the full precision of `value`.
        let scaled = value * (format.frac_bits as f64).exp2();
        if scaled >= format.max_raw() as f64 + 0.5 {
            flags.overflow = true;
            return Self::max_value(format);
        }
        let rounded = scaled.round();
        if rounded != scaled {
            flags.inexact = true;
        }
        let raw = rounded as u128;
        if raw > format.max_raw() {
            flags.overflow = true;
            return Self::max_value(format);
        }
        Fixed { raw, format }
    }

    /// Builds a fixed-point number directly from its raw integer encoding
    /// (the value is `raw / 2^F`).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::WidthTooLarge`] if `raw` does not fit in the
    /// format's total width.
    pub fn from_raw(raw: u128, format: FixedFormat) -> Result<Self, FormatError> {
        if raw > format.max_raw() {
            return Err(FormatError::WidthTooLarge {
                requested: 128 - raw.leading_zeros(),
                max: format.total_bits(),
            });
        }
        Ok(Fixed { raw, format })
    }

    /// The raw integer encoding (also the hardware bit pattern).
    #[inline]
    pub const fn raw(&self) -> u128 {
        self.raw
    }

    /// The format of this number.
    #[inline]
    pub const fn format(&self) -> FixedFormat {
        self.format
    }

    /// Converts back to `f64` (rounding to nearest if the raw value exceeds
    /// 53 bits).
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * self.format.ulp()
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        self.raw == 0
    }

    fn check_format(&self, other: &Fixed) {
        assert_eq!(
            self.format, other.format,
            "fixed-point operands must share a format"
        );
    }

    /// Adds two fixed-point numbers.
    ///
    /// Fixed-point addition is exact (paper eq. 3) unless the result
    /// overflows the representation, in which case it saturates and raises
    /// `overflow`.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn add(&self, other: &Fixed, flags: &mut Flags) -> Fixed {
        self.check_format(other);
        // Raw values are < 2^127, so the u128 sum cannot wrap.
        let sum = self.raw + other.raw;
        if sum > self.format.max_raw() {
            flags.overflow = true;
            return Self::max_value(self.format);
        }
        Fixed {
            raw: sum,
            format: self.format,
        }
    }

    /// Multiplies two fixed-point numbers, rounding the low `F` bits of the
    /// exact product half-up (paper eq. 4: `|Δ| <= 2^-(F+1)` per operation).
    ///
    /// Saturates and raises `overflow` if the product exceeds the format's
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn mul(&self, other: &Fixed, flags: &mut Flags) -> Fixed {
        self.mul_with(other, FixedRounding::HalfUp, flags)
    }

    /// Multiplies two fixed-point numbers with an explicit rounding mode
    /// (see [`FixedRounding`]).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn mul_with(&self, other: &Fixed, rounding: FixedRounding, flags: &mut Flags) -> Fixed {
        self.check_format(other);
        let product = U256::widening_mul(self.raw, other.raw);
        let (rounded, inexact) = match rounding {
            FixedRounding::HalfUp => product.round_shr_half_up(self.format.frac_bits),
            FixedRounding::Truncate => {
                let shifted = product.shr(self.format.frac_bits);
                let inexact = !product.low_bits(self.format.frac_bits).is_zero();
                (shifted.to_u128(), inexact)
            }
        };
        flags.inexact |= inexact;
        if rounded > self.format.max_raw() {
            flags.overflow = true;
            return Self::max_value(self.format);
        }
        Fixed {
            raw: rounded,
            format: self.format,
        }
    }

    /// Returns the larger of two fixed-point numbers (used by max-product /
    /// MPE evaluation).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn max(&self, other: &Fixed) -> Fixed {
        self.check_format(other);
        if self.raw >= other.raw {
            *self
        } else {
            *other
        }
    }

    /// Returns the smaller of two fixed-point numbers (used by min-value
    /// analysis).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn min(&self, other: &Fixed) -> Fixed {
        self.check_format(other);
        if self.raw <= other.raw {
            *self
        } else {
            *other
        }
    }
}

impl PartialOrd for Fixed {
    /// Compares by numeric value. Returns `None` for different formats.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        if self.format == other.format {
            Some(self.raw.cmp(&other.raw))
        } else {
            None
        }
    }
}

impl std::fmt::Display for Fixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(i: u32, f: u32) -> FixedFormat {
        FixedFormat::new(i, f).unwrap()
    }

    #[test]
    fn format_validation() {
        assert!(FixedFormat::new(0, 0).is_err());
        assert!(FixedFormat::new(64, 64).is_err());
        assert!(FixedFormat::new(63, 64).is_ok());
        assert!(FixedFormat::new(1, 126).is_ok());
    }

    #[test]
    fn conversion_is_nearest() {
        let f = fmt(1, 2); // ulp = 0.25
        let mut flags = Flags::default();
        assert_eq!(Fixed::from_f64(0.3, f, &mut flags).to_f64(), 0.25);
        assert_eq!(Fixed::from_f64(0.4, f, &mut flags).to_f64(), 0.5);
        assert!(flags.inexact);
        let mut clean = Flags::default();
        assert_eq!(Fixed::from_f64(0.75, f, &mut clean).to_f64(), 0.75);
        assert!(!clean.inexact);
    }

    #[test]
    fn conversion_error_within_half_ulp() {
        let f = fmt(1, 13);
        let bound = f.conversion_error_bound();
        let mut flags = Flags::default();
        for i in 0..1000 {
            let x = i as f64 / 1000.0;
            let got = Fixed::from_f64(x, f, &mut flags).to_f64();
            assert!(
                (got - x).abs() <= bound,
                "x={x} got={got} err={} bound={bound}",
                (got - x).abs()
            );
        }
        assert!(!flags.overflow && !flags.invalid);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        let f = fmt(1, 4);
        let mut flags = Flags::default();
        assert!(Fixed::from_f64(-0.5, f, &mut flags).is_zero());
        assert!(flags.invalid);
        flags.clear();
        assert!(Fixed::from_f64(f64::NAN, f, &mut flags).is_zero());
        assert!(flags.invalid);
    }

    #[test]
    fn overflow_saturates() {
        let f = fmt(1, 4);
        let mut flags = Flags::default();
        let v = Fixed::from_f64(5.0, f, &mut flags);
        assert!(flags.overflow);
        assert_eq!(v, Fixed::max_value(f));
        assert_eq!(v.to_f64(), 2.0 - 2.0_f64.powi(-4));
    }

    #[test]
    fn addition_is_exact() {
        let f = fmt(2, 10);
        let mut flags = Flags::default();
        let a = Fixed::from_f64(0.125, f, &mut flags);
        let b = Fixed::from_f64(1.5, f, &mut flags);
        let s = a.add(&b, &mut flags);
        assert_eq!(s.to_f64(), 1.625);
        assert!(!flags.inexact);
    }

    #[test]
    fn addition_overflow_saturates() {
        let f = fmt(1, 3);
        let mut flags = Flags::default();
        let a = Fixed::from_f64(1.5, f, &mut flags);
        let s = a.add(&a, &mut flags);
        assert!(flags.overflow);
        assert_eq!(s, Fixed::max_value(f));
    }

    #[test]
    fn multiplication_rounds_half_up() {
        let f = fmt(1, 2); // ulp 0.25
        let mut flags = Flags::default();
        // 0.75 * 0.75 = 0.5625; grid {0.5, 0.75}: 0.5625 is 0.0625 above 0.5,
        // exact halfway would be 0.625. 0.5625 < 0.625 -> rounds down to 0.5.
        let a = Fixed::from_f64(0.75, f, &mut flags);
        assert_eq!(a.mul(&a, &mut flags).to_f64(), 0.5);
        assert!(flags.inexact);
        // 0.25 * 0.5 = 0.125 = exactly half an ulp -> half-up gives 0.25.
        let b = Fixed::from_f64(0.25, f, &mut flags);
        let c = Fixed::from_f64(0.5, f, &mut flags);
        assert_eq!(b.mul(&c, &mut flags).to_f64(), 0.25);
    }

    #[test]
    fn multiplication_error_within_bound() {
        let f = fmt(1, 11);
        let bound = f.conversion_error_bound();
        let mut flags = Flags::default();
        for i in 1..100u32 {
            for j in 1..100u32 {
                let a = Fixed::from_raw((i * 20) as u128, f).unwrap();
                let b = Fixed::from_raw((j * 20) as u128, f).unwrap();
                let exact = a.to_f64() * b.to_f64();
                let got = a.mul(&b, &mut flags).to_f64();
                assert!(
                    (got - exact).abs() <= bound,
                    "a={a} b={b} exact={exact} got={got}"
                );
            }
        }
        assert!(!flags.overflow);
    }

    #[test]
    fn multiplication_of_wide_values() {
        // Exercise the 256-bit product path: F large enough that raw
        // products exceed 128 bits.
        let f = fmt(1, 100);
        let mut flags = Flags::default();
        let a = Fixed::from_f64(0.999999, f, &mut flags);
        let p = a.mul(&a, &mut flags);
        let exact = a.to_f64() * a.to_f64();
        assert!((p.to_f64() - exact).abs() <= f.conversion_error_bound());
    }

    #[test]
    fn mul_overflow_saturates() {
        let f = fmt(2, 4);
        let mut flags = Flags::default();
        let a = Fixed::from_f64(3.5, f, &mut flags);
        assert!(!flags.overflow);
        let p = a.mul(&a, &mut flags); // 12.25 > 4
        assert!(flags.overflow);
        assert_eq!(p, Fixed::max_value(f));
    }

    #[test]
    fn min_max_follow_value_order() {
        let f = fmt(1, 8);
        let mut flags = Flags::default();
        let a = Fixed::from_f64(0.3, f, &mut flags);
        let b = Fixed::from_f64(0.7, f, &mut flags);
        assert_eq!(a.max(&b), b);
        assert_eq!(a.min(&b), a);
        assert_eq!(b.max(&a), b);
    }

    #[test]
    #[should_panic(expected = "share a format")]
    fn mismatched_formats_panic() {
        let mut flags = Flags::default();
        let a = Fixed::from_f64(0.5, fmt(1, 4), &mut flags);
        let b = Fixed::from_f64(0.5, fmt(1, 5), &mut flags);
        let _ = a.add(&b, &mut flags);
    }

    #[test]
    fn one_requires_an_integer_bit() {
        let mut flags = Flags::default();
        let v = Fixed::one(fmt(0, 8), &mut flags);
        assert!(flags.overflow);
        assert_eq!(v, Fixed::max_value(fmt(0, 8)));
        flags.clear();
        let v = Fixed::one(fmt(1, 8), &mut flags);
        assert_eq!(v.to_f64(), 1.0);
        assert!(!flags.any());
    }

    #[test]
    fn display_shows_value_and_format() {
        let f = fmt(1, 4);
        assert_eq!(f.to_string(), "fx(I=1, F=4)");
        let mut flags = Flags::default();
        assert_eq!(Fixed::from_f64(0.5, f, &mut flags).to_string(), "0.5");
    }

    #[test]
    fn from_raw_validates_width() {
        let f = fmt(1, 4);
        assert!(Fixed::from_raw(31, f).is_ok());
        assert!(Fixed::from_raw(32, f).is_err());
    }

    #[test]
    fn truncation_never_rounds_up() {
        let f = fmt(1, 3); // ulp 0.125
        let mut flags = Flags::default();
        let a = Fixed::from_f64(0.875, f, &mut flags);
        // 0.875^2 = 0.765625; half-up gives 0.75, truncate gives 0.75 too.
        // 0.375 * 0.875 = 0.328125: half-up -> 0.375, truncate -> 0.25.
        let b = Fixed::from_f64(0.375, f, &mut flags);
        let up = b.mul_with(&a, FixedRounding::HalfUp, &mut flags);
        let tr = b.mul_with(&a, FixedRounding::Truncate, &mut flags);
        assert_eq!(up.to_f64(), 0.375);
        assert_eq!(tr.to_f64(), 0.25);
        assert!(tr.raw() <= up.raw());
    }

    #[test]
    fn truncation_error_within_one_ulp() {
        let f = fmt(1, 9);
        let mut flags = Flags::default();
        for i in 1..60u32 {
            for j in 1..60u32 {
                let a = Fixed::from_raw((i * 8) as u128, f).unwrap();
                let b = Fixed::from_raw((j * 8) as u128, f).unwrap();
                let exact = a.to_f64() * b.to_f64();
                let got = a.mul_with(&b, FixedRounding::Truncate, &mut flags).to_f64();
                // Truncation is one-sided: result <= exact, off by < 1 ulp.
                assert!(got <= exact + 1e-15);
                assert!(exact - got < FixedRounding::Truncate.per_op_error(f));
            }
        }
    }

    #[test]
    fn rounding_mode_error_bounds() {
        let f = fmt(1, 7);
        assert_eq!(FixedRounding::HalfUp.per_op_error(f), 2.0_f64.powi(-8));
        assert_eq!(FixedRounding::Truncate.per_op_error(f), 2.0_f64.powi(-7));
    }
}
