//! Edge-case tests for the arithmetic substrate: range boundaries,
//! rounding at binade edges, saturation behaviour and flag semantics.

use problp_num::{Fixed, FixedFormat, FixedRounding, Flags, FloatFormat, LpFloat};

fn fl(e: u32, m: u32) -> FloatFormat {
    FloatFormat::new(e, m).unwrap()
}

fn fx(i: u32, f: u32) -> FixedFormat {
    FixedFormat::new(i, f).unwrap()
}

#[test]
fn float_overflow_happens_exactly_past_max_finite() {
    let format = fl(4, 3); // bias 7, max exponent 7, max finite (2-2^-3)*2^7 = 240
    let mut flags = Flags::default();
    assert_eq!(format.max_finite(), 240.0);
    let v = LpFloat::from_f64(240.0, format, &mut flags);
    assert!(v.is_normal());
    assert!(!flags.overflow);
    // The rounding boundary: values < 248 round down to 240; >= 248
    // round up and overflow.
    let v = LpFloat::from_f64(247.9, format, &mut flags);
    assert_eq!(v.to_f64(), 240.0);
    assert!(!flags.overflow);
    let v = LpFloat::from_f64(248.0, format, &mut flags);
    assert!(v.is_infinite());
    assert!(flags.overflow);
}

#[test]
fn float_underflow_happens_below_half_min_normal() {
    let format = fl(4, 3); // min normal 2^-6
    let min = format.min_positive();
    let mut flags = Flags::default();
    let v = LpFloat::from_f64(min, format, &mut flags);
    assert!(v.is_normal());
    assert!(!flags.underflow);
    // Values rounding to below min normal flush to zero.
    let v = LpFloat::from_f64(min * 0.49, format, &mut flags);
    assert!(v.is_zero());
    assert!(flags.underflow);
}

#[test]
fn float_addition_can_overflow() {
    let format = fl(4, 3);
    let mut flags = Flags::default();
    let max = LpFloat::max_finite(format);
    let sum = max.add(&max, &mut flags);
    assert!(sum.is_infinite());
    assert!(flags.overflow);
}

#[test]
fn float_multiplication_can_underflow() {
    let format = fl(4, 3);
    let mut flags = Flags::default();
    let tiny = LpFloat::min_positive(format);
    let prod = tiny.mul(&tiny, &mut flags);
    assert!(prod.is_zero());
    assert!(flags.underflow);
}

#[test]
fn rounding_at_binade_boundary_carries_into_the_exponent() {
    // 1.111|1 rounds to 10.00 -> 2.0 with exponent bump.
    let format = fl(5, 3);
    let mut flags = Flags::default();
    let v = LpFloat::from_f64(1.9688, format, &mut flags); // just above 1.9375+half ulp
    assert_eq!(v.to_f64(), 2.0);
}

#[test]
fn subtraction_cancellation_normalizes_far_left() {
    // (1 + 2^-M) - 1 = 2^-M: full cancellation down to one bit.
    let format = fl(8, 6);
    let mut flags = Flags::default();
    let one_plus = LpFloat::from_parts(false, 0, (1 << 6) | 1, format);
    let one = LpFloat::one(format);
    let d = one_plus.sub(&one, &mut flags);
    assert_eq!(d.to_f64(), 2.0_f64.powi(-6));
    assert!(!flags.inexact, "Sterbenz-range subtraction is exact");
}

#[test]
fn fixed_saturation_is_sticky_and_maximal() {
    let format = fx(2, 6);
    let mut flags = Flags::default();
    let big = Fixed::from_f64(3.9, format, &mut flags);
    let sum = big.add(&big, &mut flags);
    assert!(flags.overflow);
    assert_eq!(sum, Fixed::max_value(format));
    // Flags stay raised.
    let small = Fixed::from_f64(0.1, format, &mut flags);
    let _ = small.add(&small, &mut flags);
    assert!(flags.overflow, "flags are sticky");
}

#[test]
fn fixed_mul_rounding_modes_bracket_the_exact_product() {
    let format = fx(1, 6);
    let mut flags = Flags::default();
    for i in 1..60u128 {
        for j in 1..60u128 {
            let a = Fixed::from_raw(i, format).unwrap();
            let b = Fixed::from_raw(j, format).unwrap();
            let exact = a.to_f64() * b.to_f64();
            let up = a.mul_with(&b, FixedRounding::HalfUp, &mut flags).to_f64();
            let tr = a.mul_with(&b, FixedRounding::Truncate, &mut flags).to_f64();
            assert!(tr <= exact + 1e-12, "truncation is one-sided");
            assert!(tr <= up, "truncation never exceeds half-up");
            assert!((up - exact).abs() <= format.conversion_error_bound() + 1e-15);
        }
    }
}

#[test]
fn one_ulp_steps_are_preserved_by_conversion() {
    let format = fx(1, 10);
    let mut flags = Flags::default();
    for raw in [0u128, 1, 2, 1023, 1024, 2047] {
        let v = Fixed::from_raw(raw, format).unwrap();
        let back = Fixed::from_f64(v.to_f64(), format, &mut flags);
        assert_eq!(back.raw(), raw, "exact grid values roundtrip");
    }
    assert!(!flags.inexact);
}

#[test]
fn float_formats_at_the_width_limits_work() {
    // The widest supported float format.
    let format = fl(20, 107);
    let mut flags = Flags::default();
    let a = LpFloat::from_f64(1.0 / 3.0, format, &mut flags);
    let b = LpFloat::from_f64(3.0, format, &mut flags);
    let p = a.mul(&b, &mut flags);
    let rel = (p.to_f64() - 1.0).abs();
    assert!(rel < 1e-15);
    // The narrowest: E = 2 gives bias 1 and normal exponents {0, 1}.
    let format = fl(2, 1);
    let v = LpFloat::from_f64(1.5, format, &mut flags);
    assert!(v.is_normal());
    assert_eq!(v.to_f64(), 1.5); // 1.1 * 2^0
                                 // Below the minimum normal magnitude flushes to zero.
    let mut local = Flags::default();
    let v = LpFloat::from_f64(0.4, format, &mut local);
    assert!(v.is_zero());
    assert!(local.underflow);
}

#[test]
fn fixed_formats_at_the_width_limits_work() {
    let format = fx(1, 126);
    let mut flags = Flags::default();
    let a = Fixed::from_f64(0.3, format, &mut flags);
    let b = Fixed::from_f64(0.2, format, &mut flags);
    let p = a.mul(&b, &mut flags);
    assert!((p.to_f64() - 0.06).abs() < 1e-15);
    let s = a.add(&b, &mut flags);
    assert!((s.to_f64() - 0.5).abs() < 1e-15);
    assert!(!flags.overflow);
}

#[test]
fn nan_propagates_through_chains() {
    let format = fl(6, 6);
    let mut flags = Flags::default();
    let nan = LpFloat::nan(format);
    let one = LpFloat::one(format);
    assert!(nan.add(&one, &mut flags).is_nan());
    assert!(nan.mul(&one, &mut flags).is_nan());
    assert!(nan.div(&one, &mut flags).is_nan());
    assert!(nan.sub(&one, &mut flags).is_nan());
    assert!(one.max(&nan).is_nan());
    assert!(one.min(&nan).is_nan());
}

#[test]
fn signed_arithmetic_handles_mixed_signs() {
    let format = fl(8, 10);
    let mut flags = Flags::default();
    let a = LpFloat::from_f64(1.5, format, &mut flags);
    let b = LpFloat::from_f64(-2.25, format, &mut flags);
    assert_eq!(a.add(&b, &mut flags).to_f64(), -0.75);
    assert_eq!(a.mul(&b, &mut flags).to_f64(), -3.375);
    assert_eq!(b.abs().to_f64(), 2.25);
    assert_eq!(b.neg().to_f64(), 2.25);
    assert_eq!(a.sub(&b, &mut flags).to_f64(), 3.75);
}
