//! Property-based tests for the low-precision arithmetic substrate.
//!
//! The central properties:
//!
//! * the soft-float matches hardware IEEE 754 bit-for-bit at IEEE widths,
//! * every operation respects the paper's per-operation error models,
//! * rounded arithmetic is *monotone* on non-negative values — the property
//!   that makes ProbLP's max-value analysis (paper §3.1.1) sound.

use problp_num::{Arith, Fixed, FixedArith, FixedFormat, Flags, FloatFormat, LpFloat, U256};
use proptest::prelude::*;

/// Strategy for f32 values whose magnitude stays well inside the normal
/// range, so operations never hit subnormals (we flush to zero; IEEE does
/// not).
fn normal_f32() -> impl Strategy<Value = f32> {
    (any::<i8>(), 1.0f32..2.0f32).prop_map(|(e, m)| m * (e as f32 / 4.0).exp2())
}

/// Strategy for positive probabilities in (0, 1].
fn probability() -> impl Strategy<Value = f64> {
    (1e-6f64..=1.0f64).prop_map(|x| x)
}

fn single(x: f32) -> LpFloat {
    let mut flags = Flags::default();
    LpFloat::from_f64(x as f64, FloatFormat::ieee_single(), &mut flags)
}

proptest! {
    #[test]
    fn softfloat_single_conversion_matches_f32(x in any::<f64>()) {
        prop_assume!(x.is_finite());
        let hw = x as f32;
        prop_assume!(hw.is_normal() || hw == 0.0);
        // Skip doubles that are subnormal-f32-range (we flush to zero).
        let mut flags = Flags::default();
        let soft = LpFloat::from_f64(x, FloatFormat::ieee_single(), &mut flags);
        prop_assert_eq!(soft.to_f64(), hw as f64);
    }

    #[test]
    fn softfloat_single_add_matches_f32(a in normal_f32(), b in normal_f32()) {
        let hw = a + b;
        prop_assume!(hw.is_normal() || hw == 0.0);
        let mut flags = Flags::default();
        let got = single(a).add(&single(b), &mut flags);
        prop_assert_eq!(got.to_f64(), hw as f64, "a={} b={}", a, b);
    }

    #[test]
    fn softfloat_single_sub_matches_f32(a in normal_f32(), b in normal_f32()) {
        let hw = a - b;
        prop_assume!(hw.is_normal() || hw == 0.0);
        let mut flags = Flags::default();
        let got = single(a).sub(&single(b), &mut flags);
        prop_assert_eq!(got.to_f64(), hw as f64, "a={} b={}", a, b);
    }

    #[test]
    fn softfloat_single_mul_matches_f32(a in normal_f32(), b in normal_f32()) {
        let hw = a * b;
        prop_assume!(hw.is_normal() || hw == 0.0);
        let mut flags = Flags::default();
        let got = single(a).mul(&single(b), &mut flags);
        prop_assert_eq!(got.to_f64(), hw as f64, "a={} b={}", a, b);
    }

    #[test]
    fn softfloat_single_div_matches_f32(a in normal_f32(), b in normal_f32()) {
        prop_assume!(b != 0.0);
        let hw = a / b;
        prop_assume!(hw.is_normal() || hw == 0.0);
        let mut flags = Flags::default();
        let got = single(a).div(&single(b), &mut flags);
        prop_assert_eq!(got.to_f64(), hw as f64, "a={} b={}", a, b);
    }

    #[test]
    fn softfloat_double_roundtrips_f64(x in any::<f64>()) {
        prop_assume!(x.is_normal() || x == 0.0);
        let mut flags = Flags::default();
        let soft = LpFloat::from_f64(x, FloatFormat::ieee_double(), &mut flags);
        prop_assert_eq!(soft.to_f64(), x);
        prop_assert!(!flags.inexact);
    }

    #[test]
    fn softfloat_double_ops_match_f64(a in 1e-100f64..1e100, b in 1e-100f64..1e100) {
        let mut flags = Flags::default();
        let fmt = FloatFormat::ieee_double();
        let sa = LpFloat::from_f64(a, fmt, &mut flags);
        let sb = LpFloat::from_f64(b, fmt, &mut flags);
        prop_assert_eq!(sa.add(&sb, &mut flags).to_f64(), a + b);
        prop_assert_eq!(sa.mul(&sb, &mut flags).to_f64(), a * b);
        prop_assert_eq!(sa.div(&sb, &mut flags).to_f64(), a / b);
        prop_assert_eq!(sa.sub(&sb, &mut flags).to_f64(), a - b);
    }

    #[test]
    fn float_ops_obey_epsilon_model(
        a in probability(),
        b in probability(),
        m in 4u32..40,
    ) {
        // Paper eqs. (9) and (11): one (1 ± ε) factor per operation on
        // already-representable inputs.
        let fmt = FloatFormat::new(10, m).unwrap();
        let eps = fmt.epsilon();
        let mut flags = Flags::default();
        let sa = LpFloat::from_f64(a, fmt, &mut flags);
        let sb = LpFloat::from_f64(b, fmt, &mut flags);
        let (ra, rb) = (sa.to_f64(), sb.to_f64());

        let sum = sa.add(&sb, &mut flags).to_f64();
        let exact_sum = ra + rb;
        prop_assert!((sum - exact_sum).abs() <= eps * exact_sum.abs() * 1.0000001);

        let prod = sa.mul(&sb, &mut flags).to_f64();
        let exact_prod = ra * rb;
        prop_assert!((prod - exact_prod).abs() <= eps * exact_prod.abs() * 1.0000001);
        prop_assert!(!flags.range_violation());
    }

    #[test]
    fn float_conversion_obeys_epsilon_model(x in probability(), m in 1u32..60) {
        let fmt = FloatFormat::new(10, m).unwrap();
        let mut flags = Flags::default();
        let v = LpFloat::from_f64(x, fmt, &mut flags).to_f64();
        prop_assert!(((v - x) / x).abs() <= fmt.epsilon());
    }

    #[test]
    fn fixed_conversion_obeys_half_ulp_model(x in 0.0f64..1.0, f in 1u32..60) {
        // Paper eq. (2): |Δa| <= 2^-(F+1).
        let fmt = FixedFormat::new(1, f).unwrap();
        let mut flags = Flags::default();
        let v = Fixed::from_f64(x, fmt, &mut flags).to_f64();
        prop_assert!((v - x).abs() <= fmt.conversion_error_bound());
    }

    #[test]
    fn fixed_add_is_exact(a in 0.0f64..0.5, b in 0.0f64..0.5, f in 1u32..50) {
        // Paper eq. (3): adders add no error of their own.
        let fmt = FixedFormat::new(1, f).unwrap();
        let mut flags = Flags::default();
        let fa = Fixed::from_f64(a, fmt, &mut flags);
        let fb = Fixed::from_f64(b, fmt, &mut flags);
        let sum = fa.add(&fb, &mut flags);
        prop_assert_eq!(sum.raw(), fa.raw() + fb.raw());
        prop_assert!(!flags.overflow);
    }

    #[test]
    fn fixed_mul_obeys_half_ulp_model(a in 0.0f64..1.0, b in 0.0f64..1.0, f in 1u32..50) {
        // Paper eq. (4): rounding the exact product costs at most 2^-(F+1).
        let fmt = FixedFormat::new(1, f).unwrap();
        let mut flags = Flags::default();
        let fa = Fixed::from_f64(a, fmt, &mut flags);
        let fb = Fixed::from_f64(b, fmt, &mut flags);
        let exact = fa.to_f64() * fb.to_f64();
        let got = fa.mul(&fb, &mut flags).to_f64();
        prop_assert!((got - exact).abs() <= fmt.conversion_error_bound() * 1.0000001,
            "a={} b={} exact={} got={}", a, b, exact, got);
    }

    #[test]
    fn fixed_ops_are_monotone(
        a in 0.0f64..0.9,
        a2 in 0.0f64..0.9,
        b in 0.0f64..0.9,
        f in 1u32..40,
    ) {
        // Monotonicity of rounded arithmetic on non-negative values is what
        // makes the all-indicators-one evaluation an upper bound for every
        // node (paper §3.1.1).
        let fmt = FixedFormat::new(1, f).unwrap();
        let mut flags = Flags::default();
        let (lo, hi) = if a <= a2 { (a, a2) } else { (a2, a) };
        let flo = Fixed::from_f64(lo, fmt, &mut flags);
        let fhi = Fixed::from_f64(hi, fmt, &mut flags);
        let fb = Fixed::from_f64(b, fmt, &mut flags);
        prop_assert!(flo.add(&fb, &mut flags).raw() <= fhi.add(&fb, &mut flags).raw());
        prop_assert!(flo.mul(&fb, &mut flags).raw() <= fhi.mul(&fb, &mut flags).raw());
    }

    #[test]
    fn float_ops_are_monotone(
        a in 1e-5f64..1.0,
        a2 in 1e-5f64..1.0,
        b in 1e-5f64..1.0,
        m in 2u32..30,
    ) {
        let fmt = FloatFormat::new(10, m).unwrap();
        let mut flags = Flags::default();
        let (lo, hi) = if a <= a2 { (a, a2) } else { (a2, a) };
        let flo = LpFloat::from_f64(lo, fmt, &mut flags);
        let fhi = LpFloat::from_f64(hi, fmt, &mut flags);
        let fb = LpFloat::from_f64(b, fmt, &mut flags);
        let sum_lo = flo.add(&fb, &mut flags);
        let sum_hi = fhi.add(&fb, &mut flags);
        prop_assert!(sum_lo <= sum_hi);
        let prod_lo = flo.mul(&fb, &mut flags);
        let prod_hi = fhi.mul(&fb, &mut flags);
        prop_assert!(prod_lo <= prod_hi);
    }

    #[test]
    fn float_add_mul_commute(a in probability(), b in probability(), m in 2u32..40) {
        let fmt = FloatFormat::new(10, m).unwrap();
        let mut flags = Flags::default();
        let sa = LpFloat::from_f64(a, fmt, &mut flags);
        let sb = LpFloat::from_f64(b, fmt, &mut flags);
        prop_assert_eq!(sa.add(&sb, &mut flags), sb.add(&sa, &mut flags));
        prop_assert_eq!(sa.mul(&sb, &mut flags), sb.mul(&sa, &mut flags));
    }

    #[test]
    fn fixed_add_mul_commute(a in 0.0f64..0.9, b in 0.0f64..0.9, f in 1u32..50) {
        let fmt = FixedFormat::new(1, f).unwrap();
        let mut flags = Flags::default();
        let fa = Fixed::from_f64(a, fmt, &mut flags);
        let fb = Fixed::from_f64(b, fmt, &mut flags);
        prop_assert_eq!(fa.add(&fb, &mut flags), fb.add(&fa, &mut flags));
        prop_assert_eq!(fa.mul(&fb, &mut flags), fb.mul(&fa, &mut flags));
    }

    #[test]
    fn float_bits_roundtrip(x in 1e-30f64..1e30, e in 4u32..16, m in 2u32..50) {
        let fmt = FloatFormat::new(e, m).unwrap();
        let mut flags = Flags::default();
        let v = LpFloat::from_f64(x, fmt, &mut flags);
        prop_assume!(v.is_normal());
        prop_assert_eq!(LpFloat::from_bits(v.to_bits(), fmt), v);
    }

    #[test]
    fn wide_mul_matches_native_on_64bit(a in any::<u64>(), b in any::<u64>()) {
        let p = U256::widening_mul(a as u128, b as u128);
        prop_assert_eq!(p.high(), 0);
        prop_assert_eq!(p.low(), (a as u128) * (b as u128));
    }

    #[test]
    fn wide_mul_shift_roundtrip(a in any::<u128>(), k in 0u32..128) {
        let v = U256::from_u128(a);
        if let Some(s) = v.checked_shl(k) {
            prop_assert_eq!(s.shr(k), v);
        }
    }

    #[test]
    fn rne_is_within_half_ulp(x in any::<u128>(), k in 1u32..100) {
        let (q, inexact) = U256::from_u128(x).round_shr_rne(k, false);
        // |q * 2^k - x| <= 2^(k-1)
        let back = U256::from_u128(q).checked_shl(k).unwrap();
        let diff = if back >= U256::from_u128(x) {
            back.checked_sub(U256::from_u128(x)).unwrap()
        } else {
            U256::from_u128(x).checked_sub(back).unwrap()
        };
        let half = U256::from_u128(1).checked_shl(k - 1).unwrap();
        prop_assert!(diff <= half);
        prop_assert_eq!(inexact, !U256::from_u128(x).low_bits(k).is_zero());
    }

    #[test]
    fn fixed_arith_context_matches_direct_ops(a in 0.0f64..0.9, b in 0.0f64..0.9) {
        let fmt = FixedFormat::new(1, 12).unwrap();
        let mut ctx = FixedArith::new(fmt);
        let va = ctx.from_f64(a);
        let vb = ctx.from_f64(b);
        let via_ctx = ctx.add(&va, &vb);
        let mut flags = Flags::default();
        let direct = va.add(&vb, &mut flags);
        prop_assert_eq!(via_ctx, direct);
    }
}
