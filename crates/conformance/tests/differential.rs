//! Integration tests of the differential harness: green on real models,
//! red under fault injection, deterministic under a fixed seed.

use problp_bayes::networks;
use problp_conformance::{
    random_batch, random_models, run_conformance, ArithSpec, BackendKind, ConformanceConfig,
    ConformanceReport,
};

fn small_models() -> Vec<(String, problp_bayes::BayesNet)> {
    vec![
        ("sprinkler".to_string(), networks::sprinkler()),
        ("asia".to_string(), networks::asia()),
    ]
}

fn small_config() -> ConformanceConfig {
    ConformanceConfig {
        batch: 24,
        ..ConformanceConfig::default()
    }
}

#[test]
fn named_models_are_bit_identical_across_all_backends() {
    let report = run_conformance(&small_models(), &small_config()).unwrap();
    assert!(report.all_match(), "unexpected divergence:\n{report}");
    // 2 models × 3 ariths × 3 semirings cases; hardware joins only the
    // sum-product third.
    assert_eq!(report.cases.len(), 18);
    let hw_cases = report
        .cases
        .iter()
        .filter(|c| {
            c.backends
                .iter()
                .any(|b| b.backend == BackendKind::Pipeline)
        })
        .count();
    assert_eq!(hw_cases, 6);
    assert_eq!(report.total_mismatches(), 0);
}

#[test]
fn random_models_are_bit_identical_across_all_backends() {
    let models = random_models(41, 3);
    let report = run_conformance(&models, &small_config()).unwrap();
    assert!(report.all_match(), "unexpected divergence:\n{report}");
}

#[test]
fn fault_injection_turns_the_verdict_red() {
    // A harness that cannot detect a corrupted backend proves nothing:
    // flipping one bit of lane 0 in any stream must flip the verdict.
    let models = vec![("sprinkler".to_string(), networks::sprinkler())];
    for backend in [
        BackendKind::TapeCompact,
        BackendKind::TapeFull,
        BackendKind::FusedCompact,
        BackendKind::FusedFull,
        BackendKind::SimdCompact,
        BackendKind::Schedule,
        BackendKind::Pipeline,
    ] {
        let config = ConformanceConfig {
            batch: 8,
            inject_fault: Some(backend),
            ..ConformanceConfig::default()
        };
        let report = run_conformance(&models, &config).unwrap();
        assert!(
            !report.all_match(),
            "injected fault in {backend} went undetected"
        );
        let diverged: Vec<_> = report
            .cases
            .iter()
            .flat_map(|c| &c.backends)
            .filter(|b| b.mismatched_lanes > 0)
            .collect();
        assert!(diverged.iter().all(|b| b.backend == backend));
        assert!(diverged.iter().all(|b| b.first_mismatch == Some(0)));
    }
}

#[test]
fn corrupting_the_reference_flags_every_other_stream() {
    let models = vec![("figure1".to_string(), networks::figure1())];
    let config = ConformanceConfig {
        batch: 8,
        inject_fault: Some(BackendKind::Scalar),
        ..ConformanceConfig::default()
    };
    let report = run_conformance(&models, &config).unwrap();
    assert!(!report.all_match());
    // Every compared stream disagrees with the perturbed reference.
    for case in &report.cases {
        for b in case
            .backends
            .iter()
            .filter(|b| b.backend != BackendKind::Scalar)
        {
            assert!(b.mismatched_lanes > 0, "{} should diverge", b.backend);
        }
    }
}

#[test]
fn runs_are_deterministic_under_a_fixed_seed() {
    let verdicts = |report: &ConformanceReport| -> Vec<(String, usize)> {
        report
            .cases
            .iter()
            .map(|c| {
                (
                    format!("{}/{}/{:?}", c.model, c.arith, c.semiring),
                    c.backends.iter().map(|b| b.mismatched_lanes).sum(),
                )
            })
            .collect()
    };
    let a = run_conformance(&small_models(), &small_config()).unwrap();
    let b = run_conformance(&small_models(), &small_config()).unwrap();
    assert_eq!(verdicts(&a), verdicts(&b));

    let net = networks::asia();
    assert_eq!(random_batch(&net, 32, 9), random_batch(&net, 32, 9));
    assert_ne!(random_batch(&net, 32, 9), random_batch(&net, 32, 10));
}

#[test]
fn single_arith_single_semiring_configs_narrow_the_matrix() {
    let config = ConformanceConfig {
        batch: 8,
        ariths: vec![ArithSpec::parse("fixed:1.11").unwrap()],
        semirings: vec![problp_ac::Semiring::SumProduct],
        ..ConformanceConfig::default()
    };
    let report = run_conformance(&small_models(), &config).unwrap();
    assert_eq!(report.cases.len(), 2);
    assert!(report.all_match(), "{report}");
    // Sum-product cases carry all eight streams.
    assert!(report.cases.iter().all(|c| c.backends.len() == 8));
}

#[test]
fn no_runtime_flag_ever_contradicts_a_provably_safe_verdict() {
    // The soundness contract of the range analysis, asserted across the
    // full backend matrix: wherever the static pass says every
    // instruction is provably in range, no backend's sticky
    // overflow/underflow flag may fire — for any model, semiring or
    // format in the acceptance set.
    let mut models = small_models();
    models.extend(random_models(23, 2));
    let config = ConformanceConfig {
        batch: 24,
        ariths: vec![
            ArithSpec::parse("f64").unwrap(),
            ArithSpec::parse("fixed:2.14").unwrap(),
            ArithSpec::parse("fixed:8.24").unwrap(),
            ArithSpec::parse("float:8.23").unwrap(),
        ],
        ..ConformanceConfig::default()
    };
    let report = run_conformance(&models, &config).unwrap();
    assert_eq!(report.total_flag_conflicts(), 0, "{report}");
    assert!(report.all_match(), "{report}");
    // f64 is flagless by construction: the analysis must prove all of
    // its cases safe, so the contract is not vacuous.
    for case in report.cases.iter().filter(|c| c.arith == ArithSpec::F64) {
        assert!(case.static_safe, "f64 case not proven safe:\n{report}");
        assert!(case.backends.iter().all(|b| !b.range_flag));
    }
}

#[test]
fn injected_runtime_flag_on_a_safe_case_turns_the_verdict_red() {
    // Direction 1 of the flag cross-check: a backend that raises a range
    // flag where the analysis proved safety must fail the case. f64
    // cases are all provably safe, so the injected flag is a guaranteed
    // contradiction.
    let models = vec![("sprinkler".to_string(), networks::sprinkler())];
    let config = ConformanceConfig {
        batch: 8,
        ariths: vec![ArithSpec::F64],
        inject_flag_fault: Some(BackendKind::SimdCompact),
        ..ConformanceConfig::default()
    };
    let report = run_conformance(&models, &config).unwrap();
    assert!(!report.all_match(), "flag fault went undetected:\n{report}");
    assert!(report.total_flag_conflicts() > 0);
    assert_eq!(report.total_mismatches(), 0, "values still agree");
    assert!(report.to_string().contains("verdict: FAIL"));
}

#[test]
fn forged_safe_verdict_on_a_flagging_case_turns_the_verdict_red() {
    // Direction 2: a static pass that (wrongly) claims safety where the
    // runtime genuinely flushes to zero must also fail. float:3.8 has
    // min_positive = 0.25, so asia's small products underflow for real.
    let models = vec![("asia".to_string(), networks::asia())];
    let base = ConformanceConfig {
        batch: 24,
        ariths: vec![ArithSpec::parse("float:3.8").unwrap()],
        semirings: vec![problp_ac::Semiring::SumProduct],
        ..ConformanceConfig::default()
    };

    // Honest analysis: it predicts the underflow, so no conflict.
    let report = run_conformance(&models, &base).unwrap();
    assert!(report.all_match(), "{report}");
    let case = &report.cases[0];
    assert!(!case.static_safe, "the analysis must warn here");
    assert!(case.static_may_underflow > 0);
    assert!(
        case.backends.iter().any(|b| b.range_flag),
        "the runtime must genuinely flag here:\n{report}"
    );

    // Forged verdict: same run, claimed safe — every flagging backend
    // becomes a conflict.
    let forged = ConformanceConfig {
        force_static_safe: true,
        ..base
    };
    let report = run_conformance(&models, &forged).unwrap();
    assert!(!report.all_match(), "{report}");
    assert!(report.total_flag_conflicts() > 0);
}

#[test]
fn report_rendering_names_the_verdict() {
    let report = run_conformance(
        &[("sprinkler".to_string(), networks::sprinkler())],
        &ConformanceConfig {
            batch: 4,
            ..ConformanceConfig::default()
        },
    )
    .unwrap();
    let text = report.to_string();
    assert!(text.contains("verdict: PASS"), "{text}");
    assert!(text.contains("pipeline"), "{text}");
    assert!(text.contains("sum-product"), "{text}");
}
