//! Configuration vocabulary of the harness: which arithmetics, which
//! backends, what to corrupt, and the error type.

use problp_ac::Semiring;
use problp_num::{FixedFormat, FloatFormat};

// The arithmetic-naming vocabulary moved into `problp-num` so that the
// static analyses of `problp-verify` and this harness speak the same
// `f64 | fixed:I.F | float:E.M` grammar; re-exported here so existing
// `problp_conformance::ArithSpec` callers keep compiling.
pub use problp_num::ArithSpec;

/// One of the eight result streams the harness compares.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BackendKind {
    /// The scalar tree-walk reference, [`problp_ac::AcGraph::evaluate_nodes`].
    Scalar,
    /// The compact execution tape, [`problp_engine::Tape::compile`].
    TapeCompact,
    /// The full-values execution tape, [`problp_engine::Tape::compile_full`].
    TapeFull,
    /// The compact tape through the fused superinstruction stream
    /// ([`problp_engine::Tape::fuse`], `MulAcc` + `Reduce` enabled).
    FusedCompact,
    /// The full-values tape through the fused stream (chain collapse
    /// only — `MulAcc` is compact-mode-only by construction).
    FusedFull,
    /// The compact tape through the SIMD lane-chunked kernels
    /// ([`problp_engine::KernelKind::Simd`]).
    SimdCompact,
    /// The sequential ALU schedule, [`problp_hw::Schedule`].
    Schedule,
    /// The cycle-accurate pipelined datapath, [`problp_hw::PipelineSim`].
    Pipeline,
}

impl BackendKind {
    /// Every backend, in report order (the reference first).
    pub const ALL: [BackendKind; 8] = [
        BackendKind::Scalar,
        BackendKind::TapeCompact,
        BackendKind::TapeFull,
        BackendKind::FusedCompact,
        BackendKind::FusedFull,
        BackendKind::SimdCompact,
        BackendKind::Schedule,
        BackendKind::Pipeline,
    ];

    /// The backend's short CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::TapeCompact => "tape",
            BackendKind::TapeFull => "tape-full",
            BackendKind::FusedCompact => "fused-compact",
            BackendKind::FusedFull => "fused-full",
            BackendKind::SimdCompact => "simd-compact",
            BackendKind::Schedule => "schedule",
            BackendKind::Pipeline => "pipeline",
        }
    }

    /// Parses a short name as printed by [`BackendKind::name`].
    pub fn parse(name: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|b| b.name() == name)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The short report name of a semiring.
pub fn semiring_name(semiring: Semiring) -> &'static str {
    match semiring {
        Semiring::SumProduct => "sum-product",
        Semiring::MaxProduct => "max-product",
        Semiring::MinProduct => "min-product",
    }
}

/// Knobs of one conformance run.
#[derive(Clone, Debug)]
pub struct ConformanceConfig {
    /// Evidence lanes per case.
    pub batch: usize,
    /// Seed of the per-model evidence batches (and of any generated
    /// models); the same seed reproduces the same lanes.
    pub seed: u64,
    /// Arithmetics to cross-check (each is a separate case).
    pub ariths: Vec<ArithSpec>,
    /// Semirings to cross-check. The hardware backends only join
    /// [`Semiring::SumProduct`] cases (the datapath has no max/min
    /// operators).
    pub semirings: Vec<Semiring>,
    /// Test-only fault injection: flip the low bit of lane 0 in this
    /// backend's stream before comparison, in every case. A harness that
    /// does not go red under injection is not checking anything.
    pub inject_fault: Option<BackendKind>,
    /// Test-only fault injection for the static/runtime flag
    /// cross-check: pretend this backend raised a runtime range flag in
    /// every case, so a statically-safe case must go red.
    pub inject_flag_fault: Option<BackendKind>,
    /// Test-only fault injection for the other direction of the flag
    /// cross-check: report every case as statically provably-safe
    /// regardless of what the range analysis concluded, so a case whose
    /// runtime genuinely flags must go red.
    pub force_static_safe: bool,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            batch: 64,
            seed: 7,
            ariths: vec![
                ArithSpec::F64,
                ArithSpec::Fixed(FixedFormat::new(2, 14).expect("valid format")),
                ArithSpec::Float(FloatFormat::new(8, 13).expect("valid format")),
            ],
            semirings: vec![
                Semiring::SumProduct,
                Semiring::MaxProduct,
                Semiring::MinProduct,
            ],
            inject_fault: None,
            inject_flag_fault: None,
            force_static_safe: false,
        }
    }
}

/// Errors of a conformance run: any backend failing to build or evaluate
/// is itself a conformance failure, reported with the source error.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ConformanceError {
    /// Circuit compilation or scalar evaluation failed.
    Ac(problp_ac::AcError),
    /// Netlist construction or a hardware executor failed.
    Hw(problp_hw::HwError),
    /// Tape compilation or an engine sweep failed.
    Engine(problp_engine::EngineError),
    /// Evidence-batch construction failed.
    Bayes(problp_bayes::BayesError),
    /// The static verifier rejected a tape the harness was about to
    /// range-analyze — the tape itself is malformed.
    Verify(problp_engine::VerifyError),
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConformanceError::Ac(e) => write!(f, "circuit backend failed: {e}"),
            ConformanceError::Hw(e) => write!(f, "hardware backend failed: {e}"),
            ConformanceError::Engine(e) => write!(f, "engine backend failed: {e}"),
            ConformanceError::Bayes(e) => write!(f, "evidence construction failed: {e}"),
            ConformanceError::Verify(e) => {
                write!(f, "static verification rejected a tape: {e}")
            }
        }
    }
}

impl std::error::Error for ConformanceError {}

impl From<problp_ac::AcError> for ConformanceError {
    fn from(e: problp_ac::AcError) -> Self {
        ConformanceError::Ac(e)
    }
}

impl From<problp_hw::HwError> for ConformanceError {
    fn from(e: problp_hw::HwError) -> Self {
        ConformanceError::Hw(e)
    }
}

impl From<problp_engine::EngineError> for ConformanceError {
    fn from(e: problp_engine::EngineError) -> Self {
        ConformanceError::Engine(e)
    }
}

impl From<problp_bayes::BayesError> for ConformanceError {
    fn from(e: problp_bayes::BayesError) -> Self {
        ConformanceError::Bayes(e)
    }
}

impl From<problp_engine::VerifyError> for ConformanceError {
    fn from(e: problp_engine::VerifyError) -> Self {
        ConformanceError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_spec_round_trips_through_parse() {
        for spec in ["f64", "fixed:2.14", "float:8.13"] {
            let parsed = ArithSpec::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
        }
        assert_eq!(ArithSpec::parse("fixed:2"), None);
        assert_eq!(ArithSpec::parse("decimal:1.2"), None);
        assert_eq!(ArithSpec::parse("fixed:0.0"), None, "zero-width format");
    }

    #[test]
    fn backend_names_round_trip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.name()), Some(b));
        }
        assert_eq!(BackendKind::parse("verilog"), None);
    }
}
