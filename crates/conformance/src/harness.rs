//! The differential harness: build every backend from the same binarized
//! circuit, evaluate the same seeded evidence batch on each, and compare
//! the result streams bit for bit.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use problp_ac::{compile, transform::binarize, AcGraph, Semiring};
use problp_bayes::{BayesNet, Evidence, EvidenceBatch, VarId};
use problp_engine::{Engine, KernelKind, KernelSet};
use problp_hw::{Netlist, PipelineSim, Schedule};
use problp_num::{
    F64Arith, FixedArith, FixedFormat, Flags, FloatArith, FloatFormat, Representation,
};

use crate::report::{BackendRun, CaseReport, ConformanceReport};
use crate::spec::{ArithSpec, BackendKind, ConformanceConfig, ConformanceError};

/// Full-value node vectors are spot-checked on this many lanes per case
/// (the root value is checked on *every* lane).
const NODE_CHECK_LANES: usize = 3;

/// Generates `count` seeded random Bayesian networks of varying shape —
/// the harness's model source when no named models are given.
///
/// Sizes cycle through 4..=8 variables with up to 2 parents and arities
/// up to 3: large enough to exercise balancing registers, fan-out and
/// register recycling, small enough that the cycle-accurate simulation
/// of `count × |ariths| × |semirings|` cases stays fast.
pub fn random_models(seed: u64, count: usize) -> Vec<(String, BayesNet)> {
    (0..count)
        .map(|i| {
            let vars = 4 + (i % 5);
            let net =
                problp_bayes::networks::random_network(seed.wrapping_add(i as u64), vars, 2, 3);
            (format!("rand{i}(v{vars})"), net)
        })
        .collect()
}

/// Builds a seeded evidence batch over `net`'s variables: each lane
/// observes every variable independently with probability 1/2, in a
/// uniformly random state. The same `(net, lanes, seed)` always yields
/// the same batch.
pub fn random_batch(net: &BayesNet, lanes: usize, seed: u64) -> EvidenceBatch {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = EvidenceBatch::new(net.var_count());
    for _ in 0..lanes {
        let mut e = Evidence::empty(net.var_count());
        for v in 0..net.var_count() {
            if rng.random_bool(0.5) {
                let arity = net.variable(VarId::from_index(v)).arity();
                e.observe(VarId::from_index(v), rng.random_range(0..arity));
            }
        }
        batch.push(&e);
    }
    batch
}

/// Runs the full differential cross-check: every `(model, arithmetic,
/// semiring)` combination becomes one case whose backends must agree
/// bit for bit with the scalar reference.
///
/// # Errors
///
/// Returns [`ConformanceError`] if any backend fails to build or
/// evaluate — a backend that errors where another succeeds is itself a
/// conformance violation, surfaced with the source error.
pub fn run_conformance(
    models: &[(String, BayesNet)],
    config: &ConformanceConfig,
) -> Result<ConformanceReport, ConformanceError> {
    let mut cases = Vec::new();
    for (index, (name, net)) in models.iter().enumerate() {
        let bin = binarize(&compile(net)?)?;
        let batch = random_batch(net, config.batch, config.seed.wrapping_add(index as u64));
        for arith in &config.ariths {
            for &semiring in &config.semirings {
                let case = match arith {
                    ArithSpec::F64 => run_case(
                        name,
                        &bin,
                        &batch,
                        *arith,
                        semiring,
                        config,
                        F64Arith::new(),
                    )?,
                    ArithSpec::Fixed(f) => run_case(
                        name,
                        &bin,
                        &batch,
                        *arith,
                        semiring,
                        config,
                        FixedArith::new(*f),
                    )?,
                    ArithSpec::Float(f) => run_case(
                        name,
                        &bin,
                        &batch,
                        *arith,
                        semiring,
                        config,
                        FloatArith::new(*f),
                    )?,
                };
                cases.push(case);
            }
        }
    }
    Ok(ConformanceReport {
        seed: config.seed,
        lanes_per_case: config.batch,
        cases,
    })
}

/// The structural representation tag of the netlist for an arithmetic.
/// Execution semantics come from the [`Arith`] context, not the tag; the
/// tag only sizes the word width in the netlist's reports, so the `f64`
/// reference borrows the widest stock float format.
fn netlist_repr(arith: ArithSpec) -> Representation {
    match arith {
        ArithSpec::F64 => Representation::Float(FloatFormat::ieee_single()),
        ArithSpec::Fixed(f) => Representation::Fixed(normalize_fixed(f)),
        ArithSpec::Float(f) => Representation::Float(f),
    }
}

/// `Netlist::from_ac` rejects fraction-free fixed formats (the emitted
/// multiplier idiom needs `F >= 1`); the conformance arithmetic still
/// runs in the exact requested format, only the structural tag is
/// widened.
fn normalize_fixed(f: FixedFormat) -> FixedFormat {
    if f.frac_bits() >= 1 {
        f
    } else {
        FixedFormat::new(f.int_bits(), 1).expect("widening by one bit stays valid")
    }
}

/// Flips the low bit of lane 0 when this backend is the configured fault
/// target — the test-only corruption that proves the harness goes red.
fn maybe_inject(bits: &mut [u64], backend: BackendKind, config: &ConformanceConfig) {
    if config.inject_fault == Some(backend) {
        if let Some(b) = bits.first_mut() {
            *b ^= 1;
        }
    }
}

/// Whether a backend counts as having raised a runtime range flag:
/// its sticky `overflow`/`underflow` bits, or the test-only flag fault
/// that proves the static/runtime cross-check goes red.
fn range_flag(flags: Flags, backend: BackendKind, config: &ConformanceConfig) -> bool {
    flags.range_violation() || config.inject_flag_fault == Some(backend)
}

/// Compares one backend's stream against the reference bits.
fn diff(reference: &[u64], got: &[u64]) -> (usize, Option<usize>) {
    let mismatched = reference.iter().zip(got).filter(|(a, b)| a != b).count()
        + reference.len().abs_diff(got.len());
    let first = reference
        .iter()
        .zip(got)
        .position(|(a, b)| a != b)
        .or((reference.len() != got.len()).then_some(reference.len().min(got.len())));
    (mismatched, first)
}

/// One `(model, arithmetic, semiring)` case: evaluate every applicable
/// backend and compare bit patterns lane by lane.
fn run_case<A>(
    model: &str,
    bin: &AcGraph,
    batch: &EvidenceBatch,
    arith: ArithSpec,
    semiring: Semiring,
    config: &ConformanceConfig,
    ctx: A,
) -> Result<CaseReport, ConformanceError>
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    let lanes = batch.lanes();
    let stats = bin.stats();
    let scalar_ops = (stats.sums + stats.products) as u64;
    let mut backends = Vec::new();

    // Scalar reference: one tree-walk per lane.
    let start = Instant::now();
    let mut reference: Vec<u64> = Vec::with_capacity(lanes);
    let mut scalar_flags = Flags::default();
    for lane in 0..lanes {
        let mut c = ctx.clone();
        c.clear_flags();
        let v = bin.evaluate_with(&mut c, &batch.evidence(lane), semiring)?;
        scalar_flags.merge(c.flags());
        reference.push(c.to_f64(&v).to_bits());
    }
    let scalar_wall = start.elapsed();
    maybe_inject(&mut reference, BackendKind::Scalar, config);
    backends.push(BackendRun {
        backend: BackendKind::Scalar,
        mismatched_lanes: 0,
        first_mismatch: None,
        wall: scalar_wall,
        work: scalar_ops * lanes as u64,
        range_flag: range_flag(scalar_flags, BackendKind::Scalar, config),
    });

    // Compact tape: the serving engine's production path. Its tape is
    // also what the static range analysis reads for the flag
    // cross-check — the verdicts hold for every backend because all of
    // them compute the same operations in the same format.
    let engine = Engine::from_graph(bin, semiring, ctx.clone())?;
    let static_report = problp_verify::analyze(engine.tape(), arith)?;
    let static_safe = config.force_static_safe || static_report.all_safe();
    let start = Instant::now();
    let result = engine.evaluate_batch(batch)?;
    let wall = start.elapsed();
    let mut bits: Vec<u64> = result
        .values
        .iter()
        .map(|v| engine.context().to_f64(v).to_bits())
        .collect();
    maybe_inject(&mut bits, BackendKind::TapeCompact, config);
    let (mismatched, first) = diff(&reference, &bits);
    backends.push(BackendRun {
        backend: BackendKind::TapeCompact,
        mismatched_lanes: mismatched,
        first_mismatch: first,
        wall,
        work: engine.tape().stats().instrs as u64 * lanes as u64,
        range_flag: range_flag(result.flags, BackendKind::TapeCompact, config),
    });

    // Full-values tape: root bits on every lane, whole node vectors on a
    // few (register i = node i, so the spot check pins the entire sweep,
    // not just the root).
    let full = Engine::from_graph_full(bin, semiring, ctx.clone())?;
    let start = Instant::now();
    let result = full.evaluate_batch(batch)?;
    let wall = start.elapsed();
    let full_flags = result.flags;
    let mut bits: Vec<u64> = result
        .values
        .iter()
        .map(|v| full.context().to_f64(v).to_bits())
        .collect();
    maybe_inject(&mut bits, BackendKind::TapeFull, config);
    let (mut mismatched, mut first) = diff(&reference, &bits);
    for lane in 0..lanes.min(NODE_CHECK_LANES) {
        let e = batch.evidence(lane);
        let (node_values, _) = full.evaluate_nodes_one(&e)?;
        let mut c = ctx.clone();
        c.clear_flags();
        let scalar_nodes = bin.evaluate_nodes(&mut c, &e, semiring)?;
        let diverged = node_values
            .iter()
            .zip(&scalar_nodes)
            .any(|(a, b)| full.context().to_f64(a).to_bits() != c.to_f64(b).to_bits());
        if diverged && bits.get(lane) == reference.get(lane) {
            // Root agreed but an internal node diverged: still a
            // conformance failure of this lane.
            mismatched += 1;
            first = first.or(Some(lane));
        }
    }
    backends.push(BackendRun {
        backend: BackendKind::TapeFull,
        mismatched_lanes: mismatched,
        first_mismatch: first,
        wall,
        work: full.tape().stats().instrs as u64 * lanes as u64,
        range_flag: range_flag(full_flags, BackendKind::TapeFull, config),
    });

    // Fused superinstruction streams: the compact tape gets MulAcc +
    // Reduce, the full-values tape chain collapse only — both must
    // reproduce the scalar reference bit for bit, flags included.
    for (kind, base) in [
        (BackendKind::FusedCompact, &engine),
        (BackendKind::FusedFull, &full),
    ] {
        let fused_engine = base.clone().with_kernel(KernelKind::Fused);
        let start = Instant::now();
        let result = fused_engine.evaluate_batch(batch)?;
        let wall = start.elapsed();
        let mut bits: Vec<u64> = result
            .values
            .iter()
            .map(|v| fused_engine.context().to_f64(v).to_bits())
            .collect();
        maybe_inject(&mut bits, kind, config);
        let (mismatched, first) = diff(&reference, &bits);
        let fused_instrs = fused_engine
            .fused_tape()
            .map_or(0, |f| f.instrs().len() as u64);
        backends.push(BackendRun {
            backend: kind,
            mismatched_lanes: mismatched,
            first_mismatch: first,
            wall,
            work: fused_instrs * lanes as u64,
            range_flag: range_flag(result.flags, kind, config),
        });
    }

    // SIMD lane-chunked kernels over the unfused compact tape.
    {
        let simd_engine = engine.clone().with_kernel(KernelKind::Simd);
        let start = Instant::now();
        let result = simd_engine.evaluate_batch(batch)?;
        let wall = start.elapsed();
        let mut bits: Vec<u64> = result
            .values
            .iter()
            .map(|v| simd_engine.context().to_f64(v).to_bits())
            .collect();
        maybe_inject(&mut bits, BackendKind::SimdCompact, config);
        let (mismatched, first) = diff(&reference, &bits);
        backends.push(BackendRun {
            backend: BackendKind::SimdCompact,
            mismatched_lanes: mismatched,
            first_mismatch: first,
            wall,
            work: simd_engine.tape().stats().instrs as u64 * lanes as u64,
            range_flag: range_flag(result.flags, BackendKind::SimdCompact, config),
        });
    }

    // The hardware executors implement the sum/product datapath only.
    if semiring == Semiring::SumProduct {
        let netlist = Netlist::from_ac(bin, netlist_repr(arith))?;

        let schedule = Schedule::from_netlist(&netlist)?;
        let mut c = ctx.clone();
        c.clear_flags();
        let start = Instant::now();
        let values = schedule.execute_batch(&mut c, batch)?;
        let wall = start.elapsed();
        let mut bits: Vec<u64> = values.iter().map(|v| c.to_f64(v).to_bits()).collect();
        maybe_inject(&mut bits, BackendKind::Schedule, config);
        let (mismatched, first) = diff(&reference, &bits);
        backends.push(BackendRun {
            backend: BackendKind::Schedule,
            mismatched_lanes: mismatched,
            first_mismatch: first,
            wall,
            work: schedule.stats().instructions as u64 * lanes as u64,
            range_flag: range_flag(c.flags(), BackendKind::Schedule, config),
        });

        let mut fresh = ctx.clone();
        fresh.clear_flags();
        let mut sim = PipelineSim::new(&netlist, fresh);
        let cycles_before = sim.cycle();
        let start = Instant::now();
        let values = sim.run_batch(batch)?;
        let wall = start.elapsed();
        let mut bits: Vec<u64> = values
            .iter()
            .map(|v| sim.context().to_f64(v).to_bits())
            .collect();
        maybe_inject(&mut bits, BackendKind::Pipeline, config);
        let (mismatched, first) = diff(&reference, &bits);
        backends.push(BackendRun {
            backend: BackendKind::Pipeline,
            mismatched_lanes: mismatched,
            first_mismatch: first,
            wall,
            work: sim.cycle() - cycles_before,
            range_flag: range_flag(sim.context().flags(), BackendKind::Pipeline, config),
        });
    }

    Ok(CaseReport {
        model: model.to_string(),
        arith,
        semiring,
        lanes,
        backends,
        static_safe,
        static_may_saturate: static_report.may_saturate,
        static_may_underflow: static_report.may_underflow,
    })
}
