//! # problp-conformance — differential cross-check of every execution
//! backend
//!
//! The paper's central claim is that the generated low-precision hardware
//! computes the *same* inference answers as the software evaluation at
//! the chosen representation. This crate turns that claim into standing,
//! reusable infrastructure: a seeded differential harness that evaluates
//! the same evidence lanes on every backend the workspace has and
//! asserts the results **bit-identical** per arithmetic and semiring.
//!
//! The five result streams per case:
//!
//! | backend | crate | what runs |
//! |---------|-------|-----------|
//! | `scalar` (reference) | `problp-ac` | [`problp_ac::AcGraph::evaluate_nodes`], one tree-walk per lane |
//! | `tape` | `problp-engine` | compact tape ([`problp_engine::Tape::compile`]), SoA batch sweep |
//! | `tape-full` | `problp-engine` | full-values tape ([`problp_engine::Tape::compile_full`]), plus per-node spot checks |
//! | `schedule` | `problp-hw` | sequential ALU ([`problp_hw::Schedule::execute_batch`]) |
//! | `pipeline` | `problp-hw` | cycle-accurate pipelined datapath, streaming one lane per cycle ([`problp_hw::PipelineSim::run_batch`]) |
//!
//! The hardware backends model a sum/product datapath, so they join the
//! comparison for [`problp_ac::Semiring::SumProduct`]; the software
//! backends are cross-checked on all three semirings. Alongside the
//! equality verdict the harness reports per-backend work (pipeline
//! cycles, ALU cycles, tape instructions, scalar operator applications)
//! and measured lane throughput.
//!
//! Fault injection ([`ConformanceConfig::inject_fault`]) deliberately
//! corrupts one backend's stream so tests — and sceptical operators —
//! can confirm the harness actually detects divergence instead of
//! vacuously passing.
//!
//! # Examples
//!
//! ```
//! use problp_bayes::networks;
//! use problp_conformance::{run_conformance, ConformanceConfig};
//!
//! let models = vec![("sprinkler".to_string(), networks::sprinkler())];
//! let config = ConformanceConfig {
//!     batch: 16,
//!     ..ConformanceConfig::default()
//! };
//! let report = run_conformance(&models, &config)?;
//! assert!(report.all_match());
//! # Ok::<(), problp_conformance::ConformanceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
mod report;
mod spec;

pub use harness::{random_batch, random_models, run_conformance};
pub use report::{BackendRun, CaseReport, ConformanceReport};
pub use spec::{semiring_name, ArithSpec, BackendKind, ConformanceConfig, ConformanceError};
