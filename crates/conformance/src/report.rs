//! Report types: per-backend verdicts, work/throughput stats and the
//! rendered conformance matrix.

use std::time::Duration;

use problp_ac::Semiring;

use crate::spec::{semiring_name, ArithSpec, BackendKind};

/// One backend's run within a case.
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// Which backend produced this stream.
    pub backend: BackendKind,
    /// Lanes whose bit pattern diverged from the scalar reference
    /// (always 0 for the reference itself).
    pub mismatched_lanes: usize,
    /// The first diverging lane, if any.
    pub first_mismatch: Option<usize>,
    /// Wall-clock time of the evaluation (excluding backend
    /// construction).
    pub wall: Duration,
    /// The backend's work in its own cost model: clock cycles for the
    /// pipeline (`lanes + depth - 1` when streaming), ALU cycles
    /// (instructions × lanes) for the schedule, tape instructions ×
    /// lanes for the engine modes, operator applications × lanes for the
    /// scalar walk.
    pub work: u64,
    /// Whether this backend's evaluation raised a runtime `overflow` or
    /// `underflow` sticky flag. Cross-checked against the static range
    /// analysis: a raise on a case whose every instruction is
    /// *provably-safe* is a soundness violation and fails the case.
    pub range_flag: bool,
}

impl BackendRun {
    /// Measured lane throughput, lanes per second.
    pub fn lanes_per_sec(&self, lanes: usize) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            lanes as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// One `(model, arithmetic, semiring)` case.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// The model's display name.
    pub model: String,
    /// The arithmetic the case ran in.
    pub arith: ArithSpec,
    /// The semiring the case ran in.
    pub semiring: Semiring,
    /// Evidence lanes evaluated.
    pub lanes: usize,
    /// Per-backend verdicts, scalar reference first. Hardware backends
    /// appear only in sum-product cases.
    pub backends: Vec<BackendRun>,
    /// `true` when the static range analysis proved every tape
    /// instruction of the case safe for its arithmetic (no instruction
    /// can saturate or underflow, parameter conversion included).
    pub static_safe: bool,
    /// Instructions the range analysis classified *may-saturate*.
    pub static_may_saturate: usize,
    /// Instructions the range analysis classified *may-underflow*.
    pub static_may_underflow: usize,
}

impl CaseReport {
    /// Returns `true` if every backend matched the reference bit for bit
    /// **and** no backend's runtime flags contradicted the static
    /// analysis.
    pub fn all_match(&self) -> bool {
        self.backends.iter().all(|b| b.mismatched_lanes == 0) && self.flag_conflicts() == 0
    }

    /// Backends whose runtime range flags contradict a *provably-safe*
    /// static verdict — each one is a soundness violation of the range
    /// analysis (or a lying backend).
    pub fn flag_conflicts(&self) -> usize {
        if self.static_safe {
            self.backends.iter().filter(|b| b.range_flag).count()
        } else {
            0
        }
    }
}

/// The outcome of a full conformance run.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// The evidence/model seed of the run.
    pub seed: u64,
    /// Lanes per case the run was configured for.
    pub lanes_per_case: usize,
    /// Every `(model, arithmetic, semiring)` case.
    pub cases: Vec<CaseReport>,
}

impl ConformanceReport {
    /// Returns `true` if every backend of every case was bit-identical
    /// to the scalar reference.
    pub fn all_match(&self) -> bool {
        self.cases.iter().all(CaseReport::all_match)
    }

    /// Total diverging lanes across all cases and backends.
    pub fn total_mismatches(&self) -> usize {
        self.cases
            .iter()
            .flat_map(|c| &c.backends)
            .map(|b| b.mismatched_lanes)
            .sum()
    }

    /// Total static/runtime flag conflicts across all cases.
    pub fn total_flag_conflicts(&self) -> usize {
        self.cases.iter().map(CaseReport::flag_conflicts).sum()
    }

    /// Total compared result streams (backends × cases, reference
    /// excluded).
    pub fn compared_streams(&self) -> usize {
        self.cases
            .iter()
            .map(|c| c.backends.len().saturating_sub(1))
            .sum()
    }
}

/// Renders a throughput figure compactly (`12.3M`, `456k`, `789`).
fn si(rate: f64) -> String {
    if !rate.is_finite() {
        return "-".to_string();
    }
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

impl std::fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "differential conformance: {} cases, {} lanes each (seed {})",
            self.cases.len(),
            self.lanes_per_case,
            self.seed
        )?;
        writeln!(
            f,
            "backends: scalar reference vs tape, tape-full, fused-compact, \
             fused-full, simd-compact, schedule, pipeline \
             (hardware joins sum-product cases)"
        )?;
        writeln!(
            f,
            "static: range-analysis verdict per case — `safe` (every \
             instruction provably in range), `sN`/`uN` (N may-saturate / \
             may-underflow instructions); FLAG!n marks n backends whose \
             runtime flags contradicted a safe verdict"
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "{:<14} {:<12} {:<12} {:>7} {:<8}  {:<10} {:<10} {:<10} {:<10} {:<10} {:<10} {:<10}  {:>10} {:>11}",
            "model",
            "arith",
            "semiring",
            "lanes",
            "static",
            "tape",
            "tape-full",
            "fused",
            "fused-full",
            "simd",
            "schedule",
            "pipeline",
            "pipe cyc",
            "tape lane/s"
        )?;
        for case in &self.cases {
            let cell = |kind: BackendKind| -> String {
                match case.backends.iter().find(|b| b.backend == kind) {
                    None => "-".to_string(),
                    Some(b) if b.mismatched_lanes == 0 => "ok".to_string(),
                    Some(b) => format!(
                        "X({} @{})",
                        b.mismatched_lanes,
                        b.first_mismatch.unwrap_or(0)
                    ),
                }
            };
            let pipe_cycles = case
                .backends
                .iter()
                .find(|b| b.backend == BackendKind::Pipeline)
                .map_or("-".to_string(), |b| b.work.to_string());
            let tape_rate = case
                .backends
                .iter()
                .find(|b| b.backend == BackendKind::TapeCompact)
                .map_or("-".to_string(), |b| si(b.lanes_per_sec(case.lanes)));
            let static_cell = if case.flag_conflicts() > 0 {
                format!("FLAG!{}", case.flag_conflicts())
            } else if case.static_safe {
                "safe".to_string()
            } else {
                let mut s = String::new();
                if case.static_may_saturate > 0 {
                    s.push_str(&format!("s{}", case.static_may_saturate));
                }
                if case.static_may_underflow > 0 {
                    s.push_str(&format!("u{}", case.static_may_underflow));
                }
                if s.is_empty() {
                    // Unsafe with clean instruction verdicts: the
                    // parameter conversion itself can range-flag.
                    s.push_str("conv");
                }
                s
            };
            writeln!(
                f,
                "{:<14} {:<12} {:<12} {:>7} {:<8}  {:<10} {:<10} {:<10} {:<10} {:<10} {:<10} {:<10}  {:>10} {:>11}",
                case.model,
                case.arith.to_string(),
                semiring_name(case.semiring),
                case.lanes,
                static_cell,
                cell(BackendKind::TapeCompact),
                cell(BackendKind::TapeFull),
                cell(BackendKind::FusedCompact),
                cell(BackendKind::FusedFull),
                cell(BackendKind::SimdCompact),
                cell(BackendKind::Schedule),
                cell(BackendKind::Pipeline),
                pipe_cycles,
                tape_rate
            )?;
        }
        writeln!(f)?;
        if self.all_match() {
            writeln!(
                f,
                "verdict: PASS — {} result streams bit-identical to the scalar \
                 reference, no runtime flag contradicted a provably-safe verdict",
                self.compared_streams()
            )
        } else {
            writeln!(
                f,
                "verdict: FAIL — {} diverging lanes across {} result streams, \
                 {} static/runtime flag conflicts",
                self.total_mismatches(),
                self.compared_streams(),
                self.total_flag_conflicts()
            )
        }
    }
}
