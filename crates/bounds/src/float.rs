//! Floating-point error propagation (paper §3.1.2).
//!
//! Every rounding multiplies the true value by a factor `(1 ± ε)` with
//! `ε = 2^-(M+1)`. The *rounding count* `c` of each node bounds how many
//! such factors its value has accumulated:
//!
//! * parameter leaf: `c = 1` (the conversion rounding, eq. 6);
//! * indicator leaf: `c = 0` (0 and 1 are exact);
//! * adder: `c = max(c_a, c_b) + 1` — eq. (10);
//! * multiplier: `c = c_a + c_b + 1` — eq. (12).
//!
//! The root satisfies `f̃ ∈ [f·(1-ε)^c, f·(1+ε)^c]`, giving the relative
//! bound `δ = (1+ε)^c - 1` (paper §3.1.3). Max-product evaluation is
//! covered conservatively: `max` introduces no rounding and
//! `|max(ã,b̃)|` carries at most `max(c_a, c_b) <= max(c_a, c_b) + 1`
//! factors.

use problp_ac::{AcGraph, AcNode};
use problp_num::FloatFormat;

use crate::analysis::AcAnalysis;
use crate::error::BoundsError;

/// Result of a floating-point error propagation.
#[derive(Clone, PartialEq, Debug)]
pub struct FloatErrorBound {
    node_counts: Vec<u64>,
    root_count: u64,
    epsilon: f64,
}

impl FloatErrorBound {
    /// Rounding count of every node.
    pub fn node_counts(&self) -> &[u64] {
        &self.node_counts
    }

    /// Rounding count at the root: the structural constant `c` of paper
    /// §3.1.3 (depends only on the circuit, not on `M`).
    pub fn root_count(&self) -> u64 {
        self.root_count
    }

    /// The per-operation relative error `ε = 2^-(M+1)`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Relative error bound of a single evaluation:
    /// `δ = (1+ε)^c - 1` (the larger of the two one-sided bounds).
    pub fn relative_bound(&self) -> f64 {
        relative_from_count(self.root_count, self.epsilon)
    }

    /// Relative error bound of a *ratio* of two evaluations of this
    /// circuit (conditional probability, paper eq. 17): the worst case is
    /// an undisturbed numerator over a fully disturbed denominator,
    /// `δ = (1-ε)^-c - 1`.
    pub fn ratio_relative_bound(&self) -> f64 {
        let c = self.root_count as f64;
        // exp(-c·ln(1-ε)) - 1, via ln_1p/exp_m1 so that tiny ε (large
        // mantissas) does not underflow to an exactly-zero bound.
        (-c * (-self.epsilon).ln_1p()).exp_m1()
    }
}

/// `(1+ε)^c - 1`, the single-evaluation relative bound, computed via
/// `ln_1p`/`exp_m1` to stay accurate for tiny `ε`.
fn relative_from_count(count: u64, epsilon: f64) -> f64 {
    (count as f64 * epsilon.ln_1p()).exp_m1()
}

/// Propagates floating-point rounding counts through a binarized circuit.
///
/// # Errors
///
/// Returns [`BoundsError::NotBinary`], [`BoundsError::MissingRoot`], or
/// [`BoundsError::AnalysisMismatch`].
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::networks;
/// use problp_bounds::{float_error_bound, AcAnalysis};
/// use problp_num::FloatFormat;
///
/// let ac = binarize(&compile(&networks::sprinkler())?)?;
/// let analysis = AcAnalysis::new(&ac)?;
/// let b = float_error_bound(&ac, &analysis, FloatFormat::new(8, 12)?)?;
/// // The relative bound is roughly c * 2^-13 for small ε.
/// assert!(b.relative_bound() < b.root_count() as f64 * b.epsilon() * 1.01);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn float_error_bound(
    ac: &AcGraph,
    analysis: &AcAnalysis,
    format: FloatFormat,
) -> Result<FloatErrorBound, BoundsError> {
    let root = ac.root().ok_or(BoundsError::MissingRoot)?;
    if !ac.is_binary() {
        return Err(BoundsError::NotBinary);
    }
    if analysis.len() != ac.len() {
        return Err(BoundsError::AnalysisMismatch {
            analysis: analysis.len(),
            circuit: ac.len(),
        });
    }
    let mut counts = vec![0u64; ac.len()];
    for (i, node) in ac.nodes().iter().enumerate() {
        counts[i] = match node {
            AcNode::Indicator { .. } => 0,
            AcNode::Param { .. } => 1,
            AcNode::Sum(children) => {
                1 + children
                    .iter()
                    .map(|c| counts[c.index()])
                    .max()
                    .expect("validated operator")
            }
            AcNode::Product(children) => {
                1 + children.iter().map(|c| counts[c.index()]).sum::<u64>()
            }
        };
    }
    Ok(FloatErrorBound {
        root_count: counts[root.index()],
        node_counts: counts,
        epsilon: format.epsilon(),
    })
}

/// The smallest exponent width whose normal range covers every value the
/// circuit can produce, with a relative error margin `delta` on both ends
/// (paper §3.1.4's max- and min-value analyses).
///
/// # Errors
///
/// Returns [`BoundsError::RangeUnrepresentable`] if no supported width
/// covers the range.
pub fn required_exp_bits(analysis: &AcAnalysis, delta: f64) -> Result<u32, BoundsError> {
    // Largest exponent that must be representable (overflow side).
    let hi = analysis.global_max() * (1.0 + delta);
    // Smallest positive value that must stay normal (underflow side).
    let lo = analysis.global_min_positive() * (1.0 - delta).max(f64::MIN_POSITIVE);
    let needed_max = if hi > 0.0 { hi.log2().ceil() as i64 } else { 0 };
    let needed_min = if lo > 0.0 && lo.is_finite() {
        lo.log2().floor() as i64
    } else {
        0
    };
    for exp_bits in problp_num::MIN_EXP_BITS..=problp_num::MAX_EXP_BITS {
        let bias = (1i64 << (exp_bits - 1)) - 1;
        let emax = bias;
        let emin = 1 - bias;
        if needed_max <= emax && needed_min >= emin {
            return Ok(exp_bits);
        }
    }
    Err(BoundsError::RangeUnrepresentable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::transform::binarize;
    use problp_ac::{compile, Semiring};
    use problp_bayes::{networks, Evidence, VarId};
    use problp_num::{Arith, FloatArith};

    fn fixture() -> (problp_bayes::BayesNet, AcGraph, AcAnalysis) {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        (net, ac, analysis)
    }

    #[test]
    fn counts_follow_the_paper_recursion() {
        // p = θ1·λ (c = 1+0+1 = 2), s = p + θ2 (c = max(2,1)+1 = 3),
        // r = s·θ3 (c = 3+1+1 = 5).
        let mut g = AcGraph::new(vec![2]);
        let lam = g.indicator(VarId::from_index(0), 0).unwrap();
        let t1 = g.param(0.3).unwrap();
        let t2 = g.param(0.5).unwrap();
        let t3 = g.param(0.25).unwrap();
        let p = g.product(vec![lam, t1]).unwrap();
        let s = g.sum(vec![p, t2]).unwrap();
        let r = g.product(vec![s, t3]).unwrap();
        g.set_root(r);
        let analysis = AcAnalysis::new(&g).unwrap();
        let b = float_error_bound(&g, &analysis, FloatFormat::new(8, 10).unwrap()).unwrap();
        assert_eq!(b.node_counts()[p.index()], 2);
        assert_eq!(b.node_counts()[s.index()], 3);
        assert_eq!(b.root_count(), 5);
    }

    #[test]
    fn relative_bound_dominates_observed_error() {
        let (net, ac, analysis) = fixture();
        for mant in [8u32, 12, 16, 20] {
            let format = FloatFormat::new(10, mant).unwrap();
            let bound = float_error_bound(&ac, &analysis, format).unwrap();
            let delta = bound.relative_bound();
            for v in 0..net.var_count() {
                for s in 0..net.variable(VarId::from_index(v)).arity() {
                    let mut e = Evidence::empty(net.var_count());
                    e.observe(VarId::from_index(v), s);
                    let exact = ac.evaluate(&e).unwrap();
                    if exact == 0.0 {
                        continue;
                    }
                    let mut lp = FloatArith::new(format);
                    let got = ac.evaluate_with(&mut lp, &e, Semiring::SumProduct).unwrap();
                    let rel = ((lp.to_f64(&got) - exact) / exact).abs();
                    assert!(
                        rel <= delta,
                        "M={mant} v={v} s={s}: rel {rel} > bound {delta}"
                    );
                    assert!(!lp.flags().range_violation());
                }
            }
        }
    }

    #[test]
    fn ratio_bound_exceeds_single_bound() {
        let (_, ac, analysis) = fixture();
        let b = float_error_bound(&ac, &analysis, FloatFormat::new(8, 12).unwrap()).unwrap();
        assert!(b.ratio_relative_bound() >= b.relative_bound());
        // Both are ~ c·ε for small ε.
        let ce = b.root_count() as f64 * b.epsilon();
        assert!(b.ratio_relative_bound() < 1.1 * ce);
    }

    #[test]
    fn bound_halves_per_extra_mantissa_bit() {
        let (_, ac, analysis) = fixture();
        let mut prev = f64::INFINITY;
        for mant in 4..24 {
            let b = float_error_bound(&ac, &analysis, FloatFormat::new(10, mant).unwrap())
                .unwrap()
                .relative_bound();
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn count_is_structural_not_format_dependent() {
        let (_, ac, analysis) = fixture();
        let a = float_error_bound(&ac, &analysis, FloatFormat::new(8, 4).unwrap()).unwrap();
        let b = float_error_bound(&ac, &analysis, FloatFormat::new(11, 40).unwrap()).unwrap();
        assert_eq!(a.root_count(), b.root_count());
        assert!(a.relative_bound() > b.relative_bound());
    }

    #[test]
    fn exp_bits_cover_the_range_without_flags() {
        let net = networks::alarm(7);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let b = float_error_bound(&ac, &analysis, FloatFormat::new(8, 12).unwrap()).unwrap();
        let e_bits = required_exp_bits(&analysis, b.relative_bound()).unwrap();
        let format = FloatFormat::new(e_bits, 12).unwrap();
        // Evaluate a few evidences: no overflow/underflow may occur.
        let mut lp = FloatArith::new(format);
        for v in [0usize, 10, 20, 30] {
            let mut e = Evidence::empty(net.var_count());
            e.observe(VarId::from_index(v), 0);
            let _ = ac.evaluate_with(&mut lp, &e, Semiring::SumProduct).unwrap();
        }
        assert!(
            !lp.flags().range_violation(),
            "chosen E={e_bits} must avoid range violations, flags: {}",
            lp.flags()
        );
    }

    #[test]
    fn smaller_exponent_width_would_underflow() {
        let net = networks::alarm(7);
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let needed = required_exp_bits(&analysis, 0.01).unwrap();
        assert!(needed > 2, "alarm needs a non-trivial exponent range");
        // One bit less must violate the range on at least the analysis
        // extremes.
        let format = FloatFormat::new(needed - 1, 12).unwrap();
        let lo = analysis.global_min_positive();
        let hi = analysis.global_max();
        let lo_ok = lo >= format.min_positive();
        let hi_ok = hi <= format.max_finite();
        assert!(!(lo_ok && hi_ok), "E-1 should not cover the range");
    }

    #[test]
    fn non_binary_circuits_are_rejected() {
        let ac = compile(&networks::sprinkler()).unwrap();
        if !ac.is_binary() {
            let analysis = AcAnalysis::new(&ac).unwrap();
            let err =
                float_error_bound(&ac, &analysis, FloatFormat::new(8, 8).unwrap()).unwrap_err();
            assert_eq!(err, BoundsError::NotBinary);
        }
    }
}
