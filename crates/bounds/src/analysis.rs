//! Max-value and min-value analyses (paper §3.1.4).
//!
//! Every node of an AC is a monotonically increasing function of its
//! inputs (only sums and products of non-negative values), so all nodes
//! attain their maxima simultaneously when every indicator is 1 — a single
//! evaluation yields every node's maximum. Symmetrically, evaluating with
//! all indicators at 1 and sums replaced by *minimum over non-zero
//! children* yields each node's smallest achievable positive value.
//!
//! These two vectors drive:
//! * the `a_max`/`b_max` terms of the fixed-point multiplier model (eq. 5),
//! * integer-bit sizing (overflow) and exponent-bit sizing (overflow and
//!   underflow).
//!
//! Both evaluations run on the execution engine's **full-values tape**
//! (`problp-engine`, [`Tape::compile_full`]): every node keeps a stable
//! register, so one engine sweep returns the whole per-node value vector
//! — bit-identical to the scalar tree-walk the analyses used before the
//! engine existed ([`AcAnalysis::new_scalar`] keeps that reference
//! implementation, and the test suite pins the two against each other).

use problp_ac::{AcGraph, Semiring};
use problp_bayes::Evidence;
use problp_engine::{Engine, Tape};
use problp_num::F64Arith;

use crate::error::BoundsError;

/// Per-node value ranges of an arithmetic circuit.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::networks;
/// use problp_bounds::AcAnalysis;
///
/// let ac = binarize(&compile(&networks::sprinkler())?)?;
/// let analysis = AcAnalysis::new(&ac)?;
/// // The network polynomial evaluates to 1 at the all-ones input.
/// assert!((analysis.root_max() - 1.0).abs() < 1e-12);
/// assert!(analysis.root_min_positive() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct AcAnalysis {
    max_values: Vec<f64>,
    min_values: Vec<f64>,
    root_max: f64,
    root_min: f64,
    global_max: f64,
    global_min_positive: f64,
}

impl AcAnalysis {
    /// Runs both analyses on a circuit, evaluating through the execution
    /// engine's full-values tape (one sweep per semiring; bit-identical
    /// to [`AcAnalysis::new_scalar`]).
    ///
    /// # Errors
    ///
    /// Returns [`BoundsError::MissingRoot`] for rootless circuits.
    pub fn new(ac: &AcGraph) -> Result<Self, BoundsError> {
        let all_ones = Evidence::empty(ac.var_count());
        let sweep = |semiring: Semiring| -> Result<Vec<f64>, BoundsError> {
            let tape = Tape::compile_full(ac, semiring).map_err(|_| BoundsError::MissingRoot)?;
            let engine = Engine::new(tape, F64Arith::new());
            let (values, _) = engine
                .evaluate_nodes_one(&all_ones)
                .map_err(|_| BoundsError::MissingRoot)?;
            Ok(values)
        };
        let max_values = sweep(Semiring::SumProduct)?;
        let min_values = sweep(Semiring::MinProduct)?;
        Self::from_values(ac, max_values, min_values)
    }

    /// Runs both analyses on the scalar tree-walk
    /// ([`AcGraph::evaluate_nodes`]) — the pre-engine reference
    /// implementation, kept so the engine-backed path can be pinned
    /// bit-identical against it.
    ///
    /// # Errors
    ///
    /// Returns [`BoundsError::MissingRoot`] for rootless circuits.
    pub fn new_scalar(ac: &AcGraph) -> Result<Self, BoundsError> {
        let all_ones = Evidence::empty(ac.var_count());
        let mut ctx = F64Arith::new();
        let max_values = ac
            .evaluate_nodes(&mut ctx, &all_ones, Semiring::SumProduct)
            .map_err(|_| BoundsError::MissingRoot)?;
        let min_values = ac
            .evaluate_nodes(&mut ctx, &all_ones, Semiring::MinProduct)
            .map_err(|_| BoundsError::MissingRoot)?;
        Self::from_values(ac, max_values, min_values)
    }

    /// Aggregates the two per-node vectors into an analysis.
    fn from_values(
        ac: &AcGraph,
        max_values: Vec<f64>,
        min_values: Vec<f64>,
    ) -> Result<Self, BoundsError> {
        let root = ac.root().ok_or(BoundsError::MissingRoot)?;
        let reachable = ac.reachable();
        let mut global_max = 0.0f64;
        let mut global_min_positive = f64::INFINITY;
        for i in 0..max_values.len() {
            if !reachable[i] {
                continue;
            }
            global_max = global_max.max(max_values[i]);
            if min_values[i] > 0.0 {
                global_min_positive = global_min_positive.min(min_values[i]);
            }
        }
        Ok(AcAnalysis {
            root_max: max_values[root.index()],
            root_min: min_values[root.index()],
            global_max,
            global_min_positive,
            max_values,
            min_values,
        })
    }

    /// The number of analyzed nodes.
    pub fn len(&self) -> usize {
        self.max_values.len()
    }

    /// Returns `true` for an empty analysis (never for a valid circuit).
    pub fn is_empty(&self) -> bool {
        self.max_values.is_empty()
    }

    /// Maximum achievable value of each node (all indicators at 1).
    pub fn max_values(&self) -> &[f64] {
        &self.max_values
    }

    /// Smallest achievable positive value of each node (zero when a node
    /// is structurally zero).
    pub fn min_values(&self) -> &[f64] {
        &self.min_values
    }

    /// Maximum achievable root value. For an AC compiled from a Bayesian
    /// network this is the polynomial at the all-ones input, i.e. exactly 1.
    pub fn root_max(&self) -> f64 {
        self.root_max
    }

    /// Smallest achievable positive root value: the `min Pr(e)` of the
    /// paper's eq. 14.
    pub fn root_min_positive(&self) -> f64 {
        self.root_min
    }

    /// Largest value over all (reachable) nodes — sizes integer/exponent
    /// bits against overflow.
    pub fn global_max(&self) -> f64 {
        self.global_max
    }

    /// Smallest positive value over all (reachable) nodes — sizes exponent
    /// bits against underflow.
    pub fn global_min_positive(&self) -> f64 {
        self.global_min_positive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::compile;
    use problp_ac::transform::binarize;
    use problp_bayes::{networks, VarId};

    #[test]
    fn max_analysis_bounds_every_evidence() {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let mut ctx = F64Arith::new();
        // Try a range of single-variable observations: every node value
        // must stay below its analyzed maximum.
        for v in 0..net.var_count() {
            for s in 0..net.variable(VarId::from_index(v)).arity() {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(v), s);
                let values = ac
                    .evaluate_nodes(&mut ctx, &e, Semiring::SumProduct)
                    .unwrap();
                for (i, &val) in values.iter().enumerate() {
                    assert!(
                        val <= analysis.max_values()[i] + 1e-12,
                        "node {i}: {val} > {}",
                        analysis.max_values()[i]
                    );
                }
            }
        }
    }

    #[test]
    fn min_analysis_lower_bounds_nonzero_values() {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        let mut ctx = F64Arith::new();
        for v in 0..net.var_count() {
            for s in 0..net.variable(VarId::from_index(v)).arity() {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(v), s);
                let values = ac
                    .evaluate_nodes(&mut ctx, &e, Semiring::SumProduct)
                    .unwrap();
                for (i, &val) in values.iter().enumerate() {
                    if val > 0.0 {
                        assert!(
                            val >= analysis.min_values()[i] - 1e-15,
                            "node {i}: {val} < {}",
                            analysis.min_values()[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn root_max_is_one_for_network_polynomials() {
        for net in [networks::figure1(), networks::sprinkler(), networks::asia()] {
            let ac = binarize(&compile(&net).unwrap()).unwrap();
            let a = AcAnalysis::new(&ac).unwrap();
            assert!((a.root_max() - 1.0).abs() < 1e-9);
            assert!(a.root_min_positive() > 0.0);
            assert!(a.root_min_positive() <= 1.0);
            assert!(a.global_max() >= a.root_max());
            assert!(a.global_min_positive() <= a.root_min_positive());
        }
    }

    #[test]
    fn alarm_analysis_is_finite_and_positive() {
        let ac = binarize(&compile(&networks::alarm(7)).unwrap()).unwrap();
        let a = AcAnalysis::new(&ac).unwrap();
        assert!(a.global_max().is_finite());
        assert!(a.global_min_positive() > 0.0);
        assert!(
            a.global_min_positive() < 1e-3,
            "alarm has small node values"
        );
    }

    #[test]
    fn rootless_circuit_is_rejected() {
        let g = AcGraph::new(vec![2]);
        assert_eq!(AcAnalysis::new(&g).unwrap_err(), BoundsError::MissingRoot);
        assert_eq!(
            AcAnalysis::new_scalar(&g).unwrap_err(),
            BoundsError::MissingRoot
        );
    }

    /// The tentpole contract: the engine-backed analysis (full-values
    /// tape) is bit-identical to the scalar tree-walk, on the standard
    /// networks, on binarized forms, and across a sweep of random
    /// circuits.
    #[test]
    fn engine_backed_analysis_is_bit_identical_to_scalar() {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        let mut circuits: Vec<AcGraph> = Vec::new();
        for net in [
            networks::figure1(),
            networks::sprinkler(),
            networks::student(),
            networks::asia(),
            networks::alarm(7),
        ] {
            let raw = compile(&net).unwrap();
            circuits.push(binarize(&raw).unwrap());
            circuits.push(raw);
        }
        for seed in 0..24 {
            let net = networks::random_network(seed, 7, 3, 3);
            circuits.push(compile(&net).unwrap());
        }
        for ac in &circuits {
            let engine = AcAnalysis::new(ac).unwrap();
            let scalar = AcAnalysis::new_scalar(ac).unwrap();
            assert_eq!(bits(engine.max_values()), bits(scalar.max_values()));
            assert_eq!(bits(engine.min_values()), bits(scalar.min_values()));
            assert_eq!(engine.root_max().to_bits(), scalar.root_max().to_bits());
            assert_eq!(
                engine.root_min_positive().to_bits(),
                scalar.root_min_positive().to_bits()
            );
            assert_eq!(engine.global_max().to_bits(), scalar.global_max().to_bits());
            assert_eq!(
                engine.global_min_positive().to_bits(),
                scalar.global_min_positive().to_bits()
            );
        }
    }
}
