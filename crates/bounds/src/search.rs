//! Bit-width optimisation (paper §3.3).
//!
//! ProbLP "evaluates the bounds starting with 2 fraction bits and 2
//! mantissa bits, and increments them until the error-requirement is
//! satisfied. Then, it estimates the least number of integer and exponent
//! bits required by the min and max analysis". This module implements
//! exactly that search, reporting the paper's `>64` idiom as
//! [`BoundsError::ToleranceUnreachable`].

use problp_ac::AcGraph;
use problp_num::{FixedFormat, FloatFormat};

use crate::analysis::AcAnalysis;
use crate::error::BoundsError;
use crate::fixed::{required_int_bits, LeafErrorModel};
use crate::float::required_exp_bits;
use crate::query::{fixed_query_bound, float_query_bound, QueryType, Tolerance};

/// Default cap on fraction/mantissa bits (the paper reports `>64` when the
/// cap is exceeded).
pub const DEFAULT_MAX_PRECISION_BITS: u32 = 64;

/// An optimised representation choice together with its guaranteed bound.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FixedChoice {
    /// The minimal fixed-point format meeting the tolerance.
    pub format: FixedFormat,
    /// The worst-case error bound achieved at that format (in the
    /// tolerance's metric).
    pub bound: f64,
}

/// An optimised floating-point choice together with its guaranteed bound.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FloatChoice {
    /// The minimal floating-point format meeting the tolerance.
    pub format: FloatFormat,
    /// The worst-case error bound achieved at that format (in the
    /// tolerance's metric).
    pub bound: f64,
}

/// Finds the least number of fraction bits meeting the tolerance, then
/// sizes the integer bits from the max-value analysis.
///
/// # Errors
///
/// * [`BoundsError::FixedUnsupportedForQuery`] for conditional-relative
///   queries (ProbLP always picks float there, paper §3.2.2);
/// * [`BoundsError::ToleranceUnreachable`] when even `max_frac_bits`
///   fraction bits cannot meet the tolerance (reported as `>64` in the
///   paper's Table 2);
/// * propagation errors for malformed inputs.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::networks;
/// use problp_bounds::{optimize_fixed, AcAnalysis, LeafErrorModel, QueryType, Tolerance};
///
/// let ac = binarize(&compile(&networks::sprinkler())?)?;
/// let analysis = AcAnalysis::new(&ac)?;
/// let choice = optimize_fixed(
///     &ac,
///     &analysis,
///     QueryType::Marginal,
///     Tolerance::Absolute(0.01),
///     LeafErrorModel::WorstCase,
///     64,
/// )?;
/// assert!(choice.bound <= 0.01);
/// assert!(choice.format.int_bits() >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize_fixed(
    ac: &AcGraph,
    analysis: &AcAnalysis,
    query: QueryType,
    tolerance: Tolerance,
    leaf_model: LeafErrorModel,
    max_frac_bits: u32,
) -> Result<FixedChoice, BoundsError> {
    tolerance.validate()?;
    if matches!(
        (query, tolerance),
        (QueryType::Conditional, Tolerance::Relative(_))
    ) {
        return Err(BoundsError::FixedUnsupportedForQuery);
    }
    let mut last_bound = f64::INFINITY;
    for frac in 2..=max_frac_bits {
        // Integer bits do not influence the error bound; use a probe
        // format wide enough for any range.
        let probe = FixedFormat::new(1, frac).expect("probe format is valid");
        let bound = fixed_query_bound(ac, analysis, probe, query, tolerance, leaf_model)?;
        last_bound = bound;
        if bound <= tolerance.value() {
            let int_bits = required_int_bits(analysis, bound);
            let format =
                FixedFormat::new(int_bits, frac).map_err(|_| BoundsError::RangeUnrepresentable)?;
            return Ok(FixedChoice { format, bound });
        }
    }
    Err(BoundsError::ToleranceUnreachable {
        max_bits: max_frac_bits,
        bound_at_max: last_bound,
    })
}

/// Finds the least number of mantissa bits meeting the tolerance, then
/// sizes the exponent bits from the max- and min-value analyses.
///
/// # Errors
///
/// * [`BoundsError::ToleranceUnreachable`] when even `max_mant_bits`
///   mantissa bits cannot meet the tolerance;
/// * [`BoundsError::RangeUnrepresentable`] when no supported exponent
///   width covers the circuit's value range;
/// * propagation errors for malformed inputs.
pub fn optimize_float(
    ac: &AcGraph,
    analysis: &AcAnalysis,
    query: QueryType,
    tolerance: Tolerance,
    max_mant_bits: u32,
) -> Result<FloatChoice, BoundsError> {
    tolerance.validate()?;
    let mut last_bound = f64::INFINITY;
    for mant in 2..=max_mant_bits {
        // Exponent bits do not influence the error bound; probe with the
        // widest exponent.
        let probe =
            FloatFormat::new(problp_num::MAX_EXP_BITS, mant).expect("probe format is valid");
        let bound = float_query_bound(ac, analysis, probe, query, tolerance)?;
        last_bound = bound;
        if bound <= tolerance.value() {
            let exp_bits = required_exp_bits(analysis, bound)?;
            let format =
                FloatFormat::new(exp_bits, mant).map_err(|_| BoundsError::RangeUnrepresentable)?;
            return Ok(FloatChoice { format, bound });
        }
    }
    Err(BoundsError::ToleranceUnreachable {
        max_bits: max_mant_bits,
        bound_at_max: last_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::fixed_query_bound as fqb;
    use problp_ac::compile;
    use problp_ac::transform::binarize;
    use problp_bayes::networks;

    fn fixture() -> (AcGraph, AcAnalysis) {
        let ac = binarize(&compile(&networks::student()).unwrap()).unwrap();
        let a = AcAnalysis::new(&ac).unwrap();
        (ac, a)
    }

    #[test]
    fn fixed_choice_is_minimal() {
        let (ac, a) = fixture();
        let tol = Tolerance::Absolute(0.01);
        let choice = optimize_fixed(
            &ac,
            &a,
            QueryType::Marginal,
            tol,
            LeafErrorModel::WorstCase,
            64,
        )
        .unwrap();
        assert!(choice.bound <= 0.01);
        // One fewer fraction bit must violate the tolerance.
        if choice.format.frac_bits() > 2 {
            let narrower = FixedFormat::new(1, choice.format.frac_bits() - 1).unwrap();
            let bound = fqb(
                &ac,
                &a,
                narrower,
                QueryType::Marginal,
                tol,
                LeafErrorModel::WorstCase,
            )
            .unwrap();
            assert!(bound > 0.01);
        }
    }

    #[test]
    fn float_choice_is_minimal() {
        let (ac, a) = fixture();
        let tol = Tolerance::Relative(0.01);
        let choice = optimize_float(&ac, &a, QueryType::Conditional, tol, 64).unwrap();
        assert!(choice.bound <= 0.01);
        assert!(choice.format.mant_bits() >= 2);
        assert!(choice.format.exp_bits() >= 2);
    }

    #[test]
    fn tighter_tolerances_need_more_bits() {
        let (ac, a) = fixture();
        let loose = optimize_fixed(
            &ac,
            &a,
            QueryType::Marginal,
            Tolerance::Absolute(0.01),
            LeafErrorModel::WorstCase,
            64,
        )
        .unwrap();
        let tight = optimize_fixed(
            &ac,
            &a,
            QueryType::Marginal,
            Tolerance::Absolute(1e-6),
            LeafErrorModel::WorstCase,
            64,
        )
        .unwrap();
        assert!(tight.format.frac_bits() > loose.format.frac_bits());
    }

    #[test]
    fn conditional_relative_fixed_is_rejected() {
        let (ac, a) = fixture();
        let err = optimize_fixed(
            &ac,
            &a,
            QueryType::Conditional,
            Tolerance::Relative(0.01),
            LeafErrorModel::WorstCase,
            64,
        )
        .unwrap_err();
        assert_eq!(err, BoundsError::FixedUnsupportedForQuery);
    }

    #[test]
    fn unreachable_tolerance_reports_the_cap() {
        let (ac, a) = fixture();
        let err = optimize_fixed(
            &ac,
            &a,
            QueryType::Marginal,
            Tolerance::Absolute(1e-30),
            LeafErrorModel::WorstCase,
            20, // low cap to force failure
        )
        .unwrap_err();
        match err {
            BoundsError::ToleranceUnreachable {
                max_bits,
                bound_at_max,
            } => {
                assert_eq!(max_bits, 20);
                assert!(bound_at_max > 1e-30);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_tolerances_are_rejected() {
        let (ac, a) = fixture();
        assert!(matches!(
            optimize_fixed(
                &ac,
                &a,
                QueryType::Marginal,
                Tolerance::Absolute(0.0),
                LeafErrorModel::WorstCase,
                64,
            ),
            Err(BoundsError::InvalidTolerance { .. })
        ));
        assert!(matches!(
            optimize_float(&ac, &a, QueryType::Marginal, Tolerance::Relative(-3.0), 64),
            Err(BoundsError::InvalidTolerance { .. })
        ));
    }

    #[test]
    fn alarm_fixed_matches_paper_magnitude() {
        // Paper Table 2: Alarm, marginal, abs 0.01 -> I=1, F=14. Our AC
        // differs from ACE's, but the fraction bits should land in the
        // same territory (roughly 10-20).
        let ac = binarize(&compile(&networks::alarm(7)).unwrap()).unwrap();
        let a = AcAnalysis::new(&ac).unwrap();
        let choice = optimize_fixed(
            &ac,
            &a,
            QueryType::Marginal,
            Tolerance::Absolute(0.01),
            LeafErrorModel::WorstCase,
            64,
        )
        .unwrap();
        assert!(
            (8..=24).contains(&choice.format.frac_bits()),
            "F={} outside expected territory",
            choice.format.frac_bits()
        );
        assert_eq!(choice.format.int_bits(), 1, "alarm values stay below 2");
    }

    #[test]
    fn alarm_float_matches_paper_magnitude() {
        // Paper Table 2: Alarm, cond. rel 0.01 -> E=8, M=13.
        let ac = binarize(&compile(&networks::alarm(7)).unwrap()).unwrap();
        let a = AcAnalysis::new(&ac).unwrap();
        let choice = optimize_float(
            &ac,
            &a,
            QueryType::Conditional,
            Tolerance::Relative(0.01),
            64,
        )
        .unwrap();
        assert!(
            (8..=24).contains(&choice.format.mant_bits()),
            "M={} outside expected territory",
            choice.format.mant_bits()
        );
        assert!(
            (5..=12).contains(&choice.format.exp_bits()),
            "E={} outside expected territory",
            choice.format.exp_bits()
        );
    }
}
