//! # problp-bounds — worst-case error bounds for ProbLP
//!
//! The analytical heart of the ProbLP framework (paper §3): given an
//! arithmetic circuit, this crate
//!
//! 1. runs the **max-value** and **min-value analyses** ([`AcAnalysis`],
//!    §3.1.4) — a single all-indicators-one evaluation bounds every node
//!    from above, and the same evaluation with sums replaced by min over
//!    non-zero children bounds every node's positive values from below;
//! 2. propagates **fixed-point absolute error bounds**
//!    ([`fixed_error_bound`], eqs. 2–5) and **floating-point relative
//!    error bounds** ([`float_error_bound`], eqs. 6–12) through every
//!    operator;
//! 3. composes them into **query-level bounds** ([`fixed_query_bound`],
//!    [`float_query_bound`], §3.2) for marginal, conditional and MPE
//!    queries under absolute or relative tolerances;
//! 4. searches for the **least bit widths** meeting a tolerance
//!    ([`optimize_fixed`], [`optimize_float`], §3.3), sizing integer and
//!    exponent bits so that no overflow or underflow can occur.
//!
//! # Examples
//!
//! ```
//! use problp_ac::{compile, transform::binarize};
//! use problp_bayes::networks;
//! use problp_bounds::{
//!     optimize_fixed, optimize_float, AcAnalysis, LeafErrorModel, QueryType, Tolerance,
//! };
//!
//! let ac = binarize(&compile(&networks::alarm(7))?)?;
//! let analysis = AcAnalysis::new(&ac)?;
//! let fx = optimize_fixed(
//!     &ac, &analysis,
//!     QueryType::Marginal,
//!     Tolerance::Absolute(0.01),
//!     LeafErrorModel::WorstCase,
//!     64,
//! )?;
//! let fl = optimize_float(&ac, &analysis, QueryType::Marginal, Tolerance::Absolute(0.01), 64)?;
//! println!("fixed {} vs float {}", fx.format, fl.format);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod error;
mod fixed;
mod float;
mod query;
mod search;

pub use analysis::AcAnalysis;
pub use error::BoundsError;
pub use fixed::{
    fixed_error_bound, fixed_error_bound_with_rounding, required_frac_bits, required_int_bits,
    FixedErrorBound, LeafErrorModel,
};
pub use float::{float_error_bound, required_exp_bits, FloatErrorBound};
pub use query::{fixed_query_bound, float_query_bound, QueryType, Tolerance};
pub use search::{
    optimize_fixed, optimize_float, FixedChoice, FloatChoice, DEFAULT_MAX_PRECISION_BITS,
};
