//! Error types for the bounds engine.

/// Errors produced by the error-bound analyses.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum BoundsError {
    /// The circuit contains operators with more than two inputs; the
    /// paper's error models are per-two-input operator, so analyses
    /// require a binarized circuit (see `problp_ac::transform::binarize`).
    NotBinary,
    /// The circuit has no root.
    MissingRoot,
    /// An analysis was paired with a circuit of a different size.
    AnalysisMismatch {
        /// Nodes in the analysis.
        analysis: usize,
        /// Nodes in the circuit.
        circuit: usize,
    },
    /// The requested tolerance is not a positive finite number.
    InvalidTolerance {
        /// The offending value.
        value: f64,
    },
    /// Fixed point cannot bound the relative error of a conditional query
    /// (paper §3.2.2: ProbLP always chooses floating point there).
    FixedUnsupportedForQuery,
    /// No bit width within the search cap satisfies the tolerance.
    ToleranceUnreachable {
        /// The largest width tried.
        max_bits: u32,
        /// The bound achieved at that width.
        bound_at_max: f64,
    },
    /// The circuit's value range cannot be represented by any supported
    /// exponent/integer width.
    RangeUnrepresentable,
}

impl std::fmt::Display for BoundsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundsError::NotBinary => {
                write!(
                    f,
                    "error analyses require a binarized circuit (two-input operators)"
                )
            }
            BoundsError::MissingRoot => write!(f, "the circuit has no root node"),
            BoundsError::AnalysisMismatch { analysis, circuit } => write!(
                f,
                "analysis over {analysis} nodes paired with a circuit of {circuit} nodes"
            ),
            BoundsError::InvalidTolerance { value } => {
                write!(f, "tolerance must be positive and finite, got {value}")
            }
            BoundsError::FixedUnsupportedForQuery => write!(
                f,
                "fixed point cannot bound the relative error of conditional queries"
            ),
            BoundsError::ToleranceUnreachable {
                max_bits,
                bound_at_max,
            } => write!(
                f,
                "tolerance unreachable within {max_bits} bits (bound {bound_at_max:.3e} at the cap)"
            ),
            BoundsError::RangeUnrepresentable => {
                write!(f, "circuit values exceed every supported number range")
            }
        }
    }
}

impl std::error::Error for BoundsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BoundsError::ToleranceUnreachable {
            max_bits: 64,
            bound_at_max: 0.5,
        };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<BoundsError>();
    }
}
