//! Query-level error bounds (paper §3.2).
//!
//! The per-evaluation bounds of §3.1 are composed into bounds on the three
//! query types:
//!
//! * **Marginal / MPE** — one AC evaluation: the §3.1.3 bounds apply
//!   directly.
//! * **Conditional** — a ratio of two evaluations; fixed point divides an
//!   absolute error by `min Pr(e)` (eq. 14) and cannot bound the relative
//!   error at all (ProbLP then always chooses float, §3.2.2); float's
//!   relative factors simply stack (eq. 17).

use problp_ac::AcGraph;
use problp_num::{FixedFormat, FloatFormat};

use crate::analysis::AcAnalysis;
use crate::error::BoundsError;
use crate::fixed::{fixed_error_bound, LeafErrorModel};
use crate::float::float_error_bound;

/// The probabilistic query a circuit will serve (paper §3, "Type of
/// query").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum QueryType {
    /// Marginal probability `Pr(q, e)`: one upward pass.
    #[default]
    Marginal,
    /// Conditional probability `Pr(q | e) = Pr(q, e) / Pr(e)`: two upward
    /// passes and a division.
    Conditional,
    /// Most probable explanation: one max-product pass.
    Mpe,
}

impl std::fmt::Display for QueryType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryType::Marginal => write!(f, "marginal"),
            QueryType::Conditional => write!(f, "conditional"),
            QueryType::Mpe => write!(f, "MPE"),
        }
    }
}

/// The application's error tolerance (paper §3, "Error tolerance").
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Tolerance {
    /// Bound on `|~Pr - Pr|`.
    Absolute(f64),
    /// Bound on `|~Pr - Pr| / Pr`.
    Relative(f64),
}

impl Tolerance {
    /// The numeric tolerance value.
    pub fn value(&self) -> f64 {
        match *self {
            Tolerance::Absolute(v) | Tolerance::Relative(v) => v,
        }
    }

    /// Validates that the tolerance is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`BoundsError::InvalidTolerance`] otherwise.
    pub fn validate(&self) -> Result<(), BoundsError> {
        let v = self.value();
        if v > 0.0 && v.is_finite() {
            Ok(())
        } else {
            Err(BoundsError::InvalidTolerance { value: v })
        }
    }
}

impl std::fmt::Display for Tolerance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tolerance::Absolute(v) => write!(f, "abs. err {v}"),
            Tolerance::Relative(v) => write!(f, "rel. err {v}"),
        }
    }
}

/// Worst-case error of serving `query` with fixed-point arithmetic of the
/// given format, in the metric of `tolerance` (absolute or relative).
///
/// # Errors
///
/// Returns [`BoundsError::FixedUnsupportedForQuery`] for
/// conditional-relative queries (paper §3.2.2) and propagates propagation
/// errors.
pub fn fixed_query_bound(
    ac: &AcGraph,
    analysis: &AcAnalysis,
    format: FixedFormat,
    query: QueryType,
    tolerance: Tolerance,
    leaf_model: LeafErrorModel,
) -> Result<f64, BoundsError> {
    let eval = fixed_error_bound(ac, analysis, format, leaf_model)?;
    let delta = eval.root_bound();
    match (query, tolerance) {
        // One evaluation: the absolute bound is Δ (eq. 3/5 composition).
        (QueryType::Marginal | QueryType::Mpe, Tolerance::Absolute(_)) => Ok(delta),
        // Relative error of one evaluation: Δ / min Pr (min-value
        // analysis of the output).
        (QueryType::Marginal | QueryType::Mpe, Tolerance::Relative(_)) => {
            Ok(delta / analysis.root_min_positive())
        }
        // Conditional, absolute: eq. (14), Δ1max / min Pr(e).
        (QueryType::Conditional, Tolerance::Absolute(_)) => {
            Ok(delta / analysis.root_min_positive())
        }
        // Conditional, relative: eq. (15) has no usable bound.
        (QueryType::Conditional, Tolerance::Relative(_)) => {
            Err(BoundsError::FixedUnsupportedForQuery)
        }
    }
}

/// Worst-case error of serving `query` with floating-point arithmetic of
/// the given format, in the metric of `tolerance`.
///
/// # Errors
///
/// Propagates propagation errors.
pub fn float_query_bound(
    ac: &AcGraph,
    analysis: &AcAnalysis,
    format: FloatFormat,
    query: QueryType,
    tolerance: Tolerance,
) -> Result<f64, BoundsError> {
    let eval = float_error_bound(ac, analysis, format)?;
    match (query, tolerance) {
        // Single evaluation, absolute: |f̃ - f| <= f·δ <= f_max·δ.
        (QueryType::Marginal | QueryType::Mpe, Tolerance::Absolute(_)) => {
            Ok(analysis.root_max() * eval.relative_bound())
        }
        // Single evaluation, relative: δ directly.
        (QueryType::Marginal | QueryType::Mpe, Tolerance::Relative(_)) => Ok(eval.relative_bound()),
        // Conditional: the ratio bound (eq. 17); for the absolute metric
        // Pr(q|e) <= 1 scales it.
        (QueryType::Conditional, Tolerance::Relative(_)) => Ok(eval.ratio_relative_bound()),
        (QueryType::Conditional, Tolerance::Absolute(_)) => Ok(eval.ratio_relative_bound()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::compile;
    use problp_ac::transform::binarize;
    use problp_bayes::networks;

    fn fixture() -> (AcGraph, AcAnalysis) {
        let ac = binarize(&compile(&networks::student()).unwrap()).unwrap();
        let a = AcAnalysis::new(&ac).unwrap();
        (ac, a)
    }

    #[test]
    fn fixed_conditional_relative_is_rejected() {
        let (ac, a) = fixture();
        let err = fixed_query_bound(
            &ac,
            &a,
            FixedFormat::new(1, 16).unwrap(),
            QueryType::Conditional,
            Tolerance::Relative(0.01),
            LeafErrorModel::WorstCase,
        )
        .unwrap_err();
        assert_eq!(err, BoundsError::FixedUnsupportedForQuery);
    }

    #[test]
    fn fixed_relative_bounds_are_larger_than_absolute() {
        let (ac, a) = fixture();
        let f = FixedFormat::new(1, 16).unwrap();
        let abs = fixed_query_bound(
            &ac,
            &a,
            f,
            QueryType::Marginal,
            Tolerance::Absolute(0.01),
            LeafErrorModel::WorstCase,
        )
        .unwrap();
        let rel = fixed_query_bound(
            &ac,
            &a,
            f,
            QueryType::Marginal,
            Tolerance::Relative(0.01),
            LeafErrorModel::WorstCase,
        )
        .unwrap();
        // min Pr < 1 inflates the relative bound.
        assert!(rel > abs);
        let cond_abs = fixed_query_bound(
            &ac,
            &a,
            f,
            QueryType::Conditional,
            Tolerance::Absolute(0.01),
            LeafErrorModel::WorstCase,
        )
        .unwrap();
        assert_eq!(cond_abs, rel); // both divide by min Pr(e)
    }

    #[test]
    fn float_bounds_are_insensitive_to_small_outputs() {
        let (ac, a) = fixture();
        let f = FloatFormat::new(10, 16).unwrap();
        let marg_rel =
            float_query_bound(&ac, &a, f, QueryType::Marginal, Tolerance::Relative(0.01)).unwrap();
        let cond_rel = float_query_bound(
            &ac,
            &a,
            f,
            QueryType::Conditional,
            Tolerance::Relative(0.01),
        )
        .unwrap();
        // The conditional bound is only slightly larger (same c, both-sided).
        assert!(cond_rel >= marg_rel);
        assert!(cond_rel < 3.0 * marg_rel);
    }

    #[test]
    fn mpe_uses_the_single_evaluation_bounds() {
        let (ac, a) = fixture();
        let ffx = FixedFormat::new(1, 12).unwrap();
        let marg = fixed_query_bound(
            &ac,
            &a,
            ffx,
            QueryType::Marginal,
            Tolerance::Absolute(0.01),
            LeafErrorModel::WorstCase,
        )
        .unwrap();
        let mpe = fixed_query_bound(
            &ac,
            &a,
            ffx,
            QueryType::Mpe,
            Tolerance::Absolute(0.01),
            LeafErrorModel::WorstCase,
        )
        .unwrap();
        assert_eq!(marg, mpe);
    }

    #[test]
    fn tolerance_validation() {
        assert!(Tolerance::Absolute(0.01).validate().is_ok());
        assert!(Tolerance::Relative(1e-9).validate().is_ok());
        assert!(Tolerance::Absolute(0.0).validate().is_err());
        assert!(Tolerance::Relative(-1.0).validate().is_err());
        assert!(Tolerance::Absolute(f64::INFINITY).validate().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(QueryType::Marginal.to_string(), "marginal");
        assert_eq!(QueryType::Conditional.to_string(), "conditional");
        assert_eq!(QueryType::Mpe.to_string(), "MPE");
        assert_eq!(Tolerance::Absolute(0.01).to_string(), "abs. err 0.01");
        assert_eq!(Tolerance::Relative(0.5).to_string(), "rel. err 0.5");
    }
}
