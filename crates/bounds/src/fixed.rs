//! Fixed-point error propagation (paper §3.1.1 and Fig. 3).
//!
//! The absolute error of every node is bounded recursively:
//!
//! * parameter leaf: `|Δ| <= 2^-(F+1)` — eq. (2);
//! * indicator leaf: exact (0 or 1), `Δ = 0`;
//! * adder: `Δf = Δa + Δb` — eq. (3), adders round nothing;
//! * multiplier: `Δf <= a_max·Δb + b_max·Δa + Δa·Δb + 2^-(F+1)` — eq. (5),
//!   with `a_max`/`b_max` from the max-value analysis.
//!
//! The recursion additionally covers max-product (MPE) evaluation:
//! `|max(ã,b̃) - max(a,b)| <= max(Δa, Δb) <= Δa + Δb`, so the adder model
//! is a valid (conservative) bound for max nodes too.

use problp_ac::{AcGraph, AcNode};
use problp_num::{FixedFormat, FixedRounding};

use crate::analysis::AcAnalysis;
use crate::error::BoundsError;

/// How parameter-leaf conversion errors are modelled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LeafErrorModel {
    /// The paper's model: every parameter leaf contributes the worst-case
    /// half-ulp `2^-(F+1)` (eq. 2).
    #[default]
    WorstCase,
    /// Ablation: use each parameter's *actual* conversion error. Tightens
    /// the bound when many parameters are exactly representable.
    Exact,
}

/// Result of a fixed-point error propagation.
#[derive(Clone, PartialEq, Debug)]
pub struct FixedErrorBound {
    /// Absolute error bound of every node.
    node_bounds: Vec<f64>,
    /// Absolute error bound at the root (the `c` of paper §3.1.3).
    root_bound: f64,
}

impl FixedErrorBound {
    /// The absolute error bound of each node.
    pub fn node_bounds(&self) -> &[f64] {
        &self.node_bounds
    }

    /// The absolute error bound at the root: `|~Pr - Pr| <= root_bound`
    /// for every indicator input.
    pub fn root_bound(&self) -> f64 {
        self.root_bound
    }
}

/// Propagates fixed-point error bounds through a binarized circuit.
///
/// # Errors
///
/// Returns [`BoundsError::NotBinary`] for circuits with wider operators,
/// [`BoundsError::MissingRoot`], or [`BoundsError::AnalysisMismatch`] when
/// the analysis belongs to a different circuit.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::networks;
/// use problp_bounds::{fixed_error_bound, AcAnalysis, LeafErrorModel};
/// use problp_num::FixedFormat;
///
/// let ac = binarize(&compile(&networks::sprinkler())?)?;
/// let analysis = AcAnalysis::new(&ac)?;
/// let b8 = fixed_error_bound(&ac, &analysis, FixedFormat::new(1, 8)?, LeafErrorModel::WorstCase)?;
/// let b16 = fixed_error_bound(&ac, &analysis, FixedFormat::new(1, 16)?, LeafErrorModel::WorstCase)?;
/// // Eight extra fraction bits shrink the bound by about 2^8.
/// assert!(b16.root_bound() < b8.root_bound() / 100.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fixed_error_bound(
    ac: &AcGraph,
    analysis: &AcAnalysis,
    format: FixedFormat,
    leaf_model: LeafErrorModel,
) -> Result<FixedErrorBound, BoundsError> {
    fixed_error_bound_with_rounding(ac, analysis, format, leaf_model, FixedRounding::HalfUp)
}

/// [`fixed_error_bound`] with an explicit multiplier rounding mode: the
/// rounding-mode ablation of `DESIGN.md`. Truncating multipliers save the
/// rounding adder but double the per-operation error term (one full ulp
/// instead of half).
///
/// # Errors
///
/// Same as [`fixed_error_bound`].
pub fn fixed_error_bound_with_rounding(
    ac: &AcGraph,
    analysis: &AcAnalysis,
    format: FixedFormat,
    leaf_model: LeafErrorModel,
    rounding: FixedRounding,
) -> Result<FixedErrorBound, BoundsError> {
    let root = ac.root().ok_or(BoundsError::MissingRoot)?;
    if !ac.is_binary() {
        return Err(BoundsError::NotBinary);
    }
    if analysis.len() != ac.len() {
        return Err(BoundsError::AnalysisMismatch {
            analysis: analysis.len(),
            circuit: ac.len(),
        });
    }
    let half_ulp = format.conversion_error_bound();
    let per_op = rounding.per_op_error(format);
    let ulp = format.ulp();
    let max_values = analysis.max_values();
    let mut bounds = vec![0.0f64; ac.len()];
    for (i, node) in ac.nodes().iter().enumerate() {
        bounds[i] = match node {
            AcNode::Indicator { .. } => 0.0,
            AcNode::Param { value } => match leaf_model {
                // Constants come from a ROM and are rounded to nearest
                // regardless of the multiplier rounding mode.
                LeafErrorModel::WorstCase => half_ulp,
                LeafErrorModel::Exact => {
                    let scaled = value * (format.frac_bits() as f64).exp2();
                    (scaled.round() - scaled).abs() * ulp
                }
            },
            AcNode::Sum(children) => children.iter().map(|c| bounds[c.index()]).sum::<f64>(),
            AcNode::Product(children) => {
                debug_assert!(children.len() == 2);
                let (a, b) = (children[0].index(), children[1].index());
                max_values[a] * bounds[b]
                    + max_values[b] * bounds[a]
                    + bounds[a] * bounds[b]
                    + per_op
            }
        };
    }
    Ok(FixedErrorBound {
        root_bound: bounds[root.index()],
        node_bounds: bounds,
    })
}

/// The number of integer bits needed so that every intermediate value
/// (including its worst-case error) stays in range: the max-value analysis
/// of paper §3.1.4.
///
/// Values live in `[0, 2^I)`, so `I` is the bit length of
/// `floor(global_max + root-area error margin)` and at least 1 (the
/// indicators need to represent the value one).
pub fn required_int_bits(analysis: &AcAnalysis, error_margin: f64) -> u32 {
    let needed = analysis.global_max() + error_margin;
    let mut bits = 1u32;
    while (bits as f64).exp2() <= needed {
        bits += 1;
    }
    bits
}

/// The number of fraction bits needed so that the smallest nonzero value
/// any node can take stays at least one ulp — the bottom-of-range
/// counterpart of [`required_int_bits`]: `F` is minimal with
/// `2^-F <= global_min_positive`, capped at the widest representable
/// fraction. The tape-level range analysis of `problp-verify` derives
/// the same quantity by abstract interpretation
/// (`minimal_fixed_format`); the two are cross-checked in tests.
pub fn required_frac_bits(analysis: &AcAnalysis) -> u32 {
    let needed = analysis.global_min_positive();
    let cap = problp_num::MAX_FIXED_WIDTH - 1;
    let mut bits = 1u32;
    while (-(bits as f64)).exp2() > needed && bits < cap {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::transform::binarize;
    use problp_ac::{compile, Semiring};
    use problp_bayes::{networks, Evidence, VarId};
    use problp_num::{Arith, F64Arith, FixedArith};

    fn fixture() -> (problp_bayes::BayesNet, AcGraph, AcAnalysis) {
        let net = networks::student();
        let ac = binarize(&compile(&net).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&ac).unwrap();
        (net, ac, analysis)
    }

    #[test]
    fn figure3_style_hand_example() {
        // Reproduce the flavour of paper Fig. 3: (θ1·λ + θ2)·θ3 with
        // F fraction bits. Build: p = θ1·λ, s = p + θ2, r = s·θ3.
        let mut g = AcGraph::new(vec![2]);
        let lam = g.indicator(VarId::from_index(0), 0).unwrap();
        let t1 = g.param(0.3).unwrap();
        let t2 = g.param(0.5).unwrap();
        let t3 = g.param(0.25).unwrap();
        let p = g.product(vec![lam, t1]).unwrap();
        let s = g.sum(vec![p, t2]).unwrap();
        let r = g.product(vec![s, t3]).unwrap();
        g.set_root(r);
        let analysis = AcAnalysis::new(&g).unwrap();
        let f = FixedFormat::new(1, 8).unwrap();
        let u = f.conversion_error_bound(); // 2^-9
        let b = fixed_error_bound(&g, &analysis, f, LeafErrorModel::WorstCase).unwrap();
        // By hand: Δt = u for all params, Δλ = 0.
        // Δp = 1·u + 0.3·0 + 0 + u = wait: amax(λ)=1, bmax(θ1)=0.3:
        // Δp = 1*u + 0.3*0 + 0*u + u = 2u.
        let dp = 1.0 * u + 0.3 * 0.0 + 0.0 * u + u;
        // Δs = Δp + u = 3u.
        let ds = dp + u;
        // Δr: smax = 0.8, t3max = 0.25:
        let dr = 0.8 * u + 0.25 * ds + ds * u + u;
        assert!((b.root_bound() - dr).abs() < 1e-15);
    }

    #[test]
    fn bound_dominates_observed_error_on_student() {
        let (net, ac, analysis) = fixture();
        for frac in [6u32, 10, 14] {
            let format = FixedFormat::new(1, frac).unwrap();
            let bound =
                fixed_error_bound(&ac, &analysis, format, LeafErrorModel::WorstCase).unwrap();
            // Exhaustive single-variable evidences.
            for v in 0..net.var_count() {
                for s in 0..net.variable(VarId::from_index(v)).arity() {
                    let mut e = Evidence::empty(net.var_count());
                    e.observe(VarId::from_index(v), s);
                    let exact = ac.evaluate(&e).unwrap();
                    let mut lp = FixedArith::new(format);
                    let got = ac.evaluate_with(&mut lp, &e, Semiring::SumProduct).unwrap();
                    let err = (lp.to_f64(&got) - exact).abs();
                    assert!(
                        err <= bound.root_bound() + 1e-15,
                        "F={frac} v={v} s={s}: err {err} > bound {}",
                        bound.root_bound()
                    );
                    assert!(!lp.flags().range_violation());
                }
            }
        }
    }

    #[test]
    fn per_node_bounds_dominate_observed_errors() {
        let (net, ac, analysis) = fixture();
        let format = FixedFormat::new(1, 9).unwrap();
        let bound = fixed_error_bound(&ac, &analysis, format, LeafErrorModel::WorstCase).unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(VarId::from_index(2), 1);
        let mut exact_ctx = F64Arith::new();
        let exact = ac
            .evaluate_nodes(&mut exact_ctx, &e, Semiring::SumProduct)
            .unwrap();
        let mut lp = FixedArith::new(format);
        let got = ac
            .evaluate_nodes(&mut lp, &e, Semiring::SumProduct)
            .unwrap();
        for i in 0..ac.len() {
            let err = (lp.to_f64(&got[i]) - exact[i]).abs();
            assert!(
                err <= bound.node_bounds()[i] + 1e-15,
                "node {i}: err {err} > bound {}",
                bound.node_bounds()[i]
            );
        }
    }

    #[test]
    fn bound_halves_per_extra_bit() {
        let (_, ac, analysis) = fixture();
        let mut prev = f64::INFINITY;
        for frac in 4..20 {
            let format = FixedFormat::new(1, frac).unwrap();
            let b = fixed_error_bound(&ac, &analysis, format, LeafErrorModel::WorstCase)
                .unwrap()
                .root_bound();
            assert!(b < prev, "bound should shrink with more bits");
            prev = b;
        }
    }

    #[test]
    fn exact_leaf_model_is_tighter() {
        let (_, ac, analysis) = fixture();
        let format = FixedFormat::new(1, 8).unwrap();
        let worst = fixed_error_bound(&ac, &analysis, format, LeafErrorModel::WorstCase)
            .unwrap()
            .root_bound();
        let tight = fixed_error_bound(&ac, &analysis, format, LeafErrorModel::Exact)
            .unwrap()
            .root_bound();
        assert!(tight <= worst);
        assert!(tight > 0.0);
    }

    #[test]
    fn mpe_evaluation_respects_the_same_bound() {
        let (net, ac, analysis) = fixture();
        let format = FixedFormat::new(1, 8).unwrap();
        let bound = fixed_error_bound(&ac, &analysis, format, LeafErrorModel::WorstCase).unwrap();
        let e = Evidence::empty(net.var_count());
        let exact = ac.evaluate_mpe(&e).unwrap();
        let mut lp = FixedArith::new(format);
        let got = ac.evaluate_with(&mut lp, &e, Semiring::MaxProduct).unwrap();
        let err = (lp.to_f64(&got) - exact).abs();
        assert!(err <= bound.root_bound());
    }

    #[test]
    fn non_binary_circuits_are_rejected() {
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap(); // not binarized
        if !ac.is_binary() {
            let analysis = AcAnalysis::new(&ac).unwrap();
            let err = fixed_error_bound(
                &ac,
                &analysis,
                FixedFormat::new(1, 8).unwrap(),
                LeafErrorModel::WorstCase,
            )
            .unwrap_err();
            assert_eq!(err, BoundsError::NotBinary);
        }
    }

    #[test]
    fn analysis_mismatch_is_rejected() {
        let (_, ac, _) = fixture();
        let other = binarize(&compile(&networks::figure1()).unwrap()).unwrap();
        let analysis = AcAnalysis::new(&other).unwrap();
        let err = fixed_error_bound(
            &ac,
            &analysis,
            FixedFormat::new(1, 8).unwrap(),
            LeafErrorModel::WorstCase,
        )
        .unwrap_err();
        assert!(matches!(err, BoundsError::AnalysisMismatch { .. }));
    }

    #[test]
    fn truncation_bound_is_larger_and_still_holds() {
        use problp_num::FixedRounding;
        let (net, ac, analysis) = fixture();
        let format = FixedFormat::new(1, 10).unwrap();
        let up = fixed_error_bound_with_rounding(
            &ac,
            &analysis,
            format,
            LeafErrorModel::WorstCase,
            FixedRounding::HalfUp,
        )
        .unwrap();
        let trunc = fixed_error_bound_with_rounding(
            &ac,
            &analysis,
            format,
            LeafErrorModel::WorstCase,
            FixedRounding::Truncate,
        )
        .unwrap();
        assert!(trunc.root_bound() > up.root_bound());
        assert!(trunc.root_bound() < 2.1 * up.root_bound());
        // The truncating datapath respects the truncation bound.
        for v in 0..net.var_count() {
            let mut e = Evidence::empty(net.var_count());
            e.observe(VarId::from_index(v), 0);
            let exact = ac.evaluate(&e).unwrap();
            let mut lp = problp_num::FixedArith::with_rounding(format, FixedRounding::Truncate);
            let got = ac.evaluate_with(&mut lp, &e, Semiring::SumProduct).unwrap();
            let err = (lp.to_f64(&got) - exact).abs();
            assert!(
                err <= trunc.root_bound(),
                "v={v}: {err} > {}",
                trunc.root_bound()
            );
        }
    }

    #[test]
    fn int_bits_cover_the_value_range() {
        let (_, _, analysis) = fixture();
        let bits = required_int_bits(&analysis, 0.0);
        assert!(bits >= 1);
        assert!((bits as f64).exp2() > analysis.global_max());
    }

    #[test]
    fn frac_bits_cover_the_smallest_nonzero_value() {
        let (_, _, analysis) = fixture();
        let bits = required_frac_bits(&analysis);
        assert!(bits >= 1);
        // One ulp fits under the smallest nonzero value...
        assert!((-(bits as f64)).exp2() <= analysis.global_min_positive());
        // ...and the format is minimal: one fewer bit would not.
        if bits > 1 {
            assert!((-((bits - 1) as f64)).exp2() > analysis.global_min_positive());
        }
    }
}
