//! Conditional probability tables.

use crate::error::BayesError;
use crate::variable::VarId;

/// A conditional probability table `Pr(X | parents)`.
///
/// The table stores one probability per `(parent assignment, state)` pair
/// in row-major order: parents vary slowest in declaration order, the
/// child's state varies fastest. Each row (one parent assignment) sums to
/// one.
///
/// # Examples
///
/// ```
/// use problp_bayes::{Cpt, VarId};
///
/// let a = VarId::from_index(0);
/// let b = VarId::from_index(1);
/// // Pr(B | A) with both binary: rows are Pr(B|a0), Pr(B|a1).
/// let cpt = Cpt::new(b, vec![a], vec![2, 2], vec![0.9, 0.1, 0.3, 0.7])?;
/// assert_eq!(cpt.probability(&[0], 0), 0.9);
/// assert_eq!(cpt.probability(&[1], 1), 0.7);
/// # Ok::<(), problp_bayes::BayesError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Cpt {
    var: VarId,
    parents: Vec<VarId>,
    /// Arities: `arities[0..parents.len()]` are the parents' arities (same
    /// order as `parents`), `arities[parents.len()]` is the child's.
    arities: Vec<usize>,
    table: Vec<f64>,
}

/// Tolerance for row normalization checks.
const ROW_SUM_TOLERANCE: f64 = 1e-9;

impl Cpt {
    /// Creates a CPT for `var` given `parents`.
    ///
    /// `arities` lists the parents' arities in order followed by the
    /// child's arity. `table` holds the probabilities in row-major order
    /// (see the type-level docs).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::CptShapeMismatch`] if the table length does
    /// not match the arities, [`BayesError::InvalidProbability`] for
    /// entries outside `[0, 1]`, and [`BayesError::RowNotNormalized`] if a
    /// row does not sum to one.
    pub fn new(
        var: VarId,
        parents: Vec<VarId>,
        arities: Vec<usize>,
        table: Vec<f64>,
    ) -> Result<Self, BayesError> {
        if arities.len() != parents.len() + 1 {
            return Err(BayesError::CptShapeMismatch {
                var,
                expected: parents.len() + 1,
                actual: arities.len(),
            });
        }
        let expected_len: usize = arities.iter().product();
        if table.len() != expected_len {
            return Err(BayesError::CptShapeMismatch {
                var,
                expected: expected_len,
                actual: table.len(),
            });
        }
        for &p in &table {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(BayesError::InvalidProbability { var, value: p });
            }
        }
        let child_arity = *arities.last().expect("arities never empty");
        for (row_idx, row) in table.chunks(child_arity).enumerate() {
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                return Err(BayesError::RowNotNormalized {
                    var,
                    row: row_idx,
                    sum,
                });
            }
        }
        Ok(Cpt {
            var,
            parents,
            arities,
            table,
        })
    }

    /// The child variable.
    #[inline]
    pub fn var(&self) -> VarId {
        self.var
    }

    /// The parent variables, in table order.
    #[inline]
    pub fn parents(&self) -> &[VarId] {
        &self.parents
    }

    /// The child's arity.
    #[inline]
    pub fn child_arity(&self) -> usize {
        *self.arities.last().expect("arities never empty")
    }

    /// The parents' arities, in table order.
    #[inline]
    pub fn parent_arities(&self) -> &[usize] {
        &self.arities[..self.parents.len()]
    }

    /// The raw probability table (row-major, child state fastest).
    #[inline]
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Flat index of the entry for `parent_states` and child `state`.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range or `parent_states` has the wrong
    /// length.
    pub fn entry_index(&self, parent_states: &[usize], state: usize) -> usize {
        assert_eq!(
            parent_states.len(),
            self.parents.len(),
            "wrong number of parent states"
        );
        let mut idx = 0usize;
        for (i, &ps) in parent_states.iter().enumerate() {
            assert!(ps < self.arities[i], "parent state out of range");
            idx = idx * self.arities[i] + ps;
        }
        assert!(state < self.child_arity(), "child state out of range");
        idx * self.child_arity() + state
    }

    /// `Pr(var = state | parents = parent_states)`.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range (see [`Cpt::entry_index`]).
    pub fn probability(&self, parent_states: &[usize], state: usize) -> f64 {
        self.table[self.entry_index(parent_states, state)]
    }

    /// Decomposes a flat table index back into `(parent_states, state)`.
    pub fn decompose_index(&self, mut index: usize) -> (Vec<usize>, usize) {
        let state = index % self.child_arity();
        index /= self.child_arity();
        let mut parent_states = vec![0usize; self.parents.len()];
        for i in (0..self.parents.len()).rev() {
            parent_states[i] = index % self.arities[i];
            index /= self.arities[i];
        }
        (parent_states, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn root_cpt() {
        let cpt = Cpt::new(v(0), vec![], vec![3], vec![0.2, 0.3, 0.5]).unwrap();
        assert_eq!(cpt.probability(&[], 2), 0.5);
        assert_eq!(cpt.child_arity(), 3);
        assert!(cpt.parents().is_empty());
    }

    #[test]
    fn two_parent_indexing() {
        // Pr(C | A, B): A ternary, B binary, C binary.
        let mut table = Vec::new();
        for a in 0..3 {
            for b in 0..2 {
                let p = 0.1 + 0.1 * (a * 2 + b) as f64;
                table.push(p);
                table.push(1.0 - p);
            }
        }
        let cpt = Cpt::new(v(2), vec![v(0), v(1)], vec![3, 2, 2], table).unwrap();
        assert_eq!(cpt.probability(&[0, 0], 0), 0.1);
        assert_eq!(cpt.probability(&[1, 1], 0), 0.4);
        assert!((cpt.probability(&[2, 1], 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn decompose_inverts_entry_index() {
        let mut table = Vec::new();
        for _ in 0..6 {
            table.extend_from_slice(&[0.25, 0.75]);
        }
        let cpt = Cpt::new(v(2), vec![v(0), v(1)], vec![3, 2, 2], table).unwrap();
        for a in 0..3 {
            for b in 0..2 {
                for s in 0..2 {
                    let idx = cpt.entry_index(&[a, b], s);
                    assert_eq!(cpt.decompose_index(idx), (vec![a, b], s));
                }
            }
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let err = Cpt::new(v(0), vec![], vec![2], vec![0.5, 0.25, 0.25]).unwrap_err();
        assert!(matches!(err, BayesError::CptShapeMismatch { .. }));
    }

    #[test]
    fn unnormalized_rows_are_rejected() {
        let err = Cpt::new(v(0), vec![], vec![2], vec![0.5, 0.6]).unwrap_err();
        assert!(matches!(err, BayesError::RowNotNormalized { .. }));
    }

    #[test]
    fn out_of_range_probabilities_are_rejected() {
        let err = Cpt::new(v(0), vec![], vec![2], vec![1.5, -0.5]).unwrap_err();
        assert!(matches!(err, BayesError::InvalidProbability { .. }));
    }

    #[test]
    #[should_panic(expected = "parent state out of range")]
    fn bad_parent_state_panics() {
        let cpt = Cpt::new(v(1), vec![v(0)], vec![2, 2], vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        let _ = cpt.probability(&[2], 0);
    }
}
