//! A plain-text network format (`.bn`) for loading and saving Bayesian
//! networks.
//!
//! The format is line-oriented and minimal — enough for the CLI and for
//! exchanging benchmark networks:
//!
//! ```text
//! # patient monitoring (comments and blank lines are ignored)
//! network sprinkler
//! variable Cloudy 2
//! variable Rain 2
//! cpt Cloudy | : 0.5 0.5
//! cpt Rain | Cloudy : 0.8 0.2 0.2 0.8
//! ```
//!
//! `cpt X | P1 P2 : v...` lists the table in row-major order with the
//! child state varying fastest (the same layout as [`crate::Cpt`]).

use crate::error::BayesError;
use crate::network::{BayesNet, BayesNetBuilder};
use crate::variable::VarId;

/// Serializes a network to the `.bn` text format.
///
/// # Examples
///
/// ```
/// use problp_bayes::{io, networks};
///
/// let net = networks::sprinkler();
/// let text = io::to_text(&net, "sprinkler");
/// let back = io::from_text(&text)?;
/// assert_eq!(&back, &net);
/// # Ok::<(), problp_bayes::BayesError>(())
/// ```
pub fn to_text(net: &BayesNet, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("network {name}\n"));
    for v in net.variables() {
        out.push_str(&format!("variable {} {}\n", v.name(), v.arity()));
    }
    for cpt in net.cpts() {
        let parents: Vec<&str> = cpt
            .parents()
            .iter()
            .map(|p| net.variable(*p).name())
            .collect();
        let values: Vec<String> = cpt.table().iter().map(|p| format!("{p}")).collect();
        out.push_str(&format!(
            "cpt {} | {} : {}\n",
            net.variable(cpt.var()).name(),
            parents.join(" "),
            values.join(" ")
        ));
    }
    out
}

/// Parses a network from the `.bn` text format.
///
/// # Errors
///
/// Returns [`BayesError::InvalidDataset`] with a line-numbered reason for
/// syntax errors, and propagates network validation errors (shape,
/// normalization, cycles).
pub fn from_text(text: &str) -> Result<BayesNet, BayesError> {
    let mut builder = BayesNetBuilder::new();
    let mut names: Vec<String> = Vec::new();
    let syntax = |line_no: usize, reason: &str| BayesError::InvalidDataset {
        reason: format!("line {}: {reason}", line_no + 1),
    };
    let find = |names: &[String], name: &str, line_no: usize| -> Result<VarId, BayesError> {
        names
            .iter()
            .position(|n| n == name)
            .map(VarId::from_index)
            .ok_or_else(|| syntax(line_no, &format!("unknown variable {name}")))
    };
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("network") => {
                // Name line: informational only.
            }
            Some("variable") => {
                let name = tokens
                    .next()
                    .ok_or_else(|| syntax(line_no, "variable needs a name"))?;
                let arity: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax(line_no, "variable needs a numeric arity"))?;
                if arity < 2 {
                    return Err(syntax(line_no, "arity must be at least 2"));
                }
                if names.iter().any(|n| n == name) {
                    return Err(syntax(line_no, &format!("duplicate variable {name}")));
                }
                builder.variable(name, arity);
                names.push(name.to_string());
            }
            Some("cpt") => {
                let rest = line.strip_prefix("cpt").expect("starts with cpt");
                let (head, values) = rest
                    .split_once(':')
                    .ok_or_else(|| syntax(line_no, "cpt needs a ':' before its values"))?;
                let (child, parents) = head
                    .split_once('|')
                    .ok_or_else(|| syntax(line_no, "cpt needs a '|' after the child"))?;
                let child = find(&names, child.trim(), line_no)?;
                let parent_ids = parents
                    .split_whitespace()
                    .map(|p| find(&names, p, line_no))
                    .collect::<Result<Vec<_>, _>>()?;
                let table = values
                    .split_whitespace()
                    .map(|t| {
                        t.parse::<f64>()
                            .map_err(|_| syntax(line_no, &format!("bad probability {t}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                builder.cpt(child, parent_ids, table)?;
            }
            Some(other) => {
                return Err(syntax(line_no, &format!("unknown directive {other}")));
            }
            None => unreachable!("blank lines were skipped"),
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;

    #[test]
    fn classic_networks_roundtrip() {
        for (net, name) in [
            (networks::figure1(), "figure1"),
            (networks::sprinkler(), "sprinkler"),
            (networks::asia(), "asia"),
            (networks::student(), "student"),
        ] {
            let text = to_text(&net, name);
            let back = from_text(&text).unwrap();
            assert_eq!(back, net, "{name} did not roundtrip");
        }
    }

    #[test]
    fn alarm_roundtrips() {
        let net = networks::alarm(7);
        let back = from_text(&to_text(&net, "alarm")).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\nnetwork t\nvariable A 2\n# another\ncpt A | : 0.25 0.75\n";
        let net = from_text(text).unwrap();
        assert_eq!(net.var_count(), 1);
        assert_eq!(net.cpt(VarId::from_index(0)).probability(&[], 1), 0.75);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = from_text("variable A\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = from_text("variable A 2\nfrob\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = from_text("variable A 2\ncpt B | : 0.5 0.5\n").unwrap_err();
        assert!(err.to_string().contains("unknown variable B"));
        let err = from_text("variable A 2\ncpt A | 0.5 0.5\n").unwrap_err();
        assert!(err.to_string().contains("':'"));
    }

    #[test]
    fn validation_errors_propagate() {
        // Row does not sum to one.
        let err = from_text("variable A 2\ncpt A | : 0.5 0.6\n").unwrap_err();
        assert!(matches!(err, BayesError::RowNotNormalized { .. }));
        // Duplicate variable.
        let err = from_text("variable A 2\nvariable A 2\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        // Unary variable.
        let err = from_text("variable A 1\n").unwrap_err();
        assert!(err.to_string().contains("arity"));
    }
}
