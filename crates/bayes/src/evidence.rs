//! Evidence: partial assignments of observed variables.

use crate::variable::VarId;

/// A partial assignment: for each variable either an observed state or
/// "unobserved" (marginalized over).
///
/// In arithmetic-circuit terms, evidence determines the indicator inputs
/// `λ`: indicators contradicting the evidence are 0, all others are 1
/// (paper §2).
///
/// # Examples
///
/// ```
/// use problp_bayes::{Evidence, VarId};
///
/// let mut e = Evidence::empty(3);
/// e.observe(VarId::from_index(0), 1);
/// assert_eq!(e.state(VarId::from_index(0)), Some(1));
/// assert_eq!(e.state(VarId::from_index(1)), None);
/// assert_eq!(e.observed_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Evidence {
    states: Vec<Option<usize>>,
}

impl Evidence {
    /// Creates evidence over `var_count` variables with nothing observed.
    pub fn empty(var_count: usize) -> Self {
        Evidence {
            states: vec![None; var_count],
        }
    }

    /// Creates evidence from a complete assignment (every variable
    /// observed).
    pub fn from_assignment(assignment: &[usize]) -> Self {
        Evidence {
            states: assignment.iter().map(|&s| Some(s)).collect(),
        }
    }

    /// Observes `var` in state `state`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn observe(&mut self, var: VarId, state: usize) {
        self.states[var.index()] = Some(state);
    }

    /// Removes the observation of `var` (marginalizes it again).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn forget(&mut self, var: VarId) {
        self.states[var.index()] = None;
    }

    /// The observed state of `var`, or `None` if unobserved.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn state(&self, var: VarId) -> Option<usize> {
        self.states[var.index()]
    }

    /// Number of variables this evidence ranges over.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if no variable can be observed (zero variables).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of observed variables.
    pub fn observed_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over `(variable, observed state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, usize)> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|state| (VarId::from_index(i), state)))
    }

    /// The indicator value `λ_{var=state}` implied by this evidence:
    /// 1.0 unless the evidence contradicts `var = state`.
    pub fn indicator(&self, var: VarId, state: usize) -> f64 {
        match self.state(var) {
            Some(observed) if observed != state => 0.0,
            _ => 1.0,
        }
    }
}

impl std::fmt::Display for Evidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let obs: Vec<String> = self.iter().map(|(v, s)| format!("{v}={s}")).collect();
        write!(f, "{{{}}}", obs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_observes_nothing() {
        let e = Evidence::empty(4);
        assert_eq!(e.observed_count(), 0);
        assert_eq!(e.len(), 4);
        assert!(e.iter().next().is_none());
    }

    #[test]
    fn observe_and_forget() {
        let mut e = Evidence::empty(3);
        let v = VarId::from_index(2);
        e.observe(v, 1);
        assert_eq!(e.state(v), Some(1));
        e.forget(v);
        assert_eq!(e.state(v), None);
    }

    #[test]
    fn from_assignment_observes_all() {
        let e = Evidence::from_assignment(&[0, 2, 1]);
        assert_eq!(e.observed_count(), 3);
        assert_eq!(e.state(VarId::from_index(1)), Some(2));
    }

    #[test]
    fn indicators_follow_the_paper_convention() {
        // e = {A = a1}: λ_{a2} = 0, everything else 1.
        let mut e = Evidence::empty(2);
        let a = VarId::from_index(0);
        let b = VarId::from_index(1);
        e.observe(a, 0);
        assert_eq!(e.indicator(a, 0), 1.0);
        assert_eq!(e.indicator(a, 1), 0.0);
        assert_eq!(e.indicator(b, 0), 1.0);
        assert_eq!(e.indicator(b, 1), 1.0);
    }

    #[test]
    fn display_lists_observations() {
        let mut e = Evidence::empty(3);
        e.observe(VarId::from_index(0), 1);
        e.observe(VarId::from_index(2), 0);
        assert_eq!(e.to_string(), "{X0=1, X2=0}");
    }
}
