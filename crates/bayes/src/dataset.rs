//! Labeled discrete datasets (the input to classifier learning).

use crate::error::BayesError;

/// A labeled dataset of discrete feature vectors.
///
/// Rows are instances; `features[i][j]` is the state of feature `j` in
/// instance `i`, `labels[i]` the class. This is the input format of
/// [`NaiveBayes::fit`](crate::NaiveBayes::fit) and the output of the
/// synthetic benchmark generators in `problp-data`.
///
/// # Examples
///
/// ```
/// use problp_bayes::LabeledDataset;
///
/// let ds = LabeledDataset::new(
///     vec![vec![0, 1], vec![1, 0], vec![1, 1]],
///     vec![0, 1, 1],
///     vec![2, 2],
///     2,
/// )?;
/// assert_eq!(ds.len(), 3);
/// assert_eq!(ds.feature_count(), 2);
/// # Ok::<(), problp_bayes::BayesError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LabeledDataset {
    features: Vec<Vec<usize>>,
    labels: Vec<usize>,
    feature_arities: Vec<usize>,
    class_arity: usize,
}

impl LabeledDataset {
    /// Creates a dataset, validating shapes and state ranges.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidDataset`] if the dataset is empty, row
    /// lengths are inconsistent, or any state exceeds its declared arity.
    pub fn new(
        features: Vec<Vec<usize>>,
        labels: Vec<usize>,
        feature_arities: Vec<usize>,
        class_arity: usize,
    ) -> Result<Self, BayesError> {
        if features.is_empty() {
            return Err(BayesError::InvalidDataset {
                reason: "no instances".into(),
            });
        }
        if features.len() != labels.len() {
            return Err(BayesError::InvalidDataset {
                reason: format!(
                    "{} feature rows but {} labels",
                    features.len(),
                    labels.len()
                ),
            });
        }
        if class_arity < 2 {
            return Err(BayesError::InvalidDataset {
                reason: "class arity must be at least 2".into(),
            });
        }
        for (i, row) in features.iter().enumerate() {
            if row.len() != feature_arities.len() {
                return Err(BayesError::InvalidDataset {
                    reason: format!(
                        "row {i} has {} features, expected {}",
                        row.len(),
                        feature_arities.len()
                    ),
                });
            }
            for (j, (&s, &a)) in row.iter().zip(&feature_arities).enumerate() {
                if s >= a {
                    return Err(BayesError::InvalidDataset {
                        reason: format!("row {i} feature {j} state {s} >= arity {a}"),
                    });
                }
            }
        }
        for (i, &l) in labels.iter().enumerate() {
            if l >= class_arity {
                return Err(BayesError::InvalidDataset {
                    reason: format!("label {l} of row {i} >= class arity {class_arity}"),
                });
            }
        }
        Ok(LabeledDataset {
            features,
            labels,
            feature_arities,
            class_arity,
        })
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Returns `true` if the dataset has no instances (never true for a
    /// validated dataset).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per instance.
    pub fn feature_count(&self) -> usize {
        self.feature_arities.len()
    }

    /// Arity of each feature.
    pub fn feature_arities(&self) -> &[usize] {
        &self.feature_arities
    }

    /// Number of classes.
    pub fn class_arity(&self) -> usize {
        self.class_arity
    }

    /// The feature rows.
    pub fn features(&self) -> &[Vec<usize>] {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One instance as `(features, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn instance(&self, i: usize) -> (&[usize], usize) {
        (&self.features[i], self.labels[i])
    }

    /// A copy keeping only the first `n` instances (all of them when `n`
    /// exceeds the length, and at least one so the dataset stays valid) —
    /// how the experiment harness caps test-set sizes.
    pub fn truncated(&self, n: usize) -> LabeledDataset {
        let n = n.clamp(1, self.len());
        LabeledDataset {
            features: self.features[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
            feature_arities: self.feature_arities.clone(),
            class_arity: self.class_arity,
        }
    }

    /// Splits into `(train, test)` with the first `ratio` fraction used for
    /// training (the paper trains on 60 % of each dataset).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not in `(0, 1)` or a split would be empty.
    pub fn split(&self, ratio: f64) -> (LabeledDataset, LabeledDataset) {
        assert!(ratio > 0.0 && ratio < 1.0, "split ratio must be in (0, 1)");
        let cut = ((self.len() as f64) * ratio).round() as usize;
        assert!(cut > 0 && cut < self.len(), "split produces an empty part");
        let train = LabeledDataset {
            features: self.features[..cut].to_vec(),
            labels: self.labels[..cut].to_vec(),
            feature_arities: self.feature_arities.clone(),
            class_arity: self.class_arity,
        };
        let test = LabeledDataset {
            features: self.features[cut..].to_vec(),
            labels: self.labels[cut..].to_vec(),
            feature_arities: self.feature_arities.clone(),
            class_arity: self.class_arity,
        };
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabeledDataset {
        LabeledDataset::new(
            vec![vec![0, 1], vec![1, 0], vec![1, 1], vec![0, 0]],
            vec![0, 1, 1, 0],
            vec![2, 2],
            2,
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let ds = tiny();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.feature_count(), 2);
        assert_eq!(ds.class_arity(), 2);
        assert_eq!(ds.instance(1), (&[1usize, 0][..], 1));
    }

    #[test]
    fn split_respects_ratio() {
        let ds = tiny();
        let (train, test) = ds.split(0.5);
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 2);
        assert_eq!(train.feature_arities(), ds.feature_arities());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(LabeledDataset::new(vec![], vec![], vec![2], 2).is_err());
        assert!(LabeledDataset::new(vec![vec![0]], vec![0, 1], vec![2], 2).is_err());
        assert!(LabeledDataset::new(vec![vec![5]], vec![0], vec![2], 2).is_err());
        assert!(LabeledDataset::new(vec![vec![0]], vec![3], vec![2], 2).is_err());
        assert!(LabeledDataset::new(vec![vec![0, 1]], vec![0], vec![2], 2).is_err());
    }
}
