//! Bayesian networks: structure, validation, exact queries and sampling.

use rand::Rng;

use crate::cpt::Cpt;
use crate::error::BayesError;
use crate::evidence::Evidence;
use crate::variable::{VarId, Variable};

/// A discrete Bayesian network: a DAG of variables with one CPT per
/// variable (paper eq. 1).
///
/// Networks are constructed through [`BayesNetBuilder`], which validates
/// acyclicity, CPT shapes and normalization.
///
/// The exact-inference methods ([`BayesNet::marginal`],
/// [`BayesNet::conditional`], [`BayesNet::mpe`]) enumerate all joint
/// assignments and serve as the *test oracle* for the arithmetic-circuit
/// compiler; they are exponential in the number of unobserved variables.
///
/// # Examples
///
/// ```
/// use problp_bayes::{BayesNetBuilder, Evidence};
///
/// let mut b = BayesNetBuilder::new();
/// let rain = b.variable("Rain", 2);
/// let grass = b.variable("WetGrass", 2);
/// b.cpt(rain, [], [0.8, 0.2])?;
/// b.cpt(grass, [rain], [0.9, 0.1, 0.05, 0.95])?;
/// let net = b.build()?;
///
/// let mut e = Evidence::empty(net.var_count());
/// e.observe(grass, 1); // wet grass observed
/// let pr_wet = net.marginal(&e);
/// assert!((pr_wet - (0.8 * 0.1 + 0.2 * 0.95)).abs() < 1e-12);
/// # Ok::<(), problp_bayes::BayesError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct BayesNet {
    vars: Vec<Variable>,
    cpts: Vec<Cpt>,
    topo: Vec<VarId>,
}

impl BayesNet {
    /// Number of variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The variable with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn variable(&self, var: VarId) -> &Variable {
        &self.vars[var.index()]
    }

    /// All variables in declaration order.
    pub fn variables(&self) -> &[Variable] {
        &self.vars
    }

    /// The CPT of the given variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn cpt(&self, var: VarId) -> &Cpt {
        &self.cpts[var.index()]
    }

    /// All CPTs, indexed by variable.
    pub fn cpts(&self) -> &[Cpt] {
        &self.cpts
    }

    /// Looks a variable up by name.
    pub fn find(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name() == name)
            .map(VarId::from_index)
    }

    /// A topological order of the variables (parents before children).
    pub fn topological_order(&self) -> &[VarId] {
        &self.topo
    }

    /// The root variables (those without parents).
    pub fn roots(&self) -> Vec<VarId> {
        self.cpts
            .iter()
            .filter(|c| c.parents().is_empty())
            .map(|c| c.var())
            .collect()
    }

    /// The leaf variables (those that are nobody's parent).
    pub fn leaves(&self) -> Vec<VarId> {
        let mut is_parent = vec![false; self.vars.len()];
        for cpt in &self.cpts {
            for p in cpt.parents() {
                is_parent[p.index()] = true;
            }
        }
        (0..self.vars.len())
            .filter(|&i| !is_parent[i])
            .map(VarId::from_index)
            .collect()
    }

    /// Total number of edges in the DAG.
    pub fn edge_count(&self) -> usize {
        self.cpts.iter().map(|c| c.parents().len()).sum()
    }

    /// Total number of free CPT parameters (table entries).
    pub fn parameter_count(&self) -> usize {
        self.cpts.iter().map(|c| c.table().len()).sum()
    }

    /// The joint probability of a complete assignment (paper eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the assignment has the wrong length or an out-of-range
    /// state.
    pub fn joint_probability(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.vars.len(), "wrong assignment length");
        let mut p = 1.0;
        for cpt in &self.cpts {
            let parent_states: Vec<usize> = cpt
                .parents()
                .iter()
                .map(|pv| assignment[pv.index()])
                .collect();
            p *= cpt.probability(&parent_states, assignment[cpt.var().index()]);
        }
        p
    }

    /// Enumerates all completions of `evidence` and calls `visit` with each
    /// complete assignment and its joint probability.
    fn for_each_completion(&self, evidence: &Evidence, mut visit: impl FnMut(&[usize], f64)) {
        assert_eq!(evidence.len(), self.vars.len(), "evidence length mismatch");
        let free: Vec<usize> = (0..self.vars.len())
            .filter(|&i| evidence.state(VarId::from_index(i)).is_none())
            .collect();
        assert!(
            free.len() <= 25,
            "enumeration over {} free variables is intractable; this method is a test oracle",
            free.len()
        );
        let mut assignment: Vec<usize> = (0..self.vars.len())
            .map(|i| evidence.state(VarId::from_index(i)).unwrap_or(0))
            .collect();
        loop {
            visit(&assignment, self.joint_probability(&assignment));
            // Advance the mixed-radix counter over the free variables.
            let mut i = 0;
            loop {
                if i == free.len() {
                    return;
                }
                let vi = free[i];
                assignment[vi] += 1;
                if assignment[vi] < self.vars[vi].arity() {
                    break;
                }
                assignment[vi] = 0;
                i += 1;
            }
        }
    }

    /// The marginal probability of the evidence, `Pr(e)`, by exhaustive
    /// enumeration.
    ///
    /// # Panics
    ///
    /// Panics if more than 25 variables are unobserved (the oracle is
    /// exponential), or on a length mismatch.
    pub fn marginal(&self, evidence: &Evidence) -> f64 {
        let mut total = 0.0;
        self.for_each_completion(evidence, |_, p| total += p);
        total
    }

    /// The conditional probability `Pr(query_var = state | e)` by
    /// exhaustive enumeration.
    ///
    /// # Panics
    ///
    /// Same conditions as [`BayesNet::marginal`].
    pub fn conditional(&self, query_var: VarId, state: usize, evidence: &Evidence) -> f64 {
        let mut joint = evidence.clone();
        joint.observe(query_var, state);
        let num = self.marginal(&joint);
        let den = self.marginal(evidence);
        num / den
    }

    /// The most probable explanation: the completion of the evidence with
    /// the highest joint probability, and that probability.
    ///
    /// # Panics
    ///
    /// Same conditions as [`BayesNet::marginal`].
    pub fn mpe(&self, evidence: &Evidence) -> (Vec<usize>, f64) {
        let mut best_p = -1.0;
        let mut best: Vec<usize> = Vec::new();
        self.for_each_completion(evidence, |a, p| {
            if p > best_p {
                best_p = p;
                best = a.to_vec();
            }
        });
        (best, best_p)
    }

    /// Draws one complete assignment by forward (ancestral) sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        let mut assignment = vec![0usize; self.vars.len()];
        for &var in &self.topo {
            let cpt = &self.cpts[var.index()];
            let parent_states: Vec<usize> = cpt
                .parents()
                .iter()
                .map(|p| assignment[p.index()])
                .collect();
            let u: f64 = rng.random();
            let mut acc = 0.0;
            let mut chosen = cpt.child_arity() - 1;
            for state in 0..cpt.child_arity() {
                acc += cpt.probability(&parent_states, state);
                if u < acc {
                    chosen = state;
                    break;
                }
            }
            assignment[var.index()] = chosen;
        }
        assignment
    }

    /// Draws `n` samples (see [`BayesNet::sample`]).
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

impl std::fmt::Display for BayesNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BayesNet({} vars, {} edges, {} parameters)",
            self.var_count(),
            self.edge_count(),
            self.parameter_count()
        )
    }
}

/// Incremental builder for [`BayesNet`] (see the network example there).
#[derive(Default, Debug)]
pub struct BayesNetBuilder {
    vars: Vec<Variable>,
    cpts: Vec<Option<Cpt>>,
}

impl BayesNetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a variable and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2`.
    pub fn variable(&mut self, name: impl Into<String>, arity: usize) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(Variable::new(name, arity));
        self.cpts.push(None);
        id
    }

    /// Attaches the CPT `Pr(var | parents)`; arities are taken from the
    /// declared variables and `table` is row-major with the child state
    /// varying fastest.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::UnknownVariable`] for undeclared ids,
    /// [`BayesError::DuplicateCpt`] if `var` already has a CPT, and any
    /// validation error from [`Cpt::new`].
    pub fn cpt(
        &mut self,
        var: VarId,
        parents: impl IntoIterator<Item = VarId>,
        table: impl IntoIterator<Item = f64>,
    ) -> Result<(), BayesError> {
        let parents: Vec<VarId> = parents.into_iter().collect();
        if var.index() >= self.vars.len() {
            return Err(BayesError::UnknownVariable { var });
        }
        for &p in &parents {
            if p.index() >= self.vars.len() {
                return Err(BayesError::UnknownVariable { var: p });
            }
        }
        if self.cpts[var.index()].is_some() {
            return Err(BayesError::DuplicateCpt { var });
        }
        let mut arities: Vec<usize> = parents
            .iter()
            .map(|p| self.vars[p.index()].arity())
            .collect();
        arities.push(self.vars[var.index()].arity());
        let cpt = Cpt::new(var, parents, arities, table.into_iter().collect())?;
        self.cpts[var.index()] = Some(cpt);
        Ok(())
    }

    /// Validates the network and builds it.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::MissingCpt`] if a variable has no CPT and
    /// [`BayesError::CyclicNetwork`] if the parent graph has a cycle.
    pub fn build(self) -> Result<BayesNet, BayesError> {
        let n = self.vars.len();
        let mut cpts = Vec::with_capacity(n);
        for (i, cpt) in self.cpts.into_iter().enumerate() {
            cpts.push(cpt.ok_or(BayesError::MissingCpt {
                var: VarId::from_index(i),
            })?);
        }
        // Kahn's algorithm for a topological order.
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for cpt in &cpts {
            indegree[cpt.var().index()] = cpt.parents().len();
            for p in cpt.parents() {
                children[p.index()].push(cpt.var().index());
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            topo.push(VarId::from_index(v));
            for &c in &children[v] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != n {
            return Err(BayesError::CyclicNetwork);
        }
        Ok(BayesNet {
            vars: self.vars,
            cpts,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> BayesNet {
        // A -> B -> C, all binary.
        let mut b = BayesNetBuilder::new();
        let a = b.variable("A", 2);
        let bb = b.variable("B", 2);
        let c = b.variable("C", 2);
        b.cpt(a, [], [0.3, 0.7]).unwrap();
        b.cpt(bb, [a], [0.9, 0.1, 0.2, 0.8]).unwrap();
        b.cpt(c, [bb], [0.6, 0.4, 0.25, 0.75]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn joint_probability_multiplies_cpt_rows() {
        let net = chain();
        // Pr(a1, b0, c1) = 0.7 * 0.2 * 0.4
        let p = net.joint_probability(&[1, 0, 1]);
        assert!((p - 0.7 * 0.2 * 0.4).abs() < 1e-12);
    }

    #[test]
    fn marginal_sums_to_one_with_no_evidence() {
        let net = chain();
        let e = Evidence::empty(net.var_count());
        assert!((net.marginal(&e) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_of_single_variable() {
        let net = chain();
        let mut e = Evidence::empty(3);
        e.observe(VarId::from_index(1), 0);
        // Pr(B=0) = 0.3*0.9 + 0.7*0.2
        assert!((net.marginal(&e) - (0.3 * 0.9 + 0.7 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn conditional_matches_bayes_rule() {
        let net = chain();
        let mut e = Evidence::empty(3);
        e.observe(VarId::from_index(2), 1);
        let pr = net.conditional(VarId::from_index(0), 0, &e);
        // Pr(A=0 | C=1) by hand:
        let num: f64 = [0, 1]
            .iter()
            .map(|&b| net.joint_probability(&[0, b, 1]))
            .sum();
        let den: f64 = [0usize, 1]
            .iter()
            .flat_map(|&a| [0usize, 1].map(|b| net.joint_probability(&[a, b, 1])))
            .sum();
        assert!((pr - num / den).abs() < 1e-12);
    }

    #[test]
    fn mpe_finds_the_best_completion() {
        let net = chain();
        let e = Evidence::empty(3);
        let (best, p) = net.mpe(&e);
        // Best assignment by inspection: a1 (0.7), b1 (0.8), c1 (0.75).
        assert_eq!(best, vec![1, 1, 1]);
        assert!((p - 0.7 * 0.8 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn topological_order_respects_edges() {
        let net = chain();
        let pos: Vec<usize> = (0..3)
            .map(|i| {
                net.topological_order()
                    .iter()
                    .position(|v| v.index() == i)
                    .unwrap()
            })
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[1] < pos[2]);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("A", 2);
        let c = b.variable("B", 2);
        b.cpt(a, [c], [0.5, 0.5, 0.5, 0.5]).unwrap();
        b.cpt(c, [a], [0.5, 0.5, 0.5, 0.5]).unwrap();
        assert_eq!(b.build().unwrap_err(), BayesError::CyclicNetwork);
    }

    #[test]
    fn missing_cpt_is_rejected() {
        let mut b = BayesNetBuilder::new();
        let _a = b.variable("A", 2);
        assert!(matches!(
            b.build().unwrap_err(),
            BayesError::MissingCpt { .. }
        ));
    }

    #[test]
    fn duplicate_cpt_is_rejected() {
        let mut b = BayesNetBuilder::new();
        let a = b.variable("A", 2);
        b.cpt(a, [], [0.5, 0.5]).unwrap();
        assert!(matches!(
            b.cpt(a, [], [0.4, 0.6]).unwrap_err(),
            BayesError::DuplicateCpt { .. }
        ));
    }

    #[test]
    fn sampling_approximates_the_marginal() {
        let net = chain();
        let mut rng = StdRng::seed_from_u64(42);
        let samples = net.sample_n(&mut rng, 20_000);
        let freq_a1 = samples.iter().filter(|s| s[0] == 1).count() as f64 / 20_000.0;
        assert!((freq_a1 - 0.7).abs() < 0.02, "freq={freq_a1}");
        // Pr(C=1) = Pr(B=0)*0.4 + Pr(B=1)*0.75
        let pr_b0 = 0.3 * 0.9 + 0.7 * 0.2;
        let pr_c1 = pr_b0 * 0.4 + (1.0 - pr_b0) * 0.75;
        let freq_c1 = samples.iter().filter(|s| s[2] == 1).count() as f64 / 20_000.0;
        assert!((freq_c1 - pr_c1).abs() < 0.02, "freq={freq_c1}");
    }

    #[test]
    fn structure_queries() {
        let net = chain();
        assert_eq!(net.roots(), vec![VarId::from_index(0)]);
        assert_eq!(net.leaves(), vec![VarId::from_index(2)]);
        assert_eq!(net.edge_count(), 2);
        assert_eq!(net.parameter_count(), 2 + 4 + 4);
        assert_eq!(net.find("B"), Some(VarId::from_index(1)));
        assert_eq!(net.find("Z"), None);
    }
}
