//! Columnar evidence batches: the bulk-evaluation input format.
//!
//! An [`EvidenceBatch`] holds N evidence instances ("lanes") in
//! structure-of-arrays layout: one column of observed states per variable,
//! `column(var)[lane]`. A batched circuit evaluator streams each
//! indicator's column across all lanes at once instead of re-walking a
//! pointer-based [`Evidence`] per instance, which is what makes
//! `problp-engine`'s lane-parallel sweeps cache-friendly.

use crate::dataset::LabeledDataset;
use crate::error::BayesError;
use crate::evidence::Evidence;
use crate::variable::VarId;

/// The column value marking an unobserved (marginalized) variable.
pub const UNOBSERVED: i32 = -1;

/// What a serving layer is asked to compute for every lane of an
/// [`EvidenceBatch`] — the descriptor `problp-engine`'s
/// `Engine::evaluate_query` dispatches on.
///
/// The three kinds mirror the paper's query taxonomy (§3.2): marginal
/// `Pr(e)`, most probable explanation `max_x Pr(x, e)` with its argmax,
/// and the conditional posterior `Pr(q = s | e)` over every state `s`
/// of a query variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchQuery {
    /// The probability of each lane's evidence, `Pr(e)`.
    Marginal,
    /// The most probable completion of each lane's evidence and its
    /// joint probability, `argmax/max_x Pr(x, e)`.
    Mpe,
    /// The posterior `Pr(q = s | e)` for every state `s` of `query_var`,
    /// served as one joint (numerator) lane per state over a shared
    /// marginal (denominator) lane.
    Conditional {
        /// The query variable `q` (left unobserved in the batch).
        query_var: VarId,
    },
}

/// N evidence instances in structure-of-arrays (columnar) layout.
///
/// Lane `l` of the batch is one evidence instance; `column(var)[l]` is its
/// observed state for `var`, or [`UNOBSERVED`].
///
/// # Examples
///
/// ```
/// use problp_bayes::{Evidence, EvidenceBatch, VarId};
///
/// let mut e = Evidence::empty(3);
/// e.observe(VarId::from_index(1), 2);
/// let batch = EvidenceBatch::from_evidences(3, &[Evidence::empty(3), e])?;
/// assert_eq!(batch.lanes(), 2);
/// assert_eq!(batch.state(1, VarId::from_index(1)), Some(2));
/// assert_eq!(batch.state(0, VarId::from_index(1)), None);
/// # Ok::<(), problp_bayes::BayesError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EvidenceBatch {
    var_count: usize,
    lanes: usize,
    /// `columns[var][lane]`: observed state or [`UNOBSERVED`].
    columns: Vec<Vec<i32>>,
}

impl EvidenceBatch {
    /// Creates an empty batch over `var_count` variables.
    pub fn new(var_count: usize) -> Self {
        EvidenceBatch {
            var_count,
            lanes: 0,
            columns: vec![Vec::new(); var_count],
        }
    }

    /// Builds a batch from a slice of evidences.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidDataset`] if any evidence ranges over a
    /// different number of variables than `var_count`.
    pub fn from_evidences(var_count: usize, evidences: &[Evidence]) -> Result<Self, BayesError> {
        let mut batch = EvidenceBatch::new(var_count);
        for (i, e) in evidences.iter().enumerate() {
            if e.len() != var_count {
                return Err(BayesError::InvalidDataset {
                    reason: format!(
                        "evidence {i} ranges over {} variables, batch expects {var_count}",
                        e.len()
                    ),
                });
            }
            batch.push(e);
        }
        Ok(batch)
    }

    /// Builds a batch of classifier test instances from a dataset: each
    /// row becomes one lane observing `feature_vars[j] = row[j]`, with
    /// every other variable (most importantly the class) unobserved.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidDataset`] if the dataset's feature
    /// count does not match `feature_vars`, or a feature variable is out
    /// of range.
    pub fn from_dataset(
        dataset: &LabeledDataset,
        feature_vars: &[VarId],
        var_count: usize,
    ) -> Result<Self, BayesError> {
        if dataset.feature_count() != feature_vars.len() {
            return Err(BayesError::InvalidDataset {
                reason: format!(
                    "dataset has {} features but {} feature variables were given",
                    dataset.feature_count(),
                    feature_vars.len()
                ),
            });
        }
        if let Some(v) = feature_vars.iter().find(|v| v.index() >= var_count) {
            return Err(BayesError::InvalidDataset {
                reason: format!("feature variable {v} out of range for {var_count} variables"),
            });
        }
        let mut batch = EvidenceBatch::new(var_count);
        for row in dataset.features() {
            let lane = batch.push_unobserved();
            for (&var, &state) in feature_vars.iter().zip(row) {
                batch.columns[var.index()][lane] = state as i32;
            }
        }
        Ok(batch)
    }

    /// Appends one evidence instance as a new lane.
    ///
    /// # Panics
    ///
    /// Panics if the evidence ranges over a different number of variables.
    pub fn push(&mut self, evidence: &Evidence) {
        assert_eq!(
            evidence.len(),
            self.var_count,
            "evidence length does not match the batch's variable count"
        );
        let lane = self.push_unobserved();
        for (var, state) in evidence.iter() {
            self.columns[var.index()][lane] = state as i32;
        }
    }

    /// Appends a lane with nothing observed, returning its index.
    pub fn push_unobserved(&mut self) -> usize {
        for col in &mut self.columns {
            col.push(UNOBSERVED);
        }
        let lane = self.lanes;
        self.lanes += 1;
        lane
    }

    /// Number of evidence instances (lanes).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Returns `true` if the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Number of variables each lane ranges over.
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// The state column of `var`: one entry per lane, [`UNOBSERVED`] where
    /// the variable is marginalized.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn column(&self, var: VarId) -> &[i32] {
        &self.columns[var.index()]
    }

    /// The observed state of `var` in `lane`, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` or `var` is out of range.
    pub fn state(&self, lane: usize, var: VarId) -> Option<usize> {
        assert!(lane < self.lanes, "lane out of range");
        let s = self.columns[var.index()][lane];
        (s >= 0).then_some(s as usize)
    }

    /// The indicator value `λ_{var=state}` of `lane`: 1.0 unless the
    /// lane's evidence contradicts `var = state`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` or `var` is out of range.
    pub fn indicator(&self, lane: usize, var: VarId, state: usize) -> f64 {
        match self.state(lane, var) {
            Some(observed) if observed != state => 0.0,
            _ => 1.0,
        }
    }

    /// Reconstructs one lane as an [`Evidence`] (for interoperating with
    /// the scalar evaluation paths).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn evidence(&self, lane: usize) -> Evidence {
        let mut e = Evidence::empty(self.var_count);
        for v in 0..self.var_count {
            if let Some(s) = self.state(lane, VarId::from_index(v)) {
                e.observe(VarId::from_index(v), s);
            }
        }
        e
    }

    /// Observes `var` to `state` in every lane, in place — how a serving
    /// loop steps one working copy through the numerator batches of a
    /// conditional query without recloning per state.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn observe_all(&mut self, var: VarId, state: usize) {
        for s in &mut self.columns[var.index()] {
            *s = state as i32;
        }
    }

    /// A copy of the batch with `var` observed to `state` in every lane —
    /// the numerator batches of conditional queries, `Pr(q = s, e)`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn with_observed(&self, var: VarId, state: usize) -> Self {
        let mut out = self.clone();
        out.observe_all(var, state);
        out
    }

    /// Appends every lane of `other`, in order — the inverse of
    /// [`EvidenceBatch::split_off`], reassembling split batches.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidDataset`] if the batches range over
    /// different numbers of variables.
    pub fn merge(&mut self, other: &EvidenceBatch) -> Result<(), BayesError> {
        if other.var_count != self.var_count {
            return Err(BayesError::InvalidDataset {
                reason: format!(
                    "cannot merge a batch over {} variables into one over {}",
                    other.var_count, self.var_count
                ),
            });
        }
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.extend_from_slice(src);
        }
        self.lanes += other.lanes;
        Ok(())
    }

    /// Splits the batch in two at `at`: `self` keeps lanes `..at` in
    /// place (no copying), the returned batch holds lanes `at..` — the
    /// admission queue's cut when a coalescing group exceeds the
    /// dispatch size.
    ///
    /// # Panics
    ///
    /// Panics if `at > lanes`.
    pub fn split_off(&mut self, at: usize) -> EvidenceBatch {
        assert!(at <= self.lanes, "split point out of range");
        let columns = self.columns.iter_mut().map(|c| c.split_off(at)).collect();
        let tail = EvidenceBatch {
            var_count: self.var_count,
            lanes: self.lanes - at,
            columns,
        };
        self.lanes = at;
        tail
    }
}

/// The canonical bulk-workload evidence pool: the empty evidence plus
/// every single-variable observation `{var = state}`, in variable order.
///
/// This is the instance mix the error sweeps, the throughput studies and
/// the CLI all cycle through; sharing it keeps their workloads
/// comparable.
pub fn single_variable_evidences(var_arities: &[usize]) -> Vec<Evidence> {
    let var_count = var_arities.len();
    let mut out = vec![Evidence::empty(var_count)];
    for (v, &arity) in var_arities.iter().enumerate() {
        for s in 0..arity {
            let mut e = Evidence::empty(var_count);
            e.observe(VarId::from_index(v), s);
            out.push(e);
        }
    }
    out
}

impl std::fmt::Display for EvidenceBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EvidenceBatch({} lanes over {} variables)",
            self.lanes, self.var_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn round_trips_evidences() {
        let mut e0 = Evidence::empty(3);
        e0.observe(v(0), 1);
        let mut e1 = Evidence::empty(3);
        e1.observe(v(2), 0);
        let batch = EvidenceBatch::from_evidences(3, &[e0.clone(), e1.clone()]).unwrap();
        assert_eq!(batch.lanes(), 2);
        assert_eq!(batch.evidence(0), e0);
        assert_eq!(batch.evidence(1), e1);
    }

    #[test]
    fn columns_are_lane_major() {
        let mut e0 = Evidence::empty(2);
        e0.observe(v(1), 1);
        let batch = EvidenceBatch::from_evidences(2, &[Evidence::empty(2), e0]).unwrap();
        assert_eq!(batch.column(v(0)), &[UNOBSERVED, UNOBSERVED]);
        assert_eq!(batch.column(v(1)), &[UNOBSERVED, 1]);
    }

    #[test]
    fn indicators_match_the_scalar_convention() {
        let mut e = Evidence::empty(2);
        e.observe(v(0), 0);
        let batch = EvidenceBatch::from_evidences(2, std::slice::from_ref(&e)).unwrap();
        assert_eq!(batch.indicator(0, v(0), 0), e.indicator(v(0), 0));
        assert_eq!(batch.indicator(0, v(0), 1), e.indicator(v(0), 1));
        assert_eq!(batch.indicator(0, v(1), 1), 1.0);
    }

    #[test]
    fn with_observed_overrides_every_lane() {
        let mut e = Evidence::empty(2);
        e.observe(v(0), 0);
        let batch = EvidenceBatch::from_evidences(2, &[Evidence::empty(2), e]).unwrap();
        let forced = batch.with_observed(v(0), 1);
        assert_eq!(forced.column(v(0)), &[1, 1]);
        // Original untouched.
        assert_eq!(batch.column(v(0)), &[UNOBSERVED, 0]);
    }

    #[test]
    fn split_off_cuts_in_place() {
        let mut batch = EvidenceBatch::new(2);
        for i in 0..5 {
            let mut e = Evidence::empty(2);
            e.observe(v(0), i % 2);
            batch.push(&e);
        }
        let original = batch.clone();
        let tail = batch.split_off(2);
        assert_eq!(batch.lanes(), 2);
        assert_eq!(tail.lanes(), 3);
        let mut rebuilt = batch.clone();
        rebuilt.merge(&tail).unwrap();
        assert_eq!(rebuilt, original);
        // Degenerate cuts.
        let mut b = original.clone();
        assert_eq!(b.split_off(5).lanes(), 0);
        assert_eq!(b, original);
        let mut b = original.clone();
        let all = b.split_off(0);
        assert_eq!(b.lanes(), 0);
        assert_eq!(all, original);
    }

    #[test]
    fn merge_rejects_mismatched_variable_counts() {
        let mut batch = EvidenceBatch::new(2);
        let err = batch.merge(&EvidenceBatch::new(3)).unwrap_err();
        assert!(matches!(err, BayesError::InvalidDataset { .. }));
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let err = EvidenceBatch::from_evidences(3, &[Evidence::empty(2)]).unwrap_err();
        assert!(matches!(err, BayesError::InvalidDataset { .. }));
    }

    #[test]
    fn from_dataset_observes_features_only() {
        let ds =
            LabeledDataset::new(vec![vec![0, 1], vec![1, 0]], vec![0, 1], vec![2, 2], 2).unwrap();
        // Class variable 0, features at 1 and 2.
        let batch = EvidenceBatch::from_dataset(&ds, &[v(1), v(2)], 3).unwrap();
        assert_eq!(batch.lanes(), 2);
        assert_eq!(batch.state(0, v(0)), None);
        assert_eq!(batch.state(0, v(1)), Some(0));
        assert_eq!(batch.state(0, v(2)), Some(1));
        assert_eq!(batch.state(1, v(1)), Some(1));
    }
}
