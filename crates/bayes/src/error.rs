//! Error types for Bayesian-network construction and queries.

use crate::variable::VarId;

/// Errors produced when building or querying a Bayesian network.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum BayesError {
    /// A CPT's table length or arity list does not match its declaration.
    CptShapeMismatch {
        /// The child variable of the offending CPT.
        var: VarId,
        /// Expected number of entries (or arities).
        expected: usize,
        /// Actual number supplied.
        actual: usize,
    },
    /// A probability was outside `[0, 1]` or NaN.
    InvalidProbability {
        /// The child variable of the offending CPT.
        var: VarId,
        /// The offending value.
        value: f64,
    },
    /// A CPT row does not sum to one.
    RowNotNormalized {
        /// The child variable of the offending CPT.
        var: VarId,
        /// Row index (flattened parent assignment).
        row: usize,
        /// The row's actual sum.
        sum: f64,
    },
    /// A variable has no CPT.
    MissingCpt {
        /// The variable without a CPT.
        var: VarId,
    },
    /// A variable has more than one CPT.
    DuplicateCpt {
        /// The variable with multiple CPTs.
        var: VarId,
    },
    /// The directed graph contains a cycle.
    CyclicNetwork,
    /// A CPT referenced a variable id that was never declared.
    UnknownVariable {
        /// The undeclared variable id.
        var: VarId,
    },
    /// A CPT's declared arities disagree with the variables' arities.
    ArityMismatch {
        /// The child variable of the offending CPT.
        var: VarId,
    },
    /// The dataset passed to a learner was empty or inconsistent.
    InvalidDataset {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for BayesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BayesError::CptShapeMismatch {
                var,
                expected,
                actual,
            } => write!(
                f,
                "cpt for {var} has wrong shape: expected {expected} entries, got {actual}"
            ),
            BayesError::InvalidProbability { var, value } => {
                write!(f, "cpt for {var} contains invalid probability {value}")
            }
            BayesError::RowNotNormalized { var, row, sum } => {
                write!(f, "cpt row {row} for {var} sums to {sum}, expected 1")
            }
            BayesError::MissingCpt { var } => write!(f, "variable {var} has no cpt"),
            BayesError::DuplicateCpt { var } => {
                write!(f, "variable {var} has more than one cpt")
            }
            BayesError::CyclicNetwork => write!(f, "the network graph contains a cycle"),
            BayesError::UnknownVariable { var } => {
                write!(f, "cpt references undeclared variable {var}")
            }
            BayesError::ArityMismatch { var } => {
                write!(
                    f,
                    "cpt arities for {var} disagree with variable declarations"
                )
            }
            BayesError::InvalidDataset { reason } => write!(f, "invalid dataset: {reason}"),
        }
    }
}

impl std::error::Error for BayesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        let e = BayesError::RowNotNormalized {
            var: VarId::from_index(4),
            row: 2,
            sum: 0.8,
        };
        let msg = e.to_string();
        assert!(msg.contains("X4"));
        assert!(msg.contains("0.8"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<BayesError>();
    }
}
