//! Ready-made benchmark networks.
//!
//! * [`figure1`] — the example network of the paper's Figure 1.
//! * [`sprinkler`], [`asia`], [`student`] — classic small networks with
//!   literature parameters, used as test fixtures.
//! * [`alarm`] — the 37-node / 46-edge ALARM monitoring network
//!   (Beinlich et al. 1989), the paper's standard mid-size benchmark. The
//!   *structure* (nodes, arities, edges) is the published one; the CPT
//!   entries are seeded Dirichlet draws (see `DESIGN.md`, substitution 5).
//! * [`random_network`] — seeded random DAGs for property tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::{BayesNet, BayesNetBuilder};
use crate::rngutil::dirichlet;

/// The example network of the paper's Figure 1(a): `A → B`, `A → C`, with
/// `A`, `B` binary and `C` ternary.
pub fn figure1() -> BayesNet {
    let mut b = BayesNetBuilder::new();
    let a = b.variable("A", 2);
    let bb = b.variable("B", 2);
    let c = b.variable("C", 3);
    b.cpt(a, [], [0.6, 0.4]).expect("valid cpt");
    b.cpt(bb, [a], [0.7, 0.3, 0.2, 0.8]).expect("valid cpt");
    b.cpt(c, [a], [0.5, 0.3, 0.2, 0.1, 0.4, 0.5])
        .expect("valid cpt");
    b.build().expect("figure 1 network is valid")
}

/// The classic sprinkler network: Cloudy → {Sprinkler, Rain} → WetGrass.
pub fn sprinkler() -> BayesNet {
    let mut b = BayesNetBuilder::new();
    let cloudy = b.variable("Cloudy", 2);
    let sprinkler = b.variable("Sprinkler", 2);
    let rain = b.variable("Rain", 2);
    let wet = b.variable("WetGrass", 2);
    b.cpt(cloudy, [], [0.5, 0.5]).expect("valid cpt");
    b.cpt(sprinkler, [cloudy], [0.5, 0.5, 0.9, 0.1])
        .expect("valid cpt");
    b.cpt(rain, [cloudy], [0.8, 0.2, 0.2, 0.8])
        .expect("valid cpt");
    b.cpt(
        wet,
        [sprinkler, rain],
        [1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99],
    )
    .expect("valid cpt");
    b.build().expect("sprinkler network is valid")
}

/// The Asia ("chest clinic") network of Lauritzen & Spiegelhalter with the
/// canonical parameters. State 0 is "no", state 1 is "yes".
pub fn asia() -> BayesNet {
    let mut b = BayesNetBuilder::new();
    let visit = b.variable("VisitAsia", 2);
    let tub = b.variable("Tuberculosis", 2);
    let smoke = b.variable("Smoking", 2);
    let lung = b.variable("LungCancer", 2);
    let bronc = b.variable("Bronchitis", 2);
    let either = b.variable("Either", 2);
    let xray = b.variable("XRay", 2);
    let dysp = b.variable("Dyspnoea", 2);
    b.cpt(visit, [], [0.99, 0.01]).expect("valid cpt");
    b.cpt(tub, [visit], [0.99, 0.01, 0.95, 0.05])
        .expect("valid cpt");
    b.cpt(smoke, [], [0.5, 0.5]).expect("valid cpt");
    b.cpt(lung, [smoke], [0.99, 0.01, 0.9, 0.1])
        .expect("valid cpt");
    b.cpt(bronc, [smoke], [0.7, 0.3, 0.4, 0.6])
        .expect("valid cpt");
    // Either = Tuberculosis OR LungCancer (deterministic).
    b.cpt(
        either,
        [tub, lung],
        [1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
    )
    .expect("valid cpt");
    b.cpt(xray, [either], [0.95, 0.05, 0.02, 0.98])
        .expect("valid cpt");
    b.cpt(
        dysp,
        [bronc, either],
        [0.9, 0.1, 0.3, 0.7, 0.2, 0.8, 0.1, 0.9],
    )
    .expect("valid cpt");
    b.build().expect("asia network is valid")
}

/// Koller & Friedman's student network (Difficulty, Intelligence, Grade,
/// SAT, Letter) with the textbook parameters.
pub fn student() -> BayesNet {
    let mut b = BayesNetBuilder::new();
    let diff = b.variable("Difficulty", 2);
    let intel = b.variable("Intelligence", 2);
    let grade = b.variable("Grade", 3);
    let sat = b.variable("SAT", 2);
    let letter = b.variable("Letter", 2);
    b.cpt(diff, [], [0.6, 0.4]).expect("valid cpt");
    b.cpt(intel, [], [0.7, 0.3]).expect("valid cpt");
    b.cpt(
        grade,
        [intel, diff],
        [
            0.3, 0.4, 0.3, // i0, d0
            0.05, 0.25, 0.7, // i0, d1
            0.9, 0.08, 0.02, // i1, d0
            0.5, 0.3, 0.2, // i1, d1
        ],
    )
    .expect("valid cpt");
    b.cpt(sat, [intel], [0.95, 0.05, 0.2, 0.8])
        .expect("valid cpt");
    b.cpt(letter, [grade], [0.1, 0.9, 0.4, 0.6, 0.99, 0.01])
        .expect("valid cpt");
    b.build().expect("student network is valid")
}

/// Pearl's earthquake network: Burglary and Earthquake cause Alarm,
/// which prompts John and Mary to call. Canonical textbook parameters.
pub fn earthquake() -> BayesNet {
    let mut b = BayesNetBuilder::new();
    let burglary = b.variable("Burglary", 2);
    let quake = b.variable("Earthquake", 2);
    let alarm = b.variable("Alarm", 2);
    let john = b.variable("JohnCalls", 2);
    let mary = b.variable("MaryCalls", 2);
    b.cpt(burglary, [], [0.999, 0.001]).expect("valid cpt");
    b.cpt(quake, [], [0.998, 0.002]).expect("valid cpt");
    b.cpt(
        alarm,
        [burglary, quake],
        [
            0.999, 0.001, // no burglary, no quake
            0.71, 0.29, // no burglary, quake
            0.06, 0.94, // burglary, no quake
            0.05, 0.95, // burglary, quake
        ],
    )
    .expect("valid cpt");
    b.cpt(john, [alarm], [0.95, 0.05, 0.1, 0.9])
        .expect("valid cpt");
    b.cpt(mary, [alarm], [0.99, 0.01, 0.3, 0.7])
        .expect("valid cpt");
    b.build().expect("earthquake network is valid")
}

/// The cancer network (Korb & Nicholson): Pollution and Smoking cause
/// Cancer, observed through XRay and Dyspnoea.
pub fn cancer() -> BayesNet {
    let mut b = BayesNetBuilder::new();
    let pollution = b.variable("Pollution", 2);
    let smoker = b.variable("Smoker", 2);
    let cancer = b.variable("Cancer", 2);
    let xray = b.variable("XRay", 2);
    let dysp = b.variable("Dyspnoea", 2);
    b.cpt(pollution, [], [0.9, 0.1]).expect("valid cpt");
    b.cpt(smoker, [], [0.7, 0.3]).expect("valid cpt");
    b.cpt(
        cancer,
        [pollution, smoker],
        [
            0.999, 0.001, // low pollution, non-smoker
            0.97, 0.03, // low pollution, smoker
            0.98, 0.02, // high pollution, non-smoker
            0.95, 0.05, // high pollution, smoker
        ],
    )
    .expect("valid cpt");
    b.cpt(xray, [cancer], [0.8, 0.2, 0.1, 0.9])
        .expect("valid cpt");
    b.cpt(dysp, [cancer], [0.7, 0.3, 0.35, 0.65])
        .expect("valid cpt");
    b.build().expect("cancer network is valid")
}

/// Structure of the ALARM network: `(name, arity, parent names)`.
///
/// Topology and arities follow Beinlich et al. (1989) — 37 nodes, 46
/// edges, the standard patient-monitoring benchmark the paper evaluates on.
const ALARM_STRUCTURE: &[(&str, usize, &[&str])] = &[
    ("HYPOVOLEMIA", 2, &[]),
    ("LVFAILURE", 2, &[]),
    ("ERRLOWOUTPUT", 2, &[]),
    ("ERRCAUTER", 2, &[]),
    ("INSUFFANESTH", 2, &[]),
    ("ANAPHYLAXIS", 2, &[]),
    ("KINKEDTUBE", 2, &[]),
    ("DISCONNECT", 2, &[]),
    ("PULMEMBOLUS", 2, &[]),
    ("FIO2", 2, &[]),
    ("MINVOLSET", 3, &[]),
    ("INTUBATION", 3, &[]),
    ("LVEDVOLUME", 3, &["HYPOVOLEMIA", "LVFAILURE"]),
    ("STROKEVOLUME", 3, &["HYPOVOLEMIA", "LVFAILURE"]),
    ("CVP", 3, &["LVEDVOLUME"]),
    ("PCWP", 3, &["LVEDVOLUME"]),
    ("HISTORY", 2, &["LVFAILURE"]),
    ("TPR", 3, &["ANAPHYLAXIS"]),
    ("VENTMACH", 4, &["MINVOLSET"]),
    ("VENTTUBE", 4, &["DISCONNECT", "VENTMACH"]),
    ("VENTLUNG", 4, &["INTUBATION", "KINKEDTUBE", "VENTTUBE"]),
    ("VENTALV", 4, &["INTUBATION", "VENTLUNG"]),
    ("ARTCO2", 3, &["VENTALV"]),
    ("PVSAT", 3, &["FIO2", "VENTALV"]),
    ("SHUNT", 2, &["INTUBATION", "PULMEMBOLUS"]),
    ("SAO2", 3, &["PVSAT", "SHUNT"]),
    ("PAP", 3, &["PULMEMBOLUS"]),
    ("PRESS", 4, &["INTUBATION", "KINKEDTUBE", "VENTTUBE"]),
    ("EXPCO2", 4, &["ARTCO2", "VENTLUNG"]),
    ("MINVOL", 4, &["INTUBATION", "VENTLUNG"]),
    ("CATECHOL", 2, &["ARTCO2", "INSUFFANESTH", "SAO2", "TPR"]),
    ("HR", 3, &["CATECHOL"]),
    ("CO", 3, &["HR", "STROKEVOLUME"]),
    ("BP", 3, &["CO", "TPR"]),
    ("HRBP", 3, &["ERRLOWOUTPUT", "HR"]),
    ("HREKG", 3, &["ERRCAUTER", "HR"]),
    ("HRSAT", 3, &["ERRCAUTER", "HR"]),
];

/// Builds the ALARM network with the published structure and seeded
/// Dirichlet CPTs (concentration 0.6, which gives realistic, skewed rows).
///
/// The same seed always yields the same network.
pub fn alarm(seed: u64) -> BayesNet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = BayesNetBuilder::new();
    let mut ids = std::collections::HashMap::new();
    for &(name, arity, _) in ALARM_STRUCTURE {
        ids.insert(name, b.variable(name, arity));
    }
    for &(name, arity, parents) in ALARM_STRUCTURE {
        let parent_ids: Vec<_> = parents.iter().map(|p| ids[p]).collect();
        let rows: usize = parents
            .iter()
            .map(|p| {
                ALARM_STRUCTURE
                    .iter()
                    .find(|(n, _, _)| n == p)
                    .expect("parent declared")
                    .1
            })
            .product();
        let mut table = Vec::with_capacity(rows * arity);
        for _ in 0..rows {
            table.extend(dirichlet(&mut rng, 0.6, arity));
        }
        b.cpt(ids[name], parent_ids, table).expect("valid cpt");
    }
    b.build().expect("alarm network is valid")
}

/// Generates a seeded random Bayesian network for property tests:
/// `var_count` variables with arities in `2..=max_arity`, each variable
/// choosing up to `max_parents` parents among the previously declared ones,
/// and Dirichlet(1.0) CPT rows.
///
/// # Panics
///
/// Panics if `var_count == 0`, `max_arity < 2`.
pub fn random_network(
    seed: u64,
    var_count: usize,
    max_parents: usize,
    max_arity: usize,
) -> BayesNet {
    assert!(var_count > 0, "need at least one variable");
    assert!(max_arity >= 2, "arity must be at least 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = BayesNetBuilder::new();
    let mut vars = Vec::with_capacity(var_count);
    let mut arities = Vec::with_capacity(var_count);
    for i in 0..var_count {
        let arity = rng.random_range(2..=max_arity);
        vars.push(b.variable(format!("V{i}"), arity));
        arities.push(arity);
    }
    for i in 0..var_count {
        let possible = i; // parents come from earlier variables only
        let k = rng.random_range(0..=max_parents.min(possible));
        // Draw k distinct earlier variables.
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < k {
            let p = rng.random_range(0..possible);
            if !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        chosen.sort_unstable();
        let rows: usize = chosen.iter().map(|&p| arities[p]).product();
        let mut table = Vec::with_capacity(rows * arities[i]);
        for _ in 0..rows {
            table.extend(dirichlet(&mut rng, 1.0, arities[i]));
        }
        let parents: Vec<_> = chosen.iter().map(|&p| vars[p]).collect();
        b.cpt(vars[i], parents, table).expect("valid cpt");
    }
    b.build().expect("random network construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Evidence;
    use crate::variable::VarId;

    #[test]
    fn figure1_matches_the_paper_example() {
        let net = figure1();
        assert_eq!(net.var_count(), 3);
        assert_eq!(net.edge_count(), 2);
        // The paper's example evidence e = {A = a1, C = c3}: with our
        // 0-based states, A=0 and C=2.
        let mut e = Evidence::empty(3);
        e.observe(net.find("A").unwrap(), 0);
        e.observe(net.find("C").unwrap(), 2);
        let pr = net.marginal(&e);
        // Pr(a0) * Pr(c2 | a0) (B marginalized away).
        assert!((pr - 0.6 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn sprinkler_posterior_sanity() {
        let net = sprinkler();
        let mut e = Evidence::empty(4);
        e.observe(net.find("WetGrass").unwrap(), 1);
        // Grass is wet: rain should be more likely than its prior 0.5.
        let pr_rain = net.conditional(net.find("Rain").unwrap(), 1, &e);
        assert!(pr_rain > 0.5, "pr_rain={pr_rain}");
    }

    #[test]
    fn asia_classic_query() {
        let net = asia();
        // Pr(Tuberculosis=yes) with no evidence is small.
        let mut e = Evidence::empty(8);
        e.observe(net.find("Tuberculosis").unwrap(), 1);
        let pr = net.marginal(&e);
        assert!((pr - (0.99 * 0.01 + 0.01 * 0.05)).abs() < 1e-12);
        // Positive x-ray raises the cancer posterior.
        let mut e = Evidence::empty(8);
        e.observe(net.find("XRay").unwrap(), 1);
        let lung = net.find("LungCancer").unwrap();
        let posterior = net.conditional(lung, 1, &e);
        let mut prior_e = Evidence::empty(8);
        prior_e.observe(lung, 1);
        let prior = net.marginal(&prior_e);
        assert!(posterior > prior);
    }

    #[test]
    fn student_grade_distribution() {
        let net = student();
        let g = net.find("Grade").unwrap();
        let mut total = 0.0;
        for s in 0..3 {
            let mut e = Evidence::empty(5);
            e.observe(g, s);
            total += net.marginal(&e);
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn earthquake_classic_posterior() {
        let net = earthquake();
        // Pearl's classic query: Pr(Burglary | JohnCalls, MaryCalls) ≈ 0.284.
        let mut e = Evidence::empty(5);
        e.observe(net.find("JohnCalls").unwrap(), 1);
        e.observe(net.find("MaryCalls").unwrap(), 1);
        let pr = net.conditional(net.find("Burglary").unwrap(), 1, &e);
        assert!((pr - 0.284).abs() < 0.005, "pr={pr}");
    }

    #[test]
    fn cancer_network_sanity() {
        let net = cancer();
        assert_eq!(net.var_count(), 5);
        // Smoking raises the cancer posterior.
        let c = net.find("Cancer").unwrap();
        let s = net.find("Smoker").unwrap();
        let mut smoker = Evidence::empty(5);
        smoker.observe(s, 1);
        let mut nonsmoker = Evidence::empty(5);
        nonsmoker.observe(s, 0);
        assert!(net.conditional(c, 1, &smoker) > net.conditional(c, 1, &nonsmoker));
    }

    #[test]
    fn alarm_has_published_shape() {
        let net = alarm(7);
        assert_eq!(net.var_count(), 37);
        assert_eq!(net.edge_count(), 46);
        // CATECHOL has four parents (the widest family).
        let cat = net.find("CATECHOL").unwrap();
        assert_eq!(net.cpt(cat).parents().len(), 4);
        // Same seed reproduces the same parameters.
        assert_eq!(net, alarm(7));
        assert_ne!(net, alarm(8));
    }

    #[test]
    fn alarm_cpts_are_strictly_positive() {
        let net = alarm(7);
        for cpt in net.cpts() {
            assert!(cpt.table().iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn alarm_sampling_is_consistent() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let net = alarm(7);
        let mut rng = StdRng::seed_from_u64(99);
        let samples = net.sample_n(&mut rng, 100);
        for s in &samples {
            assert_eq!(s.len(), 37);
            for (i, &state) in s.iter().enumerate() {
                assert!(state < net.variable(VarId::from_index(i)).arity());
            }
        }
    }

    #[test]
    fn random_networks_are_valid_and_reproducible() {
        for seed in 0..5 {
            let net = random_network(seed, 8, 3, 4);
            assert_eq!(net.var_count(), 8);
            assert_eq!(net, random_network(seed, 8, 3, 4));
            let e = Evidence::empty(8);
            assert!((net.marginal(&e) - 1.0).abs() < 1e-9);
        }
    }
}
