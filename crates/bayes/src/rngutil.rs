//! Small sampling utilities (normal, gamma, Dirichlet) built on `rand`.
//!
//! These keep the workspace's dependency footprint to the plain `rand`
//! crate; the distributions are only used to generate benchmark CPTs and
//! synthetic sensor data, so simple textbook algorithms suffice.

use rand::Rng;

/// Draws a standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 (log of zero).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or not finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev >= 0.0 && std_dev.is_finite(),
        "invalid std deviation"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draws a Gamma(shape, 1) sample using Marsaglia–Tsang, with the usual
/// boost for `shape < 1`.
///
/// # Panics
///
/// Panics if `shape` is not positive and finite.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "gamma shape must be positive"
    );
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = loop {
            let u: f64 = rng.random();
            if u > 0.0 {
                break u;
            }
        };
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draws a Dirichlet sample with symmetric concentration `alpha` over `k`
/// categories. Small `alpha` (< 1) produces skewed, CPT-like rows; large
/// `alpha` produces near-uniform rows.
///
/// Entries are clamped away from exact zero so the resulting CPTs have no
/// structurally impossible states (keeps min-value analysis meaningful).
///
/// # Panics
///
/// Panics if `k < 2` or `alpha` is not positive.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k >= 2, "dirichlet needs at least two categories");
    assert!(alpha > 0.0, "dirichlet concentration must be positive");
    const FLOOR: f64 = 1e-4;
    let mut draws: Vec<f64> = (0..k).map(|_| gamma(rng, alpha).max(FLOOR)).collect();
    let sum: f64 = draws.iter().sum();
    for d in &mut draws {
        *d /= sum;
    }
    // Renormalize exactly to keep CPT validation happy.
    let sum: f64 = draws.iter().sum();
    let last = draws.len() - 1;
    draws[last] += 1.0 - sum;
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert!((var - 9.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        for shape in [0.5, 1.0, 3.0, 10.0] {
            let n = 30_000;
            let mean: f64 = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "shape={shape} mean={mean}"
            );
        }
    }

    #[test]
    fn dirichlet_rows_are_normalized_and_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in [2usize, 3, 7] {
            for alpha in [0.3, 1.0, 5.0] {
                let row = dirichlet(&mut rng, alpha, k);
                assert_eq!(row.len(), k);
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "sum={sum}");
                assert!(row.iter().all(|&p| p > 0.0));
            }
        }
    }

    #[test]
    fn small_alpha_is_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        // With alpha = 0.2 the max entry should usually dominate.
        let mut dominant = 0usize;
        for _ in 0..200 {
            let row = dirichlet(&mut rng, 0.2, 4);
            if row.iter().cloned().fold(f64::MIN, f64::max) > 0.7 {
                dominant += 1;
            }
        }
        assert!(dominant > 100, "dominant={dominant}");
    }
}
