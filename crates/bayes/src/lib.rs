//! # problp-bayes — discrete Bayesian networks for ProbLP
//!
//! This crate provides the probabilistic-model substrate of the ProbLP
//! framework (Shah et al., DAC 2019): discrete [`BayesNet`]s with validated
//! [`Cpt`]s, exact enumeration queries (the test oracle for the
//! arithmetic-circuit compiler in `problp-ac`), forward sampling,
//! [`NaiveBayes`] learning for the embedded-sensing classifier benchmarks,
//! and the benchmark networks of the paper's evaluation — most importantly
//! the 37-node ALARM network ([`networks::alarm`]).
//!
//! # Examples
//!
//! ```
//! use problp_bayes::{networks, Evidence};
//!
//! let net = networks::sprinkler();
//! let mut e = Evidence::empty(net.var_count());
//! e.observe(net.find("WetGrass").unwrap(), 1);
//! let pr_rain_given_wet = net.conditional(net.find("Rain").unwrap(), 1, &e);
//! assert!(pr_rain_given_wet > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cpt;
mod dataset;
mod error;
mod evidence;
pub mod io;
mod naive_bayes;
mod network;
pub mod networks;
pub mod rngutil;
mod variable;

pub use batch::{single_variable_evidences, BatchQuery, EvidenceBatch, UNOBSERVED};
pub use cpt::Cpt;
pub use dataset::LabeledDataset;
pub use error::BayesError;
pub use evidence::Evidence;
pub use naive_bayes::NaiveBayes;
pub use network::{BayesNet, BayesNetBuilder};
pub use variable::{VarId, Variable};
