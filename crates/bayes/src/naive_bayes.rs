//! Naive-Bayes classifier learning.
//!
//! The paper's HAR / UniMiB / UIWADS benchmarks are naive-Bayes classifiers
//! trained on 60 % of each dataset (paper §4). A naive-Bayes classifier is
//! a Bayesian network with the class as the single root and one edge to
//! every feature; compiling it yields the classic AC
//! `Σ_c λ_c θ_c Π_i (Σ_v λ_{iv} θ_{iv|c})`.

use crate::dataset::LabeledDataset;
use crate::error::BayesError;
use crate::network::{BayesNet, BayesNetBuilder};
use crate::variable::VarId;

/// Naive-Bayes learning: estimates CPTs from counts with Laplace
/// smoothing and produces the corresponding [`BayesNet`].
///
/// # Examples
///
/// ```
/// use problp_bayes::{LabeledDataset, NaiveBayes};
///
/// let ds = LabeledDataset::new(
///     vec![vec![0], vec![0], vec![1], vec![1]],
///     vec![0, 0, 1, 1],
///     vec![2],
///     2,
/// )?;
/// let nb = NaiveBayes::fit(&ds, 1.0)?;
/// // The feature is perfectly informative; prediction recovers the label.
/// assert_eq!(nb.predict(&[0]), 0);
/// assert_eq!(nb.predict(&[1]), 1);
/// # Ok::<(), problp_bayes::BayesError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NaiveBayes {
    net: BayesNet,
    class_var: VarId,
    feature_vars: Vec<VarId>,
}

impl NaiveBayes {
    /// Fits a naive-Bayes classifier with Laplace smoothing `alpha`
    /// (pseudo-count added to every cell; `alpha > 0` guarantees strictly
    /// positive CPTs, which keeps AC min-value analysis meaningful).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::InvalidDataset`] if `alpha` is not positive
    /// or propagates CPT construction errors.
    pub fn fit(dataset: &LabeledDataset, alpha: f64) -> Result<Self, BayesError> {
        if alpha <= 0.0 || !alpha.is_finite() {
            return Err(BayesError::InvalidDataset {
                reason: format!("smoothing alpha must be positive and finite, got {alpha}"),
            });
        }
        let c = dataset.class_arity();
        let n = dataset.len() as f64;

        let mut builder = BayesNetBuilder::new();
        let class_var = builder.variable("Class", c);
        let feature_vars: Vec<VarId> = (0..dataset.feature_count())
            .map(|j| builder.variable(format!("F{j}"), dataset.feature_arities()[j]))
            .collect();

        // Class prior.
        let mut class_counts = vec![0usize; c];
        for &l in dataset.labels() {
            class_counts[l] += 1;
        }
        let prior: Vec<f64> = class_counts
            .iter()
            .map(|&k| (k as f64 + alpha) / (n + alpha * c as f64))
            .collect();
        builder.cpt(class_var, [], prior)?;

        // Per-feature conditionals Pr(F_j | Class).
        for (j, &fv) in feature_vars.iter().enumerate() {
            let a = dataset.feature_arities()[j];
            let mut counts = vec![0usize; c * a];
            for i in 0..dataset.len() {
                let (row, label) = dataset.instance(i);
                counts[label * a + row[j]] += 1;
            }
            let mut table = Vec::with_capacity(c * a);
            for cls in 0..c {
                let row_total: usize = counts[cls * a..(cls + 1) * a].iter().sum();
                for s in 0..a {
                    table.push(
                        (counts[cls * a + s] as f64 + alpha)
                            / (row_total as f64 + alpha * a as f64),
                    );
                }
            }
            builder.cpt(fv, [class_var], table)?;
        }

        Ok(NaiveBayes {
            net: builder.build()?,
            class_var,
            feature_vars,
        })
    }

    /// The underlying Bayesian network (class variable first, features in
    /// dataset order).
    pub fn network(&self) -> &BayesNet {
        &self.net
    }

    /// Consumes the classifier, returning the network.
    pub fn into_network(self) -> BayesNet {
        self.net
    }

    /// The class variable.
    pub fn class_var(&self) -> VarId {
        self.class_var
    }

    /// The feature variables, in dataset order.
    pub fn feature_vars(&self) -> &[VarId] {
        &self.feature_vars
    }

    /// The posterior `Pr(Class = cls | features)` for a full feature
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong length or out-of-range states.
    pub fn posterior(&self, features: &[usize], cls: usize) -> f64 {
        assert_eq!(
            features.len(),
            self.feature_vars.len(),
            "wrong feature count"
        );
        let c = self.net.variable(self.class_var).arity();
        let mut joint = vec![0.0f64; c];
        for (k, j_entry) in joint.iter_mut().enumerate() {
            let mut p = self.net.cpt(self.class_var).probability(&[], k);
            for (j, &fv) in self.feature_vars.iter().enumerate() {
                p *= self.net.cpt(fv).probability(&[k], features[j]);
            }
            *j_entry = p;
        }
        let total: f64 = joint.iter().sum();
        joint[cls] / total
    }

    /// The most probable class for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong length or out-of-range states.
    pub fn predict(&self, features: &[usize]) -> usize {
        let c = self.net.variable(self.class_var).arity();
        (0..c)
            .max_by(|&x, &y| {
                self.posterior(features, x)
                    .partial_cmp(&self.posterior(features, y))
                    .expect("posteriors are finite")
            })
            .expect("at least two classes")
    }

    /// Classification accuracy on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's shape disagrees with the classifier.
    pub fn accuracy(&self, dataset: &LabeledDataset) -> f64 {
        let correct = (0..dataset.len())
            .filter(|&i| {
                let (row, label) = dataset.instance(i);
                self.predict(row) == label
            })
            .count();
        correct as f64 / dataset.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish_dataset() -> LabeledDataset {
        // Class correlates with feature 0 strongly, feature 1 weakly.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..30 {
            features.push(vec![0, 0]);
            labels.push(0);
            features.push(vec![1, 1]);
            labels.push(1);
        }
        for _ in 0..3 {
            features.push(vec![0, 1]);
            labels.push(1);
            features.push(vec![1, 0]);
            labels.push(0);
        }
        LabeledDataset::new(features, labels, vec![2, 2], 2).unwrap()
    }

    #[test]
    fn fit_produces_a_star_network() {
        let nb = NaiveBayes::fit(&xor_ish_dataset(), 1.0).unwrap();
        let net = nb.network();
        assert_eq!(net.var_count(), 3);
        assert_eq!(net.roots(), vec![nb.class_var()]);
        assert_eq!(net.edge_count(), 2);
        for &fv in nb.feature_vars() {
            assert_eq!(net.cpt(fv).parents(), &[nb.class_var()]);
        }
    }

    #[test]
    fn posteriors_sum_to_one() {
        let nb = NaiveBayes::fit(&xor_ish_dataset(), 1.0).unwrap();
        for f0 in 0..2 {
            for f1 in 0..2 {
                let total: f64 = (0..2).map(|c| nb.posterior(&[f0, f1], c)).sum();
                assert!((total - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn predictions_track_the_majority() {
        let nb = NaiveBayes::fit(&xor_ish_dataset(), 1.0).unwrap();
        assert_eq!(nb.predict(&[0, 0]), 0);
        assert_eq!(nb.predict(&[1, 1]), 1);
        let acc = nb.accuracy(&xor_ish_dataset());
        assert!(acc > 0.85, "accuracy={acc}");
    }

    #[test]
    fn smoothing_keeps_probabilities_positive() {
        // A dataset where class 1 never shows feature state 0.
        let ds = LabeledDataset::new(
            vec![vec![0], vec![1], vec![1], vec![1]],
            vec![0, 0, 1, 1],
            vec![2],
            2,
        )
        .unwrap();
        let nb = NaiveBayes::fit(&ds, 1.0).unwrap();
        let p = nb.network().cpt(nb.feature_vars()[0]).probability(&[1], 0);
        assert!(p > 0.0);
    }

    #[test]
    fn zero_alpha_is_rejected() {
        let ds = xor_ish_dataset();
        assert!(NaiveBayes::fit(&ds, 0.0).is_err());
        assert!(NaiveBayes::fit(&ds, f64::NAN).is_err());
    }

    #[test]
    fn posterior_matches_enumeration_oracle() {
        use crate::evidence::Evidence;
        let nb = NaiveBayes::fit(&xor_ish_dataset(), 1.0).unwrap();
        let net = nb.network();
        let mut e = Evidence::empty(net.var_count());
        e.observe(nb.feature_vars()[0], 1);
        e.observe(nb.feature_vars()[1], 0);
        let oracle = net.conditional(nb.class_var(), 1, &e);
        let direct = nb.posterior(&[1, 0], 1);
        assert!((oracle - direct).abs() < 1e-12);
    }
}
