//! Random variables and their identifiers.

/// Identifier of a random variable within a [`BayesNet`].
///
/// `VarId`s are dense indices assigned in declaration order by the
/// [`BayesNetBuilder`]; they index every per-variable table in the crate.
///
/// [`BayesNet`]: crate::BayesNet
/// [`BayesNetBuilder`]: crate::BayesNetBuilder
///
/// # Examples
///
/// ```
/// use problp_bayes::VarId;
///
/// let v = VarId::from_index(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "X3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(usize);

impl VarId {
    /// Creates a variable id from its dense index.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        VarId(index)
    }

    /// The dense index of this variable.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A named discrete random variable with a fixed number of states.
///
/// # Examples
///
/// ```
/// use problp_bayes::Variable;
///
/// let v = Variable::new("Rain", 2);
/// assert_eq!(v.name(), "Rain");
/// assert_eq!(v.arity(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Variable {
    name: String,
    arity: usize,
}

impl Variable {
    /// Creates a variable with the given name and number of states.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2` (a random variable needs at least two states).
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        assert!(arity >= 2, "a discrete variable needs at least two states");
        Variable {
            name: name.into(),
            arity,
        }
    }

    /// The variable's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of states.
    #[inline]
    pub const fn arity(&self) -> usize {
        self.arity
    }
}

impl std::fmt::Display for Variable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name, self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_roundtrip() {
        for i in [0usize, 1, 100] {
            assert_eq!(VarId::from_index(i).index(), i);
        }
    }

    #[test]
    fn var_ids_order_by_index() {
        assert!(VarId::from_index(1) < VarId::from_index(2));
    }

    #[test]
    #[should_panic(expected = "at least two states")]
    fn unary_variables_are_rejected() {
        let _ = Variable::new("bad", 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Variable::new("Rain", 2).to_string(), "Rain(2)");
        assert_eq!(VarId::from_index(7).to_string(), "X7");
    }
}
