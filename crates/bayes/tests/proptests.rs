//! Property tests for the Bayesian-network crate: probability axioms,
//! serialization roundtrips, sampling consistency and learning sanity on
//! random networks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use problp_bayes::{io, networks, Evidence, LabeledDataset, NaiveBayes, VarId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn joint_probabilities_form_a_distribution(seed in 0u64..500) {
        let net = networks::random_network(seed, 6, 2, 3);
        // Sum over all complete assignments equals one.
        let e = Evidence::empty(net.var_count());
        let total = net.marginal(&e);
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn marginals_are_monotone_in_evidence(
        seed in 0u64..500,
        var in 0usize..6,
        state in 0usize..2,
    ) {
        // Observing one more variable can only shrink the probability.
        let net = networks::random_network(seed, 6, 2, 3);
        let v = VarId::from_index(var % net.var_count());
        let s = state % net.variable(v).arity();
        let empty = Evidence::empty(net.var_count());
        let mut observed = empty.clone();
        observed.observe(v, s);
        prop_assert!(net.marginal(&observed) <= net.marginal(&empty) + 1e-12);
    }

    #[test]
    fn conditionals_normalize(seed in 0u64..500, var in 0usize..6) {
        let net = networks::random_network(seed, 5, 2, 3);
        let v = VarId::from_index(var % net.var_count());
        let mut e = Evidence::empty(net.var_count());
        // Observe some other variable.
        let other = VarId::from_index((var + 1) % net.var_count());
        if other != v {
            e.observe(other, 0);
        }
        prop_assume!(net.marginal(&e) > 1e-12);
        let total: f64 = (0..net.variable(v).arity())
            .map(|s| net.conditional(v, s, &e))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn text_format_roundtrips_random_networks(seed in 0u64..500) {
        let net = networks::random_network(seed, 8, 3, 4);
        let text = io::to_text(&net, "random");
        let back = io::from_text(&text).unwrap();
        prop_assert_eq!(back, net);
    }

    #[test]
    fn mpe_value_is_attained_by_its_assignment(seed in 0u64..500) {
        let net = networks::random_network(seed, 5, 2, 3);
        let e = Evidence::empty(net.var_count());
        let (assignment, p) = net.mpe(&e);
        prop_assert!((net.joint_probability(&assignment) - p).abs() < 1e-12);
        // No sampled assignment beats it.
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let sample = net.sample(&mut rng);
            prop_assert!(net.joint_probability(&sample) <= p + 1e-12);
        }
    }

    #[test]
    fn samples_respect_arities(seed in 0u64..500) {
        let net = networks::random_network(seed, 7, 3, 4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for sample in net.sample_n(&mut rng, 20) {
            for (v, &s) in sample.iter().enumerate() {
                prop_assert!(s < net.variable(VarId::from_index(v)).arity());
            }
        }
    }

    #[test]
    fn naive_bayes_posteriors_normalize(
        rows in proptest::collection::vec((0usize..3, 0usize..3, 0usize..2), 12..40),
    ) {
        let features: Vec<Vec<usize>> = rows.iter().map(|&(a, b, _)| vec![a, b]).collect();
        let labels: Vec<usize> = rows.iter().map(|&(_, _, l)| l).collect();
        prop_assume!(labels.contains(&0) && labels.contains(&1));
        let ds = LabeledDataset::new(features, labels, vec![3, 3], 2).unwrap();
        let nb = NaiveBayes::fit(&ds, 1.0).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                let total: f64 = (0..2).map(|c| nb.posterior(&[a, b], c)).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }
}
