//! Most-probable-explanation decoding.
//!
//! The max-product evaluation ([`crate::Semiring::MaxProduct`]) yields the
//! MPE *value* with a single upward pass (paper §3.2.1). Recovering the
//! maximizing *assignment* is done here by sequential conditioning: clamp
//! each unobserved variable to the state that keeps the max-product value
//! maximal, then move on. This is exact (each step preserves the set of
//! maximizers) at the cost of `Σ arity` extra evaluations.

use problp_bayes::{Evidence, VarId};

use crate::error::AcError;
use crate::graph::AcGraph;

impl AcGraph {
    /// Decodes the most probable explanation under `evidence`: the
    /// completion with the highest joint probability, and that
    /// probability.
    ///
    /// Observed variables keep their observed states.
    ///
    /// # Errors
    ///
    /// Returns [`AcError::MissingRoot`] or
    /// [`AcError::EvidenceLengthMismatch`].
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_ac::compile;
    /// use problp_bayes::{networks, Evidence};
    ///
    /// let net = networks::sprinkler();
    /// let ac = compile(&net)?;
    /// let e = Evidence::empty(net.var_count());
    /// let (assignment, p) = ac.mpe_assignment(&e)?;
    /// assert_eq!(p, net.joint_probability(&assignment));
    /// assert_eq!(p, net.mpe(&e).1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn mpe_assignment(&self, evidence: &Evidence) -> Result<(Vec<usize>, f64), AcError> {
        if evidence.len() != self.var_count() {
            return Err(AcError::EvidenceLengthMismatch {
                evidence: evidence.len(),
                circuit: self.var_count(),
            });
        }
        let mut fixed = evidence.clone();
        for v in 0..self.var_count() {
            let var = VarId::from_index(v);
            if fixed.state(var).is_some() {
                continue;
            }
            let mut best_state = 0usize;
            let mut best_value = f64::NEG_INFINITY;
            for s in 0..self.var_arities()[v] {
                fixed.observe(var, s);
                let value = self.evaluate_mpe(&fixed)?;
                if value > best_value {
                    best_value = value;
                    best_state = s;
                }
            }
            fixed.observe(var, best_state);
        }
        let assignment: Vec<usize> = (0..self.var_count())
            .map(|v| fixed.state(VarId::from_index(v)).expect("all fixed"))
            .collect();
        let value = self.evaluate_mpe(&fixed)?;
        Ok((assignment, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use problp_bayes::networks;

    #[test]
    fn decoded_assignment_matches_the_oracle_value() {
        for net in [
            networks::figure1(),
            networks::sprinkler(),
            networks::student(),
            networks::asia(),
        ] {
            let ac = compile(&net).unwrap();
            let e = Evidence::empty(net.var_count());
            let (assignment, value) = ac.mpe_assignment(&e).unwrap();
            let (_, oracle_value) = net.mpe(&e);
            assert!(
                (value - oracle_value).abs() < 1e-12,
                "{value} vs oracle {oracle_value}"
            );
            // The decoded assignment really achieves the value.
            assert!((net.joint_probability(&assignment) - value).abs() < 1e-12);
        }
    }

    #[test]
    fn observed_states_are_respected() {
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let rain = net.find("Rain").unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(rain, 1);
        let (assignment, value) = ac.mpe_assignment(&e).unwrap();
        assert_eq!(assignment[rain.index()], 1);
        let (_, oracle_value) = net.mpe(&e);
        assert!((value - oracle_value).abs() < 1e-12);
    }

    #[test]
    fn random_networks_decode_exactly() {
        for seed in 0..6 {
            let net = networks::random_network(seed, 6, 2, 3);
            let ac = compile(&net).unwrap();
            let mut e = Evidence::empty(net.var_count());
            e.observe(VarId::from_index(0), 0);
            let (assignment, value) = ac.mpe_assignment(&e).unwrap();
            let (_, oracle_value) = net.mpe(&e);
            assert!(
                (value - oracle_value).abs() < 1e-12,
                "seed {seed}: {value} vs {oracle_value}"
            );
            assert!((net.joint_probability(&assignment) - value).abs() < 1e-12);
        }
    }

    #[test]
    fn evidence_shape_is_checked() {
        let ac = compile(&networks::figure1()).unwrap();
        let bad = Evidence::empty(10);
        assert!(matches!(
            ac.mpe_assignment(&bad).unwrap_err(),
            AcError::EvidenceLengthMismatch { .. }
        ));
    }
}
