//! Compiling Bayesian networks into arithmetic circuits.
//!
//! The paper compiles its networks with the ACE tool; here compilation is
//! done by *symbolic variable elimination*: factors hold AC node ids
//! instead of numbers, so every multiplication/addition performed by
//! variable elimination materializes as a product/sum node. The resulting
//! circuit computes exactly the network polynomial
//! `f(λ) = Σ_x Π θ_{x|u} λ_x` (paper §2): evaluating it with indicators
//! set from evidence `e` yields `Pr(e)`.
//!
//! Elimination order is chosen with the min-degree heuristic on the
//! interaction graph, which keeps intermediate factors (and therefore the
//! circuit) small for the benchmark networks.

use std::collections::BTreeSet;

use problp_bayes::{BayesNet, NaiveBayes, VarId};

use crate::error::AcError;
use crate::graph::{AcGraph, NodeId};

/// A symbolic factor: a table of AC node ids over a sorted set of
/// variables.
#[derive(Clone, Debug)]
struct Factor {
    /// Variable indices in strictly increasing order.
    vars: Vec<usize>,
    /// Row-major entries; the *last* variable in `vars` varies fastest.
    entries: Vec<NodeId>,
}

impl Factor {
    fn table_size(vars: &[usize], arities: &[usize]) -> usize {
        vars.iter().map(|&v| arities[v]).product()
    }

    /// Flat index of `assignment` (parallel to `self.vars`).
    fn index_of(&self, assignment: &[usize], arities: &[usize]) -> usize {
        debug_assert_eq!(assignment.len(), self.vars.len());
        let mut idx = 0usize;
        for (i, &v) in self.vars.iter().enumerate() {
            idx = idx * arities[v] + assignment[i];
        }
        idx
    }
}

/// Iterates over all assignments of `vars` (mixed-radix counter), calling
/// `visit` with each assignment.
fn for_each_assignment(vars: &[usize], arities: &[usize], mut visit: impl FnMut(&[usize])) {
    let mut assignment = vec![0usize; vars.len()];
    loop {
        visit(&assignment);
        let mut i = vars.len();
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            assignment[i] += 1;
            if assignment[i] < arities[vars[i]] {
                break;
            }
            assignment[i] = 0;
        }
        if assignment.iter().all(|&a| a == 0) {
            return;
        }
    }
}

/// Multiplies a set of factors symbolically: one n-ary product node per
/// entry of the union table.
fn multiply_all(g: &mut AcGraph, factors: &[Factor], arities: &[usize]) -> Result<Factor, AcError> {
    debug_assert!(!factors.is_empty());
    if factors.len() == 1 {
        return Ok(factors[0].clone());
    }
    let union: Vec<usize> = factors
        .iter()
        .flat_map(|f| f.vars.iter().copied())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut entries = Vec::with_capacity(Factor::table_size(&union, arities));
    // Precompute, per factor, the positions of its vars within the union.
    let positions: Vec<Vec<usize>> = factors
        .iter()
        .map(|f| {
            f.vars
                .iter()
                .map(|v| union.binary_search(v).expect("var in union"))
                .collect()
        })
        .collect();
    let mut result: Result<(), AcError> = Ok(());
    for_each_assignment(&union, arities, |assignment| {
        if result.is_err() {
            return;
        }
        let mut children = Vec::with_capacity(factors.len());
        for (f, pos) in factors.iter().zip(&positions) {
            let sub: Vec<usize> = pos.iter().map(|&p| assignment[p]).collect();
            children.push(f.entries[f.index_of(&sub, arities)]);
        }
        match g.product(children) {
            Ok(id) => entries.push(id),
            Err(e) => result = Err(e),
        }
    });
    result?;
    Ok(Factor {
        vars: union,
        entries,
    })
}

/// Sums variable `var` out of `factor`: one n-ary sum node per entry of the
/// reduced table.
fn sum_out(
    g: &mut AcGraph,
    factor: &Factor,
    var: usize,
    arities: &[usize],
) -> Result<Factor, AcError> {
    let pos = factor
        .vars
        .iter()
        .position(|&v| v == var)
        .expect("var present in factor");
    let rest: Vec<usize> = factor.vars.iter().copied().filter(|&v| v != var).collect();
    let mut entries = Vec::with_capacity(Factor::table_size(&rest, arities));
    let mut result: Result<(), AcError> = Ok(());
    for_each_assignment(&rest, arities, |assignment| {
        if result.is_err() {
            return;
        }
        let mut children = Vec::with_capacity(arities[var]);
        for state in 0..arities[var] {
            // Rebuild the full assignment with `var = state` spliced in.
            let mut full = Vec::with_capacity(factor.vars.len());
            full.extend_from_slice(&assignment[..pos]);
            full.push(state);
            full.extend_from_slice(&assignment[pos..]);
            children.push(factor.entries[factor.index_of(&full, arities)]);
        }
        match g.sum(children) {
            Ok(id) => entries.push(id),
            Err(e) => result = Err(e),
        }
    });
    result?;
    Ok(Factor {
        vars: rest,
        entries,
    })
}

/// Chooses a variable elimination order with the min-degree heuristic.
fn min_degree_order(net: &BayesNet) -> Vec<usize> {
    let n = net.var_count();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    // Moralize: every CPT's family forms a clique.
    for cpt in net.cpts() {
        let mut family: Vec<usize> = cpt.parents().iter().map(|p| p.index()).collect();
        family.push(cpt.var().index());
        for i in 0..family.len() {
            for j in (i + 1)..family.len() {
                adj[family[i]].insert(family[j]);
                adj[family[j]].insert(family[i]);
            }
        }
    }
    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let &best = remaining
            .iter()
            .min_by_key(|&&v| adj[v].len())
            .expect("remaining non-empty");
        // Connect the eliminated variable's neighbours.
        let neighbours: Vec<usize> = adj[best].iter().copied().collect();
        for i in 0..neighbours.len() {
            for j in (i + 1)..neighbours.len() {
                adj[neighbours[i]].insert(neighbours[j]);
                adj[neighbours[j]].insert(neighbours[i]);
            }
        }
        for &nb in &neighbours {
            adj[nb].remove(&best);
        }
        adj[best].clear();
        remaining.remove(&best);
        order.push(best);
    }
    order
}

/// Compiles a Bayesian network into an arithmetic circuit computing its
/// network polynomial.
///
/// The circuit has one indicator leaf per `(variable, state)` pair and one
/// parameter leaf per distinct CPT value; evaluating it under evidence `e`
/// yields `Pr(e)` (see [`AcGraph::evaluate`]).
///
/// # Errors
///
/// Propagates construction errors from the circuit builder (none occur for
/// a validated [`BayesNet`]).
///
/// # Examples
///
/// ```
/// use problp_ac::compile;
/// use problp_bayes::{networks, Evidence};
///
/// let net = networks::sprinkler();
/// let ac = compile(&net)?;
/// let mut e = Evidence::empty(net.var_count());
/// e.observe(net.find("WetGrass").unwrap(), 1);
/// let pr = ac.evaluate(&e)?;
/// assert!((pr - net.marginal(&e)).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(net: &BayesNet) -> Result<AcGraph, AcError> {
    let arities: Vec<usize> = net.variables().iter().map(|v| v.arity()).collect();
    let mut g = AcGraph::new(arities.clone());

    let mut factors: Vec<Factor> = Vec::with_capacity(2 * net.var_count());
    // Indicator factors λ_x.
    for (v, &arity) in arities.iter().enumerate() {
        let entries = (0..arity)
            .map(|s| g.indicator(VarId::from_index(v), s))
            .collect::<Result<Vec<_>, _>>()?;
        factors.push(Factor {
            vars: vec![v],
            entries,
        });
    }
    // CPT factors θ_{x|u}.
    for cpt in net.cpts() {
        let mut vars: Vec<usize> = cpt.parents().iter().map(|p| p.index()).collect();
        vars.push(cpt.var().index());
        vars.sort_unstable();
        // Build entries in the sorted-vars order by translating each sorted
        // assignment into the CPT's (parents..., child) coordinates.
        let child = cpt.var().index();
        let parent_order: Vec<usize> = cpt.parents().iter().map(|p| p.index()).collect();
        let mut entries = Vec::with_capacity(Factor::table_size(&vars, &arities));
        let mut err: Result<(), AcError> = Ok(());
        for_each_assignment(&vars, &arities, |assignment| {
            if err.is_err() {
                return;
            }
            let state_of = |v: usize| {
                let pos = vars.binary_search(&v).expect("var in factor");
                assignment[pos]
            };
            let parent_states: Vec<usize> = parent_order.iter().map(|&p| state_of(p)).collect();
            let p = cpt.probability(&parent_states, state_of(child));
            match g.param(p) {
                Ok(id) => entries.push(id),
                Err(e) => err = Err(e),
            }
        });
        err?;
        factors.push(Factor { vars, entries });
    }

    // Eliminate every variable in min-degree order.
    for var in min_degree_order(net) {
        let (mentioning, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.vars.contains(&var));
        factors = rest;
        debug_assert!(!mentioning.is_empty(), "every variable appears somewhere");
        let product = multiply_all(&mut g, &mentioning, &arities)?;
        let summed = sum_out(&mut g, &product, var, &arities)?;
        factors.push(summed);
    }

    // All remaining factors are scalars; their product is the root.
    let scalars: Vec<NodeId> = factors
        .iter()
        .map(|f| {
            debug_assert!(f.vars.is_empty());
            f.entries[0]
        })
        .collect();
    let root = g.product(scalars)?;
    g.set_root(root);
    debug_assert!(g.validate().is_ok());
    Ok(g)
}

/// Compiles a naive-Bayes classifier into the classic two-level AC
/// `Σ_c λ_c θ_c Π_j (Σ_s λ_{js} θ_{js|c})` (paper §4's classifier
/// benchmarks).
///
/// Produces the same polynomial as [`compile`] on the underlying network
/// but with a guaranteed shallow, regular shape.
///
/// # Errors
///
/// Propagates construction errors from the circuit builder.
pub fn compile_naive_bayes(nb: &NaiveBayes) -> Result<AcGraph, AcError> {
    let net = nb.network();
    let arities: Vec<usize> = net.variables().iter().map(|v| v.arity()).collect();
    let mut g = AcGraph::new(arities.clone());
    let class = nb.class_var();
    let class_arity = net.variable(class).arity();

    let mut class_terms = Vec::with_capacity(class_arity);
    for c in 0..class_arity {
        let mut children = Vec::with_capacity(2 + nb.feature_vars().len());
        children.push(g.indicator(class, c)?);
        children.push(g.param(net.cpt(class).probability(&[], c))?);
        for &fv in nb.feature_vars() {
            let fa = net.variable(fv).arity();
            let mut terms = Vec::with_capacity(fa);
            for s in 0..fa {
                let lam = g.indicator(fv, s)?;
                let theta = g.param(net.cpt(fv).probability(&[c], s))?;
                terms.push(g.product(vec![lam, theta])?);
            }
            children.push(g.sum(terms)?);
        }
        class_terms.push(g.product(children)?);
    }
    let root = g.sum(class_terms)?;
    g.set_root(root);
    debug_assert!(g.validate().is_ok());
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_bayes::{networks, Evidence, LabeledDataset};

    /// Exhaustively compares the compiled circuit against the enumeration
    /// oracle on every complete and single-variable evidence.
    fn check_against_oracle(net: &BayesNet) {
        let ac = compile(net).unwrap();
        assert!(ac.validate().is_ok());
        // No evidence: the polynomial sums to 1.
        let empty = Evidence::empty(net.var_count());
        assert!(
            (ac.evaluate(&empty).unwrap() - 1.0).abs() < 1e-9,
            "polynomial at all-ones should be 1"
        );
        // Single-variable marginals.
        for v in 0..net.var_count() {
            let var = VarId::from_index(v);
            for s in 0..net.variable(var).arity() {
                let mut e = Evidence::empty(net.var_count());
                e.observe(var, s);
                let oracle = net.marginal(&e);
                let got = ac.evaluate(&e).unwrap();
                assert!(
                    (oracle - got).abs() < 1e-9,
                    "marginal of {var}={s}: oracle {oracle} vs ac {got}"
                );
            }
        }
        // A handful of complete assignments.
        let mut assignment = vec![0usize; net.var_count()];
        for trial in 0..8 {
            for (i, a) in assignment.iter_mut().enumerate() {
                *a = (trial + i) % net.variable(VarId::from_index(i)).arity();
            }
            let e = Evidence::from_assignment(&assignment);
            let oracle = net.joint_probability(&assignment);
            let got = ac.evaluate(&e).unwrap();
            assert!(
                (oracle - got).abs() < 1e-9,
                "joint of {assignment:?}: oracle {oracle} vs ac {got}"
            );
        }
    }

    #[test]
    fn figure1_compiles_correctly() {
        check_against_oracle(&networks::figure1());
    }

    #[test]
    fn sprinkler_compiles_correctly() {
        check_against_oracle(&networks::sprinkler());
    }

    #[test]
    fn asia_compiles_correctly() {
        check_against_oracle(&networks::asia());
    }

    #[test]
    fn student_compiles_correctly() {
        check_against_oracle(&networks::student());
    }

    #[test]
    fn random_networks_compile_correctly() {
        for seed in 0..10 {
            check_against_oracle(&networks::random_network(seed, 7, 3, 3));
        }
    }

    #[test]
    fn alarm_compiles_and_normalizes() {
        let net = networks::alarm(7);
        let ac = compile(&net).unwrap();
        assert!(ac.validate().is_ok());
        let empty = Evidence::empty(net.var_count());
        let total = ac.evaluate(&empty).unwrap();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn mpe_matches_enumeration() {
        for net in [
            networks::figure1(),
            networks::sprinkler(),
            networks::student(),
        ] {
            let ac = compile(&net).unwrap();
            let e = Evidence::empty(net.var_count());
            let (_, oracle) = net.mpe(&e);
            let got = ac.evaluate_mpe(&e).unwrap();
            assert!((oracle - got).abs() < 1e-12, "oracle {oracle} vs {got}");
        }
    }

    #[test]
    fn naive_bayes_circuit_matches_generic_compiler() {
        let ds = LabeledDataset::new(
            vec![
                vec![0, 1, 2],
                vec![1, 0, 0],
                vec![2, 1, 1],
                vec![0, 0, 2],
                vec![1, 1, 0],
                vec![2, 0, 1],
            ],
            vec![0, 1, 0, 1, 0, 1],
            vec![3, 2, 3],
            2,
        )
        .unwrap();
        let nb = NaiveBayes::fit(&ds, 1.0).unwrap();
        let special = compile_naive_bayes(&nb).unwrap();
        let generic = compile(nb.network()).unwrap();
        let n = nb.network().var_count();
        for v in 0..n {
            let var = VarId::from_index(v);
            for s in 0..nb.network().variable(var).arity() {
                let mut e = Evidence::empty(n);
                e.observe(var, s);
                let a = special.evaluate(&e).unwrap();
                let b = generic.evaluate(&e).unwrap();
                assert!((a - b).abs() < 1e-12, "{var}={s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn compiled_leaves_are_shared() {
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let stats = ac.stats();
        // 4 binary variables -> exactly 8 indicators, each created once.
        assert_eq!(stats.indicators, 8);
    }

    #[test]
    fn min_degree_order_is_a_permutation() {
        let net = networks::alarm(3);
        let order = min_degree_order(&net);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..net.var_count()).collect::<Vec<_>>());
    }
}
