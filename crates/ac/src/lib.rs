//! # problp-ac — arithmetic circuits for ProbLP
//!
//! Arithmetic circuits (ACs, also known as sum-product networks) are the
//! computational representation ProbLP designs hardware for (paper §2).
//! This crate provides:
//!
//! * the circuit IR ([`AcGraph`], [`AcNode`], [`NodeId`]) with validation
//!   and statistics,
//! * evaluation under any [`problp_num::Arith`] number system and any
//!   [`Semiring`] (sum-product, max-product for MPE, min-product for the
//!   min-value analysis),
//! * a Bayesian-network-to-AC compiler based on symbolic variable
//!   elimination ([`compile`]) plus the specialised naive-Bayes form
//!   ([`compile_naive_bayes`]) — the stand-in for the ACE tool used by the
//!   paper (see `DESIGN.md`),
//! * hardware-oriented transformations ([`transform::binarize`],
//!   [`transform::prune`]).
//!
//! # Examples
//!
//! Compile a network and evaluate a marginal in 10-bit fixed point:
//!
//! ```
//! use problp_ac::{compile, transform::binarize, Semiring};
//! use problp_bayes::{networks, Evidence};
//! use problp_num::{Arith, FixedArith, FixedFormat};
//!
//! let net = networks::sprinkler();
//! let ac = binarize(&compile(&net)?)?;
//!
//! let mut e = Evidence::empty(net.var_count());
//! e.observe(net.find("Rain").unwrap(), 1);
//!
//! let exact = ac.evaluate(&e)?;
//! let mut lp = FixedArith::new(FixedFormat::new(1, 10)?);
//! let approx = ac.evaluate_with(&mut lp, &e, Semiring::SumProduct)?;
//! assert!((exact - lp.to_f64(&approx)).abs() < 1e-2);
//! assert!(!lp.flags().range_violation());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod diff;
mod error;
mod eval;
mod graph;
mod mpe;
mod optimize;
pub mod transform;

pub use compile::{compile, compile_naive_bayes};
pub use diff::{AcDerivatives, ParameterSensitivity};
pub use error::AcError;
pub use eval::Semiring;
pub use graph::{AcGraph, AcNode, AcStats, NodeId};
pub use optimize::{optimize, OptimizeStats};
