//! Circuit optimisation: constant folding and common-subexpression
//! elimination.
//!
//! The ACE compiler used by the paper produces heavily shared d-DNNF
//! circuits; the plain variable-elimination compiler in this crate leaves
//! some redundancy behind. This pass recovers part of the gap:
//!
//! * **constant folding** — products with a zero-parameter child collapse
//!   to zero (deterministic CPT entries), multiplications by the constant
//!   one disappear, sums drop zero-valued children, and operators whose
//!   children are all constants fold into a single parameter leaf;
//! * **common-subexpression elimination** — structurally identical
//!   operators (same kind, same multiset of children) are shared.
//!
//! The optimised circuit computes the same polynomial for *every*
//! indicator input (verified by property tests), so all error-bound
//! machinery applies unchanged — with smaller constants, since fewer
//! operators mean fewer roundings.

use std::collections::HashMap;

use crate::error::AcError;
use crate::graph::{AcGraph, AcNode, NodeId};

/// What a node rewrites to during optimisation.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Rewrite {
    /// The node became this id in the output graph.
    Node(NodeId),
    /// The node is the constant zero (dropped from sums, absorbs
    /// products).
    Zero,
}

/// Statistics of an optimisation pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OptimizeStats {
    /// Nodes in the input circuit.
    pub nodes_before: usize,
    /// Nodes in the optimised circuit.
    pub nodes_after: usize,
    /// Operators eliminated by constant folding.
    pub folded: usize,
    /// Operators eliminated by common-subexpression elimination.
    pub shared: usize,
}

impl std::fmt::Display for OptimizeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} -> {} nodes ({} folded, {} shared)",
            self.nodes_before, self.nodes_after, self.folded, self.shared
        )
    }
}

/// Key for structural sharing of operators: kind + sorted children.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct OpKey {
    is_sum: bool,
    children: Vec<NodeId>,
}

/// Optimises a circuit by constant folding and common-subexpression
/// elimination, returning the rewritten circuit and statistics.
///
/// The output circuit computes the same value as the input for every
/// evidence. Zero-collapsing can remove indicator leaves entirely when a
/// deterministic CPT makes a branch structurally impossible; if the whole
/// circuit is the constant zero, a single zero-parameter root remains.
///
/// # Errors
///
/// Returns [`AcError::MissingRoot`] if the circuit has no root.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, optimize, transform::binarize};
/// use problp_bayes::{networks, Evidence};
///
/// // Asia has deterministic CPT rows (the OR gate): folding shrinks it.
/// let net = networks::asia();
/// let ac = compile(&net)?;
/// let (opt, stats) = optimize(&ac)?;
/// assert!(stats.nodes_after < stats.nodes_before);
/// let e = Evidence::empty(net.var_count());
/// assert!((opt.evaluate(&e)? - ac.evaluate(&e)?).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(g: &AcGraph) -> Result<(AcGraph, OptimizeStats), AcError> {
    let root = g.root().ok_or(AcError::MissingRoot)?;
    let reachable = g.reachable();
    let mut out = AcGraph::new(g.var_arities().to_vec());
    let mut rewrites: Vec<Option<Rewrite>> = vec![None; g.len()];
    let mut op_cache: HashMap<OpKey, NodeId> = HashMap::new();
    let mut stats = OptimizeStats {
        nodes_before: g.stats().nodes,
        ..OptimizeStats::default()
    };

    // The constant one: multiplications by it are identities.
    let mut one_id: Option<NodeId> = None;

    for (i, node) in g.nodes().iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let rewrite = match node {
            AcNode::Param { value } => {
                if *value == 0.0 {
                    Rewrite::Zero
                } else {
                    let id = out.param(*value)?;
                    if *value == 1.0 {
                        one_id = Some(id);
                    }
                    Rewrite::Node(id)
                }
            }
            AcNode::Indicator { var, state } => Rewrite::Node(out.indicator(*var, *state)?),
            AcNode::Product(children) => {
                let mut mapped = Vec::with_capacity(children.len());
                let mut is_zero = false;
                for c in children {
                    match rewrites[c.index()].expect("children precede parents") {
                        Rewrite::Zero => {
                            is_zero = true;
                            break;
                        }
                        Rewrite::Node(id) => {
                            // Multiplying by the constant one is an identity.
                            if Some(id) == one_id {
                                stats.folded += 1;
                                continue;
                            }
                            mapped.push(id);
                        }
                    }
                }
                if is_zero {
                    stats.folded += 1;
                    Rewrite::Zero
                } else if mapped.is_empty() {
                    // All children were ones.
                    Rewrite::Node(one_id.expect("ones were seen"))
                } else {
                    intern_op(&mut out, &mut op_cache, &mut stats, false, mapped)?
                }
            }
            AcNode::Sum(children) => {
                let mut mapped = Vec::with_capacity(children.len());
                for c in children {
                    match rewrites[c.index()].expect("children precede parents") {
                        Rewrite::Zero => {
                            // Adding zero is an identity.
                            stats.folded += 1;
                        }
                        Rewrite::Node(id) => mapped.push(id),
                    }
                }
                if mapped.is_empty() {
                    Rewrite::Zero
                } else {
                    intern_op(&mut out, &mut op_cache, &mut stats, true, mapped)?
                }
            }
        };
        rewrites[i] = Some(rewrite);
    }

    let new_root = match rewrites[root.index()].expect("root processed") {
        Rewrite::Node(id) => id,
        Rewrite::Zero => out.param(0.0)?,
    };
    out.set_root(new_root);
    stats.nodes_after = out.stats().nodes;
    Ok((out, stats))
}

/// Interns an operator node, sharing structurally identical ones.
fn intern_op(
    out: &mut AcGraph,
    cache: &mut HashMap<OpKey, NodeId>,
    stats: &mut OptimizeStats,
    is_sum: bool,
    children: Vec<NodeId>,
) -> Result<Rewrite, AcError> {
    // Sums and products are commutative: canonicalize the child order so
    // permutations share (folding duplicate children would be wrong —
    // x * x is not x).
    let mut key_children = children.clone();
    key_children.sort_unstable();
    let key = OpKey {
        is_sum,
        children: key_children,
    };
    if let Some(&id) = cache.get(&key) {
        stats.shared += 1;
        return Ok(Rewrite::Node(id));
    }
    let id = if is_sum {
        out.sum(children)?
    } else {
        out.product(children)?
    };
    cache.insert(key, id);
    Ok(Rewrite::Node(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::transform::binarize;
    use problp_bayes::{networks, Evidence, VarId};

    fn equivalent_on_all_single_evidences(a: &AcGraph, b: &AcGraph, net: &problp_bayes::BayesNet) {
        let empty = Evidence::empty(net.var_count());
        assert!((a.evaluate(&empty).unwrap() - b.evaluate(&empty).unwrap()).abs() < 1e-12);
        for v in 0..net.var_count() {
            for s in 0..net.variable(VarId::from_index(v)).arity() {
                let mut e = Evidence::empty(net.var_count());
                e.observe(VarId::from_index(v), s);
                let va = a.evaluate(&e).unwrap();
                let vb = b.evaluate(&e).unwrap();
                assert!((va - vb).abs() < 1e-12, "{v}/{s}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn asia_folds_deterministic_branches() {
        // Asia's OR gate has 0.0/1.0 entries: folding must shrink it.
        let net = networks::asia();
        let ac = compile(&net).unwrap();
        let (opt, stats) = optimize(&ac).unwrap();
        assert!(stats.nodes_after < stats.nodes_before, "{stats}");
        assert!(stats.folded > 0);
        assert!(opt.validate().is_ok());
        equivalent_on_all_single_evidences(&ac, &opt, &net);
    }

    #[test]
    fn sprinkler_keeps_its_value() {
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let (opt, _) = optimize(&ac).unwrap();
        equivalent_on_all_single_evidences(&ac, &opt, &net);
    }

    #[test]
    fn alarm_optimizes_without_changing_the_polynomial() {
        let net = networks::alarm(7);
        let ac = compile(&net).unwrap();
        let (opt, stats) = optimize(&ac).unwrap();
        // Dirichlet CPTs have no zeros and VE rarely duplicates structure,
        // so alarm mostly passes through — but never grows.
        assert!(stats.nodes_after <= stats.nodes_before, "{stats}");
        let e = Evidence::empty(net.var_count());
        assert!((opt.evaluate(&e).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimized_circuits_binarize_and_bound() {
        let net = networks::asia();
        let ac = compile(&net).unwrap();
        let (opt, _) = optimize(&ac).unwrap();
        let bin = binarize(&opt).unwrap();
        assert!(bin.is_binary());
        equivalent_on_all_single_evidences(&bin, &ac, &net);
    }

    #[test]
    fn random_networks_are_preserved() {
        for seed in 0..8 {
            let net = networks::random_network(seed, 7, 3, 3);
            let ac = compile(&net).unwrap();
            let (opt, _) = optimize(&ac).unwrap();
            equivalent_on_all_single_evidences(&ac, &opt, &net);
        }
    }

    #[test]
    fn all_zero_circuit_folds_to_zero_root() {
        let mut g = AcGraph::new(vec![2]);
        let z = g.param(0.0).unwrap();
        let l = g.indicator(VarId::from_index(0), 0).unwrap();
        let p = g.product(vec![z, l]).unwrap();
        g.set_root(p);
        let (opt, _) = optimize(&g).unwrap();
        let e = Evidence::empty(1);
        assert_eq!(opt.evaluate(&e).unwrap(), 0.0);
    }

    #[test]
    fn multiplication_by_one_is_elided() {
        let mut g = AcGraph::new(vec![2]);
        let one = g.param(1.0).unwrap();
        let l = g.indicator(VarId::from_index(0), 0).unwrap();
        let t = g.param(0.5).unwrap();
        let p1 = g.product(vec![one, l]).unwrap();
        let p2 = g.product(vec![p1, t]).unwrap();
        g.set_root(p2);
        let (opt, stats) = optimize(&g).unwrap();
        assert!(stats.folded >= 1);
        // One product suffices: λ * 0.5.
        assert_eq!(opt.stats().products, 1);
        let mut e = Evidence::empty(1);
        e.observe(VarId::from_index(0), 0);
        assert_eq!(opt.evaluate(&e).unwrap(), 0.5);
    }

    #[test]
    fn duplicate_children_are_not_merged() {
        // x * x must stay a two-child product (squaring, not identity).
        let mut g = AcGraph::new(vec![2]);
        let t = g.param(0.5).unwrap();
        let p = g.product(vec![t, t]).unwrap();
        g.set_root(p);
        let (opt, _) = optimize(&g).unwrap();
        let e = Evidence::empty(1);
        assert_eq!(opt.evaluate(&e).unwrap(), 0.25);
    }

    #[test]
    fn identical_operators_are_shared() {
        let mut g = AcGraph::new(vec![2]);
        let a = g.indicator(VarId::from_index(0), 0).unwrap();
        let b = g.indicator(VarId::from_index(0), 1).unwrap();
        // Build the same sum twice without the builder noticing.
        let s1 = g.sum(vec![a, b]).unwrap();
        let s2 = g.sum(vec![b, a]).unwrap(); // permuted: still the same sum
        let p = g.product(vec![s1, s2]).unwrap();
        g.set_root(p);
        assert_ne!(s1, s2);
        let (opt, stats) = optimize(&g).unwrap();
        assert_eq!(stats.shared, 1);
        // The product now squares one shared sum.
        assert_eq!(opt.stats().sums, 1);
        let e = Evidence::empty(1);
        assert_eq!(opt.evaluate(&e).unwrap(), 4.0);
    }

    #[test]
    fn missing_root_is_reported() {
        let g = AcGraph::new(vec![2]);
        assert!(matches!(optimize(&g).unwrap_err(), AcError::MissingRoot));
    }
}
