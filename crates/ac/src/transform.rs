//! Circuit transformations: binarization and pruning.
//!
//! ProbLP's hardware generator decomposes every operator with more than two
//! inputs into a tree of two-input operators (paper §3.4, Fig. 4); the
//! error analysis runs on the same binarized circuit because the paper's
//! error models are per-two-input-operator.

use crate::error::AcError;
use crate::graph::{AcGraph, AcNode, NodeId};

/// Reduces `children` to a single node by pairing adjacent nodes into a
/// balanced tree of 2-input operators.
fn balanced_reduce(
    g: &mut AcGraph,
    mut layer: Vec<NodeId>,
    make: impl Fn(&mut AcGraph, Vec<NodeId>) -> Result<NodeId, AcError>,
) -> Result<NodeId, AcError> {
    debug_assert!(!layer.is_empty());
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < layer.len() {
            next.push(make(g, vec![layer[i], layer[i + 1]])?);
            i += 2;
        }
        if i < layer.len() {
            next.push(layer[i]);
        }
        layer = next;
    }
    Ok(layer[0])
}

/// Rewrites the circuit so that every operator has exactly two inputs,
/// decomposing wider operators into balanced trees (paper Fig. 4).
///
/// The rewritten circuit computes the same polynomial; only reachable
/// nodes are kept.
///
/// # Errors
///
/// Returns [`AcError::MissingRoot`] if the circuit has no root.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, transform::binarize};
/// use problp_bayes::{networks, Evidence};
///
/// let net = networks::sprinkler();
/// let ac = compile(&net)?;
/// let bin = binarize(&ac)?;
/// assert!(bin.is_binary());
/// let e = Evidence::empty(net.var_count());
/// assert!((bin.evaluate(&e)? - ac.evaluate(&e)?).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn binarize(g: &AcGraph) -> Result<AcGraph, AcError> {
    let root = g.root().ok_or(AcError::MissingRoot)?;
    let reachable = g.reachable();
    let mut out = AcGraph::new(g.var_arities().to_vec());
    let mut map: Vec<Option<NodeId>> = vec![None; g.len()];
    for (i, node) in g.nodes().iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let new_id = match node {
            AcNode::Param { value } => out.param(*value)?,
            AcNode::Indicator { var, state } => out.indicator(*var, *state)?,
            AcNode::Sum(children) => {
                let mapped: Vec<NodeId> = children
                    .iter()
                    .map(|c| map[c.index()].expect("children precede parents"))
                    .collect();
                balanced_reduce(&mut out, mapped, |g, pair| g.sum(pair))?
            }
            AcNode::Product(children) => {
                let mapped: Vec<NodeId> = children
                    .iter()
                    .map(|c| map[c.index()].expect("children precede parents"))
                    .collect();
                balanced_reduce(&mut out, mapped, |g, pair| g.product(pair))?
            }
        };
        map[i] = Some(new_id);
    }
    out.set_root(map[root.index()].expect("root is reachable"));
    Ok(out)
}

/// Binarizes with *left-leaning* (sequential) trees instead of balanced
/// ones. Exposes the decomposition-shape ablation discussed in
/// `DESIGN.md`: a chain has depth `n - 1` instead of `ceil(log2 n)`,
/// which increases pipeline depth and (for products) the error bound.
///
/// # Errors
///
/// Returns [`AcError::MissingRoot`] if the circuit has no root.
pub fn binarize_chain(g: &AcGraph) -> Result<AcGraph, AcError> {
    let root = g.root().ok_or(AcError::MissingRoot)?;
    let reachable = g.reachable();
    let mut out = AcGraph::new(g.var_arities().to_vec());
    let mut map: Vec<Option<NodeId>> = vec![None; g.len()];
    for (i, node) in g.nodes().iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let new_id = match node {
            AcNode::Param { value } => out.param(*value)?,
            AcNode::Indicator { var, state } => out.indicator(*var, *state)?,
            AcNode::Sum(children) | AcNode::Product(children) => {
                let mapped: Vec<NodeId> = children
                    .iter()
                    .map(|c| map[c.index()].expect("children precede parents"))
                    .collect();
                let is_sum = matches!(node, AcNode::Sum(_));
                let mut acc = mapped[0];
                for &next in &mapped[1..] {
                    acc = if is_sum {
                        out.sum(vec![acc, next])?
                    } else {
                        out.product(vec![acc, next])?
                    };
                }
                acc
            }
        };
        map[i] = Some(new_id);
    }
    out.set_root(map[root.index()].expect("root is reachable"));
    Ok(out)
}

/// Removes nodes not reachable from the root.
///
/// # Errors
///
/// Returns [`AcError::MissingRoot`] if the circuit has no root.
pub fn prune(g: &AcGraph) -> Result<AcGraph, AcError> {
    let root = g.root().ok_or(AcError::MissingRoot)?;
    let reachable = g.reachable();
    let mut out = AcGraph::new(g.var_arities().to_vec());
    let mut map: Vec<Option<NodeId>> = vec![None; g.len()];
    for (i, node) in g.nodes().iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let new_id = match node {
            AcNode::Param { value } => out.param(*value)?,
            AcNode::Indicator { var, state } => out.indicator(*var, *state)?,
            AcNode::Sum(children) => {
                let mapped = children
                    .iter()
                    .map(|c| map[c.index()].expect("children precede parents"))
                    .collect();
                out.sum(mapped)?
            }
            AcNode::Product(children) => {
                let mapped = children
                    .iter()
                    .map(|c| map[c.index()].expect("children precede parents"))
                    .collect();
                out.product(mapped)?
            }
        };
        map[i] = Some(new_id);
    }
    out.set_root(map[root.index()].expect("root is reachable"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_bayes::{networks, Evidence, VarId};

    fn wide_circuit() -> AcGraph {
        // One 5-input product like Fig. 4's F operator.
        let mut g = AcGraph::new(vec![5]);
        let leaves: Vec<NodeId> = (0..5)
            .map(|i| g.indicator(VarId::from_index(0), i).unwrap())
            .collect();
        // Mix in params so leaves are distinct nodes.
        let params: Vec<NodeId> = [0.9, 0.8, 0.7, 0.6, 0.5]
            .iter()
            .map(|&p| g.param(p).unwrap())
            .collect();
        let mut children = Vec::new();
        for (l, p) in leaves.iter().zip(&params) {
            children.push(g.product(vec![*l, *p]).unwrap());
        }
        let f = g.product(children).unwrap();
        g.set_root(f);
        g
    }

    #[test]
    fn binarize_makes_every_operator_two_input() {
        let g = wide_circuit();
        assert!(!g.is_binary());
        let b = binarize(&g).unwrap();
        assert!(b.is_binary());
        assert!(b.validate().is_ok());
    }

    #[test]
    fn binarize_preserves_value() {
        let g = wide_circuit();
        let b = binarize(&g).unwrap();
        let e = Evidence::empty(1);
        assert!((g.evaluate(&e).unwrap() - b.evaluate(&e).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn five_input_operator_needs_four_two_input_ops() {
        // Fig. 4: F decomposes into a tree of F1, F2, F3 (plus the top).
        let mut g = AcGraph::new(vec![5]);
        let leaves: Vec<NodeId> = (0..5)
            .map(|i| g.indicator(VarId::from_index(0), i).unwrap())
            .collect();
        let f = g.product(leaves).unwrap();
        g.set_root(f);
        let b = binarize(&g).unwrap();
        let stats = b.stats();
        assert_eq!(stats.products, 4); // n-1 two-input operators
        assert_eq!(stats.depth, 3); // ceil(log2 5)
    }

    #[test]
    fn balanced_is_shallower_than_chain() {
        let mut g = AcGraph::new(vec![8]);
        let leaves: Vec<NodeId> = (0..8)
            .map(|i| g.indicator(VarId::from_index(0), i).unwrap())
            .collect();
        let f = g.sum(leaves).unwrap();
        g.set_root(f);
        let balanced = binarize(&g).unwrap();
        let chain = binarize_chain(&g).unwrap();
        assert_eq!(balanced.stats().depth, 3);
        assert_eq!(chain.stats().depth, 7);
        // Same number of operators either way.
        assert_eq!(balanced.stats().sums, chain.stats().sums);
        // Same value either way.
        let e = Evidence::empty(1);
        assert_eq!(balanced.evaluate(&e).unwrap(), chain.evaluate(&e).unwrap());
    }

    #[test]
    fn binarized_alarm_matches_original() {
        let net = networks::alarm(7);
        let ac = compile_and_check(&net);
        let b = binarize(&ac).unwrap();
        assert!(b.is_binary());
        for v in [0usize, 5, 20] {
            let mut e = Evidence::empty(net.var_count());
            e.observe(VarId::from_index(v), 0);
            let orig = ac.evaluate(&e).unwrap();
            let bin = b.evaluate(&e).unwrap();
            assert!((orig - bin).abs() < 1e-9);
        }
    }

    fn compile_and_check(net: &problp_bayes::BayesNet) -> AcGraph {
        let ac = crate::compile::compile(net).unwrap();
        assert!(ac.validate().is_ok());
        ac
    }

    #[test]
    fn prune_drops_dead_nodes() {
        let mut g = AcGraph::new(vec![2]);
        let a = g.indicator(VarId::from_index(0), 0).unwrap();
        let p = g.param(0.5).unwrap();
        let _dead = g.param(0.123).unwrap();
        let m = g.product(vec![a, p]).unwrap();
        g.set_root(m);
        let pruned = prune(&g).unwrap();
        assert_eq!(pruned.len(), 3);
        let e = Evidence::empty(1);
        assert_eq!(pruned.evaluate(&e).unwrap(), g.evaluate(&e).unwrap());
    }

    #[test]
    fn missing_root_is_reported() {
        let g = AcGraph::new(vec![2]);
        assert_eq!(binarize(&g).unwrap_err(), AcError::MissingRoot);
        assert_eq!(prune(&g).unwrap_err(), AcError::MissingRoot);
    }
}
