//! Error types for arithmetic-circuit construction and evaluation.

/// Errors produced when building, transforming or evaluating an arithmetic
/// circuit.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum AcError {
    /// An operator node was created with no children.
    EmptyOperator,
    /// A child id referenced a node that does not exist (or does not
    /// precede its parent in the arena).
    InvalidChild {
        /// The offending child index.
        child: usize,
    },
    /// An indicator referenced a variable outside the circuit's scope.
    VariableOutOfRange {
        /// The variable index.
        var: usize,
        /// Number of variables in scope.
        var_count: usize,
    },
    /// An indicator referenced a state outside its variable's arity.
    StateOutOfRange {
        /// The variable index.
        var: usize,
        /// The offending state.
        state: usize,
        /// The variable's arity.
        arity: usize,
    },
    /// A parameter leaf held an invalid value (negative, NaN or infinite).
    InvalidParameter {
        /// The offending value.
        value: f64,
    },
    /// The circuit has no root.
    MissingRoot,
    /// Evidence ranges over a different number of variables than the
    /// circuit.
    EvidenceLengthMismatch {
        /// Variables in the evidence.
        evidence: usize,
        /// Variables in the circuit.
        circuit: usize,
    },
}

impl std::fmt::Display for AcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcError::EmptyOperator => write!(f, "operator nodes need at least one child"),
            AcError::InvalidChild { child } => {
                write!(f, "child id {child} does not reference an earlier node")
            }
            AcError::VariableOutOfRange { var, var_count } => {
                write!(
                    f,
                    "variable {var} outside circuit scope of {var_count} variables"
                )
            }
            AcError::StateOutOfRange { var, state, arity } => {
                write!(f, "state {state} of variable {var} exceeds arity {arity}")
            }
            AcError::InvalidParameter { value } => {
                write!(
                    f,
                    "parameter value {value} is not a finite non-negative number"
                )
            }
            AcError::MissingRoot => write!(f, "the circuit has no root node"),
            AcError::EvidenceLengthMismatch { evidence, circuit } => write!(
                f,
                "evidence over {evidence} variables but the circuit has {circuit}"
            ),
        }
    }
}

impl std::error::Error for AcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = AcError::StateOutOfRange {
            var: 3,
            state: 5,
            arity: 4,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('5') && s.contains('4'));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<AcError>();
    }
}
