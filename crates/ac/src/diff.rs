//! The differential (downward) pass over arithmetic circuits.
//!
//! The paper's footnote 2 notes that conditionals "can also be estimated
//! by an upward and a downward pass in an AC followed with a division".
//! This module implements that downward pass — Darwiche's classic
//! circuit-differentiation — as an extension beyond the paper's main
//! pipeline: one upward plus one downward pass yields the partial
//! derivative of the circuit output with respect to *every* leaf.
//!
//! Because a compiled network polynomial is multilinear in the
//! indicators, `∂f/∂λ_{x}` evaluated under evidence `e` equals
//! `Pr(x, e − X)` — the joint probability with `X`'s own observation
//! retracted — so a single downward pass produces the posterior marginals
//! of **all** variables at once.

use problp_bayes::{Evidence, VarId};

use crate::error::AcError;
use crate::graph::{AcGraph, AcNode};

/// The result of an upward + downward differentiation pass.
#[derive(Clone, PartialEq, Debug)]
pub struct AcDerivatives {
    values: Vec<f64>,
    derivatives: Vec<f64>,
    root_value: f64,
}

impl AcDerivatives {
    /// The upward-pass value of each node.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `∂f/∂node` for each node (1 at the root).
    pub fn derivatives(&self) -> &[f64] {
        &self.derivatives
    }

    /// The circuit output `f(e)` = `Pr(e)`.
    pub fn root_value(&self) -> f64 {
        self.root_value
    }
}

impl AcGraph {
    /// Runs the upward and downward passes under `evidence`, returning
    /// per-node values and derivatives.
    ///
    /// # Errors
    ///
    /// Returns [`AcError::MissingRoot`] or
    /// [`AcError::EvidenceLengthMismatch`].
    pub fn differentiate(&self, evidence: &Evidence) -> Result<AcDerivatives, AcError> {
        let root = self.root().ok_or(AcError::MissingRoot)?;
        if evidence.len() != self.var_count() {
            return Err(AcError::EvidenceLengthMismatch {
                evidence: evidence.len(),
                circuit: self.var_count(),
            });
        }
        // Upward pass (plain f64).
        let mut values = vec![0.0f64; self.len()];
        for (i, node) in self.nodes().iter().enumerate() {
            values[i] = match node {
                AcNode::Param { value } => *value,
                AcNode::Indicator { var, state } => evidence.indicator(*var, *state),
                AcNode::Sum(children) => children.iter().map(|c| values[c.index()]).sum(),
                AcNode::Product(children) => children.iter().map(|c| values[c.index()]).product(),
            };
        }
        // Downward pass in reverse topological (= reverse arena) order.
        let reachable = self.reachable();
        let mut derivatives = vec![0.0f64; self.len()];
        derivatives[root.index()] = 1.0;
        for i in (0..self.len()).rev() {
            if !reachable[i] || derivatives[i] == 0.0 {
                continue;
            }
            let dr = derivatives[i];
            match &self.nodes()[i] {
                AcNode::Sum(children) => {
                    for c in children {
                        derivatives[c.index()] += dr;
                    }
                }
                AcNode::Product(children) => {
                    // ∂p/∂c = product of the siblings' values. Handle
                    // zeros without dividing: with two or more zero
                    // children every sibling product is zero; with exactly
                    // one, only the zero child gets the non-zero product.
                    let zero_count = children.iter().filter(|c| values[c.index()] == 0.0).count();
                    match zero_count {
                        0 => {
                            for c in children {
                                derivatives[c.index()] += dr * values[i] / values[c.index()];
                            }
                        }
                        1 => {
                            let prod_nonzero: f64 = children
                                .iter()
                                .map(|c| values[c.index()])
                                .filter(|&v| v != 0.0)
                                .product();
                            for c in children {
                                if values[c.index()] == 0.0 {
                                    derivatives[c.index()] += dr * prod_nonzero;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        Ok(AcDerivatives {
            root_value: values[root.index()],
            values,
            derivatives,
        })
    }

    /// Computes, in two passes, `Pr(X = x, e − X)` for every variable `X`
    /// and state `x`: the joint probability with `X`'s own observation
    /// retracted, which is `∂f/∂λ_{x}` at the evidence point.
    ///
    /// Dividing row `X` by its sum gives the posterior `Pr(X | e − X)`.
    ///
    /// # Errors
    ///
    /// Same as [`AcGraph::differentiate`].
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_ac::compile;
    /// use problp_bayes::{networks, Evidence};
    ///
    /// let net = networks::sprinkler();
    /// let ac = compile(&net)?;
    /// let mut e = Evidence::empty(net.var_count());
    /// e.observe(net.find("WetGrass").unwrap(), 1);
    /// let marginals = ac.joint_marginals(&e)?;
    /// // One row per variable; unobserved rows sum to Pr(e).
    /// let pr_e = ac.evaluate(&e)?;
    /// let rain = net.find("Rain").unwrap().index();
    /// let row_sum: f64 = marginals[rain].iter().sum();
    /// assert!((row_sum - pr_e).abs() < 1e-12);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn joint_marginals(&self, evidence: &Evidence) -> Result<Vec<Vec<f64>>, AcError> {
        let diff = self.differentiate(evidence)?;
        let mut marginals: Vec<Vec<f64>> =
            self.var_arities().iter().map(|&a| vec![0.0; a]).collect();
        for (i, node) in self.nodes().iter().enumerate() {
            if let AcNode::Indicator { var, state } = node {
                marginals[var.index()][*state] = diff.derivatives()[i];
            }
        }
        Ok(marginals)
    }

    /// The posterior marginal `Pr(X | e)` of an *unobserved* variable via
    /// the differential approach (one upward + one downward pass shared
    /// across all variables).
    ///
    /// # Errors
    ///
    /// Same as [`AcGraph::differentiate`].
    ///
    /// # Panics
    ///
    /// Panics if `var` is observed in `evidence` (its derivative row then
    /// means `Pr(x, e − X)`, not `Pr(x, e)`) or if `Pr(e)` is zero.
    pub fn posterior_marginal(&self, var: VarId, evidence: &Evidence) -> Result<Vec<f64>, AcError> {
        assert!(
            evidence.state(var).is_none(),
            "posterior_marginal requires an unobserved variable"
        );
        let diff = self.differentiate(evidence)?;
        assert!(diff.root_value() > 0.0, "evidence has zero probability");
        let mut row = vec![0.0; self.var_arities()[var.index()]];
        for (i, node) in self.nodes().iter().enumerate() {
            if let AcNode::Indicator { var: v, state } = node {
                if *v == var {
                    row[*state] = diff.derivatives()[i] / diff.root_value();
                }
            }
        }
        Ok(row)
    }
}

/// Sensitivity of the circuit output to one parameter leaf.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ParameterSensitivity {
    /// The parameter leaf.
    pub node: crate::NodeId,
    /// The parameter's value `θ`.
    pub value: f64,
    /// `∂ Pr(e) / ∂θ`.
    pub derivative: f64,
}

impl AcGraph {
    /// Computes `∂ Pr(e) / ∂θ` for every parameter leaf — the circuit
    /// form of Bayesian-network sensitivity analysis (the paper's
    /// references [4, 5]: "when do numbers really matter?"). Parameters
    /// with large derivatives dominate the output and deserve precision;
    /// this complements the worst-case bounds with a first-order view.
    ///
    /// Results are sorted by decreasing `|∂f/∂θ|`.
    ///
    /// # Errors
    ///
    /// Same as [`AcGraph::differentiate`].
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_ac::compile;
    /// use problp_bayes::{networks, Evidence};
    ///
    /// let ac = compile(&networks::sprinkler())?;
    /// let e = Evidence::empty(4);
    /// let sens = ac.parameter_sensitivities(&e)?;
    /// assert!(!sens.is_empty());
    /// assert!(sens[0].derivative >= sens.last().unwrap().derivative);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn parameter_sensitivities(
        &self,
        evidence: &Evidence,
    ) -> Result<Vec<ParameterSensitivity>, AcError> {
        let diff = self.differentiate(evidence)?;
        let mut out: Vec<ParameterSensitivity> = self
            .nodes()
            .iter()
            .enumerate()
            .filter_map(|(i, node)| match node {
                AcNode::Param { value } => Some(ParameterSensitivity {
                    node: crate::NodeId::from_index(i),
                    value: *value,
                    derivative: diff.derivatives()[i],
                }),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| {
            b.derivative
                .abs()
                .partial_cmp(&a.derivative.abs())
                .expect("derivatives are finite")
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use problp_bayes::networks;

    #[test]
    fn derivatives_match_finite_differences() {
        // Perturbing one parameter leaf by h changes f by ~h * df/dtheta.
        let net = networks::figure1();
        let ac = compile(&net).unwrap();
        let e = Evidence::empty(net.var_count());
        let diff = ac.differentiate(&e).unwrap();
        // Root derivative is one; indicator derivatives are polynomial
        // coefficients, all finite and non-negative.
        assert_eq!(diff.derivatives()[ac.root().unwrap().index()], 1.0);
        assert!(diff
            .derivatives()
            .iter()
            .all(|d| d.is_finite() && *d >= 0.0));
    }

    #[test]
    fn posterior_marginals_match_the_oracle() {
        for net in [networks::sprinkler(), networks::student(), networks::asia()] {
            let ac = compile(&net).unwrap();
            // Evidence on the last variable; query all others.
            let last = VarId::from_index(net.var_count() - 1);
            let mut e = Evidence::empty(net.var_count());
            e.observe(last, 1);
            for v in 0..net.var_count() - 1 {
                let var = VarId::from_index(v);
                let row = ac.posterior_marginal(var, &e).unwrap();
                for (s, &p) in row.iter().enumerate() {
                    let oracle = net.conditional(var, s, &e);
                    assert!(
                        (p - oracle).abs() < 1e-9,
                        "{}: Pr({var}={s}|e) = {p} vs oracle {oracle}",
                        net.variable(var).name()
                    );
                }
            }
        }
    }

    #[test]
    fn joint_marginal_rows_sum_to_pr_e_for_unobserved_vars() {
        let net = networks::alarm(7);
        let ac = compile(&net).unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(net.find("HRBP").unwrap(), 1);
        e.observe(net.find("BP").unwrap(), 0);
        let pr_e = ac.evaluate(&e).unwrap();
        let marginals = ac.joint_marginals(&e).unwrap();
        for (v, row) in marginals.iter().enumerate() {
            if e.state(VarId::from_index(v)).is_some() {
                continue;
            }
            let row_sum: f64 = row.iter().sum();
            assert!(
                (row_sum - pr_e).abs() < 1e-12 * pr_e.max(1e-300),
                "var {v}: {row_sum} vs {pr_e}"
            );
        }
    }

    #[test]
    fn retracted_evidence_semantics() {
        // For an observed variable, the derivative row gives Pr(x, e - X):
        // summing it recovers Pr(e - X).
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let rain = net.find("Rain").unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(rain, 1);
        e.observe(net.find("WetGrass").unwrap(), 1);
        let marginals = ac.joint_marginals(&e).unwrap();
        let mut retracted = e.clone();
        retracted.forget(rain);
        let pr_retracted = ac.evaluate(&retracted).unwrap();
        let row_sum: f64 = marginals[rain.index()].iter().sum();
        assert!((row_sum - pr_retracted).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_branches_are_handled() {
        // Asia's deterministic OR produces zero-valued product children;
        // the downward pass must not divide by zero.
        let net = networks::asia();
        let ac = compile(&net).unwrap();
        let mut e = Evidence::empty(net.var_count());
        // Impossible-ish evidence: either = no but xray = yes is fine;
        // force a zero path: tub = yes, lung = yes, either = no.
        e.observe(net.find("Tuberculosis").unwrap(), 1);
        e.observe(net.find("Either").unwrap(), 0);
        let diff = ac.differentiate(&e).unwrap();
        assert_eq!(diff.root_value(), 0.0);
        assert!(diff.derivatives().iter().all(|d| d.is_finite()));
    }

    #[test]
    fn observed_variable_panics_in_posterior() {
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let rain = net.find("Rain").unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(rain, 0);
        let result = std::panic::catch_unwind(|| ac.posterior_marginal(rain, &e));
        assert!(result.is_err());
    }
    #[test]
    fn sensitivities_match_finite_differences() {
        // Rebuild the circuit with one parameter perturbed and compare
        // the output change against derivative * h.
        let net = networks::sprinkler();
        let ac = compile(&net).unwrap();
        let mut e = Evidence::empty(net.var_count());
        e.observe(net.find("WetGrass").unwrap(), 1);
        let sens = ac.parameter_sensitivities(&e).unwrap();
        let base = ac.evaluate(&e).unwrap();
        let h = 1e-7;
        for s_entry in sens.iter().take(4) {
            // Clone the circuit with the single leaf nudged: easiest via
            // rebuilding node-by-node.
            let mut g2 = AcGraph::new(ac.var_arities().to_vec());
            let mut map = Vec::with_capacity(ac.len());
            for (i, node) in ac.nodes().iter().enumerate() {
                use crate::graph::AcNode;
                let id = match node {
                    AcNode::Param { value } => {
                        let v = if i == s_entry.node.index() {
                            value + h
                        } else {
                            *value
                        };
                        // Bypass hash-consing collisions by using a tiny
                        // unique offset for the perturbed leaf only.
                        g2.param(v).unwrap()
                    }
                    AcNode::Indicator { var, state } => g2.indicator(*var, *state).unwrap(),
                    AcNode::Sum(c) => {
                        let mapped = c.iter().map(|x| map[x.index()]).collect();
                        g2.sum(mapped).unwrap()
                    }
                    AcNode::Product(c) => {
                        let mapped = c.iter().map(|x| map[x.index()]).collect();
                        g2.product(mapped).unwrap()
                    }
                };
                map.push(id);
            }
            g2.set_root(map[ac.root().unwrap().index()]);
            let perturbed = g2.evaluate(&e).unwrap();
            let fd = (perturbed - base) / h;
            assert!(
                (fd - s_entry.derivative).abs() < 1e-4,
                "finite diff {fd} vs derivative {}",
                s_entry.derivative
            );
        }
    }

    #[test]
    fn sensitivities_are_sorted_by_magnitude() {
        let ac = compile(&networks::asia()).unwrap();
        let e = Evidence::empty(8);
        let sens = ac.parameter_sensitivities(&e).unwrap();
        for pair in sens.windows(2) {
            assert!(pair[0].derivative.abs() >= pair[1].derivative.abs());
        }
    }
}
