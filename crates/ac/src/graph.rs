//! The arithmetic-circuit intermediate representation.
//!
//! An arithmetic circuit (AC) is a DAG of sums and products over two kinds
//! of leaves (paper §2):
//!
//! * **parameters** `θ_{x|u}` — the network's conditional probabilities,
//!   constant across evaluations;
//! * **indicators** `λ_{x}` — 0/1 inputs derived from the evidence.
//!
//! The arena is append-only and children must precede parents, so the node
//! index order is always a valid topological (evaluation) order.

use std::collections::HashMap;

use problp_bayes::VarId;

use crate::error::AcError;

/// Identifier of a node within an [`AcGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node of an arithmetic circuit.
#[derive(Clone, PartialEq, Debug)]
pub enum AcNode {
    /// An n-ary addition.
    Sum(Vec<NodeId>),
    /// An n-ary multiplication.
    Product(Vec<NodeId>),
    /// A constant parameter leaf `θ` (a conditional probability).
    Param {
        /// The parameter's value.
        value: f64,
    },
    /// An indicator leaf `λ_{var = state}`, set from the evidence.
    Indicator {
        /// The indicator's variable.
        var: VarId,
        /// The indicated state.
        state: usize,
    },
}

impl AcNode {
    /// The node's children (empty for leaves).
    pub fn children(&self) -> &[NodeId] {
        match self {
            AcNode::Sum(c) | AcNode::Product(c) => c,
            _ => &[],
        }
    }

    /// Returns `true` for sum or product nodes.
    pub const fn is_operator(&self) -> bool {
        matches!(self, AcNode::Sum(_) | AcNode::Product(_))
    }

    /// Returns `true` for leaves.
    pub const fn is_leaf(&self) -> bool {
        !self.is_operator()
    }
}

/// Aggregate statistics of an arithmetic circuit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AcStats {
    /// Total number of nodes.
    pub nodes: usize,
    /// Number of sum nodes.
    pub sums: usize,
    /// Number of product nodes.
    pub products: usize,
    /// Number of parameter leaves.
    pub params: usize,
    /// Number of indicator leaves.
    pub indicators: usize,
    /// Total number of child edges.
    pub edges: usize,
    /// Longest leaf-to-root path (leaves have depth 0).
    pub depth: usize,
    /// Largest operator fan-in.
    pub max_fanin: usize,
}

impl std::fmt::Display for AcStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes ({} sums, {} products, {} params, {} indicators), {} edges, depth {}, max fan-in {}",
            self.nodes,
            self.sums,
            self.products,
            self.params,
            self.indicators,
            self.edges,
            self.depth,
            self.max_fanin
        )
    }
}

/// An arithmetic circuit over a fixed set of discrete variables.
///
/// # Examples
///
/// Build the polynomial `λ_{a0}·θ + λ_{a1}·(1-θ)` by hand:
///
/// ```
/// use problp_ac::{AcGraph, NodeId};
/// use problp_bayes::{Evidence, VarId};
///
/// let mut g = AcGraph::new(vec![2]); // one binary variable
/// let a0 = g.indicator(VarId::from_index(0), 0)?;
/// let a1 = g.indicator(VarId::from_index(0), 1)?;
/// let t0 = g.param(0.3)?;
/// let t1 = g.param(0.7)?;
/// let p0 = g.product(vec![a0, t0])?;
/// let p1 = g.product(vec![a1, t1])?;
/// let root = g.sum(vec![p0, p1])?;
/// g.set_root(root);
///
/// let mut e = Evidence::empty(1);
/// e.observe(VarId::from_index(0), 1);
/// assert_eq!(g.evaluate(&e)?, 0.7);
/// # Ok::<(), problp_ac::AcError>(())
/// ```
#[derive(Clone, Debug)]
pub struct AcGraph {
    nodes: Vec<AcNode>,
    root: Option<NodeId>,
    var_arities: Vec<usize>,
    /// Hash-consing caches so identical leaves are shared.
    param_cache: HashMap<u64, NodeId>,
    indicator_cache: HashMap<(usize, usize), NodeId>,
}

impl AcGraph {
    /// Creates an empty circuit over variables with the given arities.
    pub fn new(var_arities: Vec<usize>) -> Self {
        AcGraph {
            nodes: Vec::new(),
            root: None,
            var_arities,
            param_cache: HashMap::new(),
            indicator_cache: HashMap::new(),
        }
    }

    /// Number of variables in scope.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.var_arities.len()
    }

    /// Arities of the variables in scope.
    #[inline]
    pub fn var_arities(&self) -> &[usize] {
        &self.var_arities
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the circuit has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &AcNode {
        &self.nodes[id.index()]
    }

    /// All nodes in arena (= topological) order.
    pub fn nodes(&self) -> &[AcNode] {
        &self.nodes
    }

    /// The root node, if set.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Sets the root node.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn set_root(&mut self, root: NodeId) {
        assert!(root.index() < self.nodes.len(), "root out of range");
        self.root = Some(root);
    }

    /// Adds (or reuses) a parameter leaf with the given value.
    ///
    /// Identical values share one leaf (hash-consing), mirroring how
    /// hardware stores each distinct constant once.
    ///
    /// # Errors
    ///
    /// Returns [`AcError::InvalidParameter`] for negative, NaN or infinite
    /// values.
    pub fn param(&mut self, value: f64) -> Result<NodeId, AcError> {
        if !value.is_finite() || value < 0.0 {
            return Err(AcError::InvalidParameter { value });
        }
        if let Some(&id) = self.param_cache.get(&value.to_bits()) {
            return Ok(id);
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(AcNode::Param { value });
        self.param_cache.insert(value.to_bits(), id);
        Ok(id)
    }

    /// Adds (or reuses) the indicator leaf `λ_{var = state}`.
    ///
    /// # Errors
    ///
    /// Returns [`AcError::VariableOutOfRange`] / [`AcError::StateOutOfRange`]
    /// for indices outside the circuit's scope.
    pub fn indicator(&mut self, var: VarId, state: usize) -> Result<NodeId, AcError> {
        let v = var.index();
        if v >= self.var_arities.len() {
            return Err(AcError::VariableOutOfRange {
                var: v,
                var_count: self.var_arities.len(),
            });
        }
        if state >= self.var_arities[v] {
            return Err(AcError::StateOutOfRange {
                var: v,
                state,
                arity: self.var_arities[v],
            });
        }
        if let Some(&id) = self.indicator_cache.get(&(v, state)) {
            return Ok(id);
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(AcNode::Indicator { var, state });
        self.indicator_cache.insert((v, state), id);
        Ok(id)
    }

    fn check_children(&self, children: &[NodeId]) -> Result<(), AcError> {
        if children.is_empty() {
            return Err(AcError::EmptyOperator);
        }
        for c in children {
            if c.index() >= self.nodes.len() {
                return Err(AcError::InvalidChild { child: c.index() });
            }
        }
        Ok(())
    }

    /// Adds a sum node. A single-child sum is elided (the child id is
    /// returned directly).
    ///
    /// # Errors
    ///
    /// Returns [`AcError::EmptyOperator`] or [`AcError::InvalidChild`].
    pub fn sum(&mut self, children: Vec<NodeId>) -> Result<NodeId, AcError> {
        self.check_children(&children)?;
        if children.len() == 1 {
            return Ok(children[0]);
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(AcNode::Sum(children));
        Ok(id)
    }

    /// Adds a product node. A single-child product is elided.
    ///
    /// # Errors
    ///
    /// Returns [`AcError::EmptyOperator`] or [`AcError::InvalidChild`].
    pub fn product(&mut self, children: Vec<NodeId>) -> Result<NodeId, AcError> {
        self.check_children(&children)?;
        if children.len() == 1 {
            return Ok(children[0]);
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(AcNode::Product(children));
        Ok(id)
    }

    /// Checks structural invariants: a root exists, children precede
    /// parents, leaves are within scope.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), AcError> {
        if self.root.is_none() {
            return Err(AcError::MissingRoot);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                AcNode::Sum(c) | AcNode::Product(c) => {
                    if c.is_empty() {
                        return Err(AcError::EmptyOperator);
                    }
                    for ch in c {
                        if ch.index() >= i {
                            return Err(AcError::InvalidChild { child: ch.index() });
                        }
                    }
                }
                AcNode::Indicator { var, state } => {
                    let v = var.index();
                    if v >= self.var_arities.len() {
                        return Err(AcError::VariableOutOfRange {
                            var: v,
                            var_count: self.var_arities.len(),
                        });
                    }
                    if *state >= self.var_arities[v] {
                        return Err(AcError::StateOutOfRange {
                            var: v,
                            state: *state,
                            arity: self.var_arities[v],
                        });
                    }
                }
                AcNode::Param { value } => {
                    if !value.is_finite() || *value < 0.0 {
                        return Err(AcError::InvalidParameter { value: *value });
                    }
                }
            }
        }
        Ok(())
    }

    /// Returns `true` if every operator has at most two inputs (hardware
    /// form, see [`crate::transform::binarize`]).
    pub fn is_binary(&self) -> bool {
        self.nodes.iter().all(|n| n.children().len() <= 2)
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> AcStats {
        let mut stats = AcStats {
            nodes: self.nodes.len(),
            ..AcStats::default()
        };
        let mut depths = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                AcNode::Sum(c) => {
                    stats.sums += 1;
                    stats.edges += c.len();
                    stats.max_fanin = stats.max_fanin.max(c.len());
                    depths[i] = 1 + c.iter().map(|ch| depths[ch.index()]).max().unwrap_or(0);
                }
                AcNode::Product(c) => {
                    stats.products += 1;
                    stats.edges += c.len();
                    stats.max_fanin = stats.max_fanin.max(c.len());
                    depths[i] = 1 + c.iter().map(|ch| depths[ch.index()]).max().unwrap_or(0);
                }
                AcNode::Param { .. } => stats.params += 1,
                AcNode::Indicator { .. } => stats.indicators += 1,
            }
            stats.depth = stats.depth.max(depths[i]);
        }
        stats
    }

    /// Renders the circuit in Graphviz DOT format (sums as `+`, products
    /// as `×`, parameters as their value, indicators as `λ_{var,state}`).
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_ac::compile;
    /// use problp_bayes::networks;
    ///
    /// let ac = compile(&networks::figure1())?;
    /// let dot = ac.to_dot();
    /// assert!(dot.starts_with("digraph ac {"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph ac {\n  rankdir=BT;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let (label, shape) = match node {
                AcNode::Sum(_) => ("+".to_string(), "circle"),
                AcNode::Product(_) => ("\u{00d7}".to_string(), "circle"),
                AcNode::Param { value } => (format!("{value:.4}"), "box"),
                AcNode::Indicator { var, state } => {
                    (format!("\u{03bb}_{{{},{}}}", var.index(), state), "box")
                }
            };
            out.push_str(&format!("  n{i} [label=\"{label}\", shape={shape}];\n"));
            for c in node.children() {
                out.push_str(&format!("  n{} -> n{i};\n", c.index()));
            }
        }
        if let Some(root) = self.root {
            out.push_str(&format!("  n{} [penwidth=2];\n", root.index()));
        }
        out.push_str("}\n");
        out
    }

    /// The ids of all nodes reachable from the root (in arena order).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has no root.
    pub fn reachable(&self) -> Vec<bool> {
        let root = self.root.expect("circuit has no root");
        let mut mark = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if mark[id.index()] {
                continue;
            }
            mark[id.index()] = true;
            for &c in self.node(id).children() {
                if !mark[c.index()] {
                    stack.push(c);
                }
            }
        }
        mark
    }
}

impl std::fmt::Display for AcGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AcGraph({})", self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn leaves_are_hash_consed() {
        let mut g = AcGraph::new(vec![2]);
        let p1 = g.param(0.25).unwrap();
        let p2 = g.param(0.25).unwrap();
        assert_eq!(p1, p2);
        let i1 = g.indicator(v(0), 1).unwrap();
        let i2 = g.indicator(v(0), 1).unwrap();
        assert_eq!(i1, i2);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn single_child_operators_are_elided() {
        let mut g = AcGraph::new(vec![2]);
        let p = g.param(0.5).unwrap();
        assert_eq!(g.sum(vec![p]).unwrap(), p);
        assert_eq!(g.product(vec![p]).unwrap(), p);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn invalid_leaves_are_rejected() {
        let mut g = AcGraph::new(vec![2]);
        assert!(matches!(
            g.param(-0.1).unwrap_err(),
            AcError::InvalidParameter { .. }
        ));
        assert!(matches!(
            g.param(f64::NAN).unwrap_err(),
            AcError::InvalidParameter { .. }
        ));
        assert!(matches!(
            g.indicator(v(1), 0).unwrap_err(),
            AcError::VariableOutOfRange { .. }
        ));
        assert!(matches!(
            g.indicator(v(0), 2).unwrap_err(),
            AcError::StateOutOfRange { .. }
        ));
    }

    #[test]
    fn empty_operators_are_rejected() {
        let mut g = AcGraph::new(vec![2]);
        assert_eq!(g.sum(vec![]).unwrap_err(), AcError::EmptyOperator);
        assert_eq!(g.product(vec![]).unwrap_err(), AcError::EmptyOperator);
    }

    #[test]
    fn stats_count_everything() {
        let mut g = AcGraph::new(vec![2, 2]);
        let a = g.indicator(v(0), 0).unwrap();
        let b = g.indicator(v(1), 0).unwrap();
        let p = g.param(0.5).unwrap();
        let m = g.product(vec![a, b, p]).unwrap();
        let s = g.sum(vec![m, p]).unwrap();
        g.set_root(s);
        let st = g.stats();
        assert_eq!(st.nodes, 5);
        assert_eq!(st.sums, 1);
        assert_eq!(st.products, 1);
        assert_eq!(st.params, 1);
        assert_eq!(st.indicators, 2);
        assert_eq!(st.edges, 5);
        assert_eq!(st.depth, 2);
        assert_eq!(st.max_fanin, 3);
        assert!(!g.is_binary());
    }

    #[test]
    fn validation_catches_missing_root() {
        let mut g = AcGraph::new(vec![2]);
        let _ = g.param(0.5).unwrap();
        assert_eq!(g.validate().unwrap_err(), AcError::MissingRoot);
    }

    #[test]
    fn validation_passes_for_well_formed_graphs() {
        let mut g = AcGraph::new(vec![2]);
        let a = g.indicator(v(0), 0).unwrap();
        let p = g.param(0.5).unwrap();
        let m = g.product(vec![a, p]).unwrap();
        g.set_root(m);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn reachable_marks_live_nodes() {
        let mut g = AcGraph::new(vec![2]);
        let a = g.indicator(v(0), 0).unwrap();
        let p = g.param(0.5).unwrap();
        let dead = g.param(0.75).unwrap();
        let m = g.product(vec![a, p]).unwrap();
        g.set_root(m);
        let mark = g.reachable();
        assert!(mark[a.index()] && mark[p.index()] && mark[m.index()]);
        assert!(!mark[dead.index()]);
    }
}
