//! Arithmetic-circuit evaluation under pluggable number systems.
//!
//! Evaluation is a single forward pass over the arena (children always
//! precede parents). The [`Semiring`] selects how sum nodes combine:
//!
//! * [`Semiring::SumProduct`] — ordinary evaluation (marginals, paper §2);
//! * [`Semiring::MaxProduct`] — most probable explanation (paper §3.2.1);
//! * [`Semiring::MinProduct`] — the *min-value analysis* of paper §3.1.4:
//!   sums take the minimum over their non-zero children, yielding each
//!   node's smallest positive achievable value when all indicators are 1.

use problp_bayes::Evidence;
use problp_num::{Arith, F64Arith};

use crate::error::AcError;
use crate::graph::{AcGraph, AcNode};

/// How sum nodes are interpreted during evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Semiring {
    /// Sums add: ordinary probability computation.
    #[default]
    SumProduct,
    /// Sums take the maximum: max-product / MPE evaluation.
    MaxProduct,
    /// Sums take the minimum over non-zero children: min-value analysis.
    MinProduct,
}

impl AcGraph {
    /// Evaluates the circuit under the given arithmetic context and
    /// semiring, returning the value of every node (indexed by node id).
    ///
    /// This is the instrumented entry point used by the max-value and
    /// min-value analyses (paper §3.1.4), which need all internal values.
    ///
    /// # Errors
    ///
    /// Returns [`AcError::EvidenceLengthMismatch`] or
    /// [`AcError::MissingRoot`].
    pub fn evaluate_nodes<A: Arith>(
        &self,
        ctx: &mut A,
        evidence: &Evidence,
        semiring: Semiring,
    ) -> Result<Vec<A::Value>, AcError> {
        if self.root().is_none() {
            return Err(AcError::MissingRoot);
        }
        if evidence.len() != self.var_count() {
            return Err(AcError::EvidenceLengthMismatch {
                evidence: evidence.len(),
                circuit: self.var_count(),
            });
        }
        let mut values: Vec<A::Value> = Vec::with_capacity(self.len());
        for node in self.nodes() {
            let value = match node {
                AcNode::Param { value } => ctx.from_f64(*value),
                AcNode::Indicator { var, state } => ctx.from_f64(evidence.indicator(*var, *state)),
                AcNode::Product(children) => {
                    let mut it = children.iter();
                    let first = it.next().expect("validated operator");
                    let mut acc = values[first.index()].clone();
                    for c in it {
                        acc = ctx.mul(&acc, &values[c.index()]);
                    }
                    acc
                }
                AcNode::Sum(children) => match semiring {
                    Semiring::SumProduct => {
                        let mut it = children.iter();
                        let first = it.next().expect("validated operator");
                        let mut acc = values[first.index()].clone();
                        for c in it {
                            acc = ctx.add(&acc, &values[c.index()]);
                        }
                        acc
                    }
                    Semiring::MaxProduct => {
                        let mut it = children.iter();
                        let first = it.next().expect("validated operator");
                        let mut acc = values[first.index()].clone();
                        for c in it {
                            acc = ctx.max(&acc, &values[c.index()]);
                        }
                        acc
                    }
                    Semiring::MinProduct => {
                        // Minimum over non-zero children; zero only if all
                        // children are zero ("smallest positive non-zero
                        // value", paper §3.1.4).
                        let mut acc: Option<A::Value> = None;
                        for c in children {
                            let v = &values[c.index()];
                            if ctx.to_f64(v) == 0.0 {
                                continue;
                            }
                            acc = Some(match acc {
                                None => v.clone(),
                                Some(a) => ctx.min(&a, v),
                            });
                        }
                        acc.unwrap_or_else(|| ctx.zero())
                    }
                },
            };
            values.push(value);
        }
        Ok(values)
    }

    /// Evaluates the circuit under the given arithmetic context, returning
    /// the root value.
    ///
    /// # Errors
    ///
    /// Same as [`AcGraph::evaluate_nodes`].
    pub fn evaluate_with<A: Arith>(
        &self,
        ctx: &mut A,
        evidence: &Evidence,
        semiring: Semiring,
    ) -> Result<A::Value, AcError> {
        let values = self.evaluate_nodes(ctx, evidence, semiring)?;
        let root = self.root().expect("checked by evaluate_nodes");
        Ok(values[root.index()].clone())
    }

    /// Evaluates the circuit exactly (in `f64`) under the sum-product
    /// semiring: the probability of the evidence, `Pr(e)`.
    ///
    /// # Errors
    ///
    /// Same as [`AcGraph::evaluate_nodes`].
    pub fn evaluate(&self, evidence: &Evidence) -> Result<f64, AcError> {
        self.evaluate_with(&mut F64Arith::new(), evidence, Semiring::SumProduct)
    }

    /// Evaluates the MPE value `max_x Pr(x, e)` exactly (in `f64`).
    ///
    /// # Errors
    ///
    /// Same as [`AcGraph::evaluate_nodes`].
    pub fn evaluate_mpe(&self, evidence: &Evidence) -> Result<f64, AcError> {
        self.evaluate_with(&mut F64Arith::new(), evidence, Semiring::MaxProduct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_bayes::VarId;
    use problp_num::{FixedArith, FixedFormat, FloatArith, FloatFormat};

    /// λ_{a0}·0.3 + λ_{a1}·0.7, the single-variable network polynomial.
    fn tiny() -> AcGraph {
        let mut g = AcGraph::new(vec![2]);
        let a0 = g.indicator(VarId::from_index(0), 0).unwrap();
        let a1 = g.indicator(VarId::from_index(0), 1).unwrap();
        let t0 = g.param(0.3).unwrap();
        let t1 = g.param(0.7).unwrap();
        let p0 = g.product(vec![a0, t0]).unwrap();
        let p1 = g.product(vec![a1, t1]).unwrap();
        let root = g.sum(vec![p0, p1]).unwrap();
        g.set_root(root);
        g
    }

    #[test]
    fn sum_product_matches_hand_computation() {
        let g = tiny();
        let all = Evidence::empty(1);
        assert_eq!(g.evaluate(&all).unwrap(), 1.0);
        let mut e0 = Evidence::empty(1);
        e0.observe(VarId::from_index(0), 0);
        assert_eq!(g.evaluate(&e0).unwrap(), 0.3);
    }

    #[test]
    fn max_product_takes_the_best_branch() {
        let g = tiny();
        let all = Evidence::empty(1);
        assert_eq!(g.evaluate_mpe(&all).unwrap(), 0.7);
        let mut e0 = Evidence::empty(1);
        e0.observe(VarId::from_index(0), 0);
        assert_eq!(g.evaluate_mpe(&e0).unwrap(), 0.3);
    }

    #[test]
    fn min_product_skips_zero_children() {
        let g = tiny();
        let mut ctx = F64Arith::new();
        let all = Evidence::empty(1);
        let v = g
            .evaluate_with(&mut ctx, &all, Semiring::MinProduct)
            .unwrap();
        assert_eq!(v, 0.3);
        // With evidence a=1 the a0 branch is zero and must be skipped, not
        // taken as the minimum.
        let mut e1 = Evidence::empty(1);
        e1.observe(VarId::from_index(0), 1);
        let v = g
            .evaluate_with(&mut ctx, &e1, Semiring::MinProduct)
            .unwrap();
        assert_eq!(v, 0.7);
    }

    #[test]
    fn evaluate_nodes_returns_every_value() {
        let g = tiny();
        let mut ctx = F64Arith::new();
        let all = Evidence::empty(1);
        let values = g
            .evaluate_nodes(&mut ctx, &all, Semiring::SumProduct)
            .unwrap();
        assert_eq!(values.len(), g.len());
        assert_eq!(values[g.root().unwrap().index()], 1.0);
        // Indicators evaluate to 1 with empty evidence.
        assert_eq!(values[0], 1.0);
    }

    #[test]
    fn low_precision_contexts_run_the_same_pass() {
        let g = tiny();
        let all = Evidence::empty(1);
        let mut fx = FixedArith::new(FixedFormat::new(1, 12).unwrap());
        let vfx = g
            .evaluate_with(&mut fx, &all, Semiring::SumProduct)
            .unwrap();
        assert!((fx.to_f64(&vfx) - 1.0).abs() < 1e-3);
        assert!(!fx.flags().range_violation());

        let mut fl = FloatArith::new(FloatFormat::new(8, 12).unwrap());
        let vfl = g
            .evaluate_with(&mut fl, &all, Semiring::SumProduct)
            .unwrap();
        assert!((fl.to_f64(&vfl) - 1.0).abs() < 1e-3);
        assert!(!fl.flags().range_violation());
    }

    #[test]
    fn evidence_length_is_checked() {
        let g = tiny();
        let bad = Evidence::empty(3);
        assert!(matches!(
            g.evaluate(&bad).unwrap_err(),
            AcError::EvidenceLengthMismatch { .. }
        ));
    }

    #[test]
    fn missing_root_is_an_error() {
        let g = AcGraph::new(vec![2]);
        let e = Evidence::empty(1);
        assert_eq!(g.evaluate(&e).unwrap_err(), AcError::MissingRoot);
    }
}
