//! Property tests for the arithmetic-circuit crate: compiler, optimiser,
//! transforms, differentiation and MPE decoding against the enumeration
//! oracle on random networks.

use proptest::prelude::*;

use problp_ac::{compile, optimize, transform, Semiring};
use problp_bayes::{networks, Evidence, VarId};
use problp_num::F64Arith;

/// Builds a random partial evidence for a network from a seed vector.
fn evidence_from(net: &problp_bayes::BayesNet, picks: &[usize], keep_mod: usize) -> Evidence {
    let mut e = Evidence::empty(net.var_count());
    for (v, p) in picks.iter().take(net.var_count()).enumerate() {
        if p % 3 < keep_mod {
            let arity = net.variable(VarId::from_index(v)).arity();
            e.observe(VarId::from_index(v), p % arity);
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimizer_preserves_the_polynomial(
        seed in 0u64..300,
        picks in proptest::collection::vec(0usize..100, 7),
    ) {
        let net = networks::random_network(seed, 7, 3, 3);
        let ac = compile(&net).unwrap();
        let (opt, stats) = optimize(&ac).unwrap();
        prop_assert!(stats.nodes_after <= stats.nodes_before);
        for keep in 0..3 {
            let e = evidence_from(&net, &picks, keep);
            let a = ac.evaluate(&e).unwrap();
            let b = opt.evaluate(&e).unwrap();
            prop_assert!((a - b).abs() < 1e-12, "keep={}: {} vs {}", keep, a, b);
        }
    }

    #[test]
    fn optimizer_and_binarizer_commute_in_value(
        seed in 0u64..300,
        picks in proptest::collection::vec(0usize..100, 7),
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let path_a = transform::binarize(&optimize(&ac).unwrap().0).unwrap();
        let path_b = optimize(&transform::binarize(&ac).unwrap()).unwrap().0;
        let e = evidence_from(&net, &picks, 2);
        let a = path_a.evaluate(&e).unwrap();
        let b = path_b.evaluate(&e).unwrap();
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn derivatives_recover_single_variable_marginals(
        seed in 0u64..300,
        picks in proptest::collection::vec(0usize..100, 7),
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let e = evidence_from(&net, &picks, 1);
        let pr_e = ac.evaluate(&e).unwrap();
        prop_assume!(pr_e > 1e-12);
        let marginals = ac.joint_marginals(&e).unwrap();
        for (v, row) in marginals.iter().enumerate() {
            let var = VarId::from_index(v);
            if e.state(var).is_some() {
                continue;
            }
            for (s, &m) in row.iter().enumerate() {
                let mut with_q = e.clone();
                with_q.observe(var, s);
                let direct = ac.evaluate(&with_q).unwrap();
                prop_assert!(
                    (m - direct).abs() < 1e-9,
                    "v={} s={}: {} vs {}", v, s, m, direct
                );
            }
        }
    }

    #[test]
    fn mpe_decoding_achieves_the_max_product_value(
        seed in 0u64..300,
        picks in proptest::collection::vec(0usize..100, 7),
    ) {
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let e = evidence_from(&net, &picks, 1);
        let value = ac.evaluate_mpe(&e).unwrap();
        prop_assume!(value > 0.0);
        let (assignment, decoded) = ac.mpe_assignment(&e).unwrap();
        prop_assert!((decoded - value).abs() < 1e-12);
        prop_assert!((net.joint_probability(&assignment) - value).abs() < 1e-12);
        // The assignment respects the evidence.
        for (var, state) in e.iter() {
            prop_assert_eq!(assignment[var.index()], state);
        }
    }

    #[test]
    fn evaluation_is_linear_in_each_indicator(
        seed in 0u64..300,
        var_pick in 0usize..6,
    ) {
        // The network polynomial is multilinear: f(lambda_x = 1) equals
        // the sum over the states' contributions. Check via semiring eval:
        // Pr(e) = sum_s Pr(e, X = s) for any unobserved X.
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let var = VarId::from_index(var_pick % net.var_count());
        let e = Evidence::empty(net.var_count());
        let total = ac.evaluate(&e).unwrap();
        let mut sum = 0.0;
        for s in 0..net.variable(var).arity() {
            let mut es = e.clone();
            es.observe(var, s);
            sum += ac.evaluate(&es).unwrap();
        }
        prop_assert!((total - sum).abs() < 1e-9);
    }

    #[test]
    fn semiring_results_are_ordered(
        seed in 0u64..300,
        picks in proptest::collection::vec(0usize..100, 7),
    ) {
        // max-product <= sum-product <= 1 and min-product <= max-product
        // for probability circuits at any evidence.
        let net = networks::random_network(seed, 6, 2, 3);
        let ac = compile(&net).unwrap();
        let e = evidence_from(&net, &picks, 2);
        let mut ctx = F64Arith::new();
        let sum = ac.evaluate(&e).unwrap();
        let max = ac.evaluate_mpe(&e).unwrap();
        let min = ac.evaluate_with(&mut ctx, &e, Semiring::MinProduct).unwrap();
        prop_assert!(max <= sum + 1e-12);
        prop_assert!(sum <= 1.0 + 1e-9);
        let _ = min; // min-product is an analysis quantity, only finiteness matters
        prop_assert!(min.is_finite());
    }
}
