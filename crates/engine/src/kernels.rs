//! Lane-chunked evaluation kernels behind the [`KernelSet`] trait.
//!
//! # Dispatch model
//!
//! [`crate::Engine::evaluate_batch`] runs one of three evaluator cores,
//! selected at runtime by [`KernelKind`] (see
//! [`crate::Engine::with_kernel`]):
//!
//! * **`Scalar`** — the reference: per-instruction loops through the
//!   [`problp_num::Arith`] context, exactly as PR 1 shipped. Every other
//!   kernel is defined as "bit-identical to this".
//! * **`Simd`** — the same unfused tape, but each instruction's lane loop
//!   goes through this trait, whose vectorized implementations process
//!   fixed-width chunks of [`LANE_WIDTH`] lanes that the compiler can
//!   keep in vector registers (portable `core::simd`-style: plain local
//!   arrays, no intrinsics, a scalar tail for the remainder).
//! * **`Fused`** — the [`crate::FusedTape`] superinstruction stream
//!   ([`crate::Tape::fuse`]) through the same vectorized row ops, plus
//!   [`KernelSet::mul_acc_rows`] / [`KernelSet::reduce_rows`] which keep
//!   chain partials in local accumulators instead of round-tripping them
//!   through the destination row.
//!
//! # Which arithmetics vectorize
//!
//! | Arith       | kernels                 | why it stays bit-identical     |
//! |-------------|-------------------------|--------------------------------|
//! | `f64`       | vectorized, width 8     | same scalar op per lane; the multiply and accumulate of `MulAcc` stay two roundings (never FMA-contracted) |
//! | `fixed:I.F` | vectorized fast path for `I+F <= 63` | native `u128` product + the exact same half-up/truncate rounding, saturation and flag rules as [`problp_num::Fixed`]; wider formats fall back to the scalar ops |
//! | `float:E.M` | scalar fallback         | software-emulated rounding has no profitable lockstep form, so it keeps the defaulted reference loops |
//!
//! Every override is gated by `problp-conformance`: the differential
//! matrix runs the `simd`/`fused` backends against the scalar walk on
//! every arithmetic × semiring and fails on the first differing bit.

// Row kernels take flat `(op, regs, d, acc, a, b, n)` argument lists on
// purpose: the hot path wants plain scalars, not a params struct the
// optimizer has to see through.
#![allow(clippy::too_many_arguments)]

use problp_num::{Arith, F64Arith, Fixed, FixedArith, FixedRounding, Flags, FloatArith};

use crate::fuse::BinOp;

/// Lanes per vector chunk: wide enough for two 4-lane AVX2 `f64` vectors
/// (or one AVX-512 vector), small enough to live in registers.
pub const LANE_WIDTH: usize = 8;

/// Which evaluator core [`crate::Engine::evaluate_batch`] dispatches
/// through. Selected per engine by [`crate::Engine::with_kernel`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KernelKind {
    /// Reference scalar loops (the default).
    #[default]
    Scalar,
    /// Lane-chunked vectorized kernels on the unfused tape.
    Simd,
    /// Fused superinstruction tape plus the vectorized kernels.
    Fused,
}

impl KernelKind {
    /// Every kernel kind, in escalation order.
    pub const ALL: [KernelKind; 3] = [KernelKind::Scalar, KernelKind::Simd, KernelKind::Fused];

    /// The CLI name (`--kernel scalar|simd|fused`).
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Simd => "simd",
            KernelKind::Fused => "fused",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<KernelKind> {
        KernelKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Row-wise evaluation kernels over the SoA register file.
///
/// A "row" is one register's `n` contiguous lanes; arguments `d`/`a`/`b`
/// are pre-multiplied row base offsets into `regs` (`register index ×
/// chunk`). Rows may alias — accumulator chains write their destination
/// row while reading it — so implementations must read operands before
/// writing `d` within a lane.
///
/// The defaulted methods are the scalar reference semantics; vectorized
/// overrides must stay bit-identical to them (including [`Flags`]
/// effects, reported through [`Arith::merge_flags`]). See the [module
/// docs](crate::kernels) for the per-arithmetic table.
pub trait KernelSet: Arith {
    /// Whether this arithmetic ships vectorized kernels (`false` means
    /// every row op runs the scalar reference loop).
    const VECTORIZED: bool = false;

    /// `regs[d..][l] = op(regs[a..][l], regs[b..][l])` for `n` lanes.
    fn bin_rows(
        &mut self,
        op: BinOp,
        regs: &mut [Self::Value],
        d: usize,
        a: usize,
        b: usize,
        n: usize,
    ) {
        scalar_bin_rows(self, op, regs, d, a, b, n);
    }

    /// `regs[d..][l] = op(regs[acc..][l], regs[a..][l] * regs[b..][l])`
    /// for `n` lanes — the [`crate::FusedInstr::MulAcc`] superinstruction.
    /// The multiply and the outer op are two separate roundings.
    fn mul_acc_rows(
        &mut self,
        op: BinOp,
        regs: &mut [Self::Value],
        d: usize,
        acc: usize,
        a: usize,
        b: usize,
        n: usize,
    ) {
        scalar_mul_acc_rows(self, op, regs, d, acc, a, b, n);
    }

    /// `regs[d..][l] = fold(op, regs[first..][l], rest rows)` for `n`
    /// lanes — the [`crate::FusedInstr::Reduce`] superinstruction. `rest`
    /// holds register indices; `chunk` converts them to row offsets. The
    /// fold is strictly left to right.
    fn reduce_rows(
        &mut self,
        op: BinOp,
        regs: &mut [Self::Value],
        chunk: usize,
        d: usize,
        first: usize,
        rest: &[u32],
        n: usize,
    ) {
        scalar_reduce_rows(self, op, regs, chunk, d, first, rest, n);
    }
}

/// One scalar application of `op` through the context — the definition
/// every kernel must reproduce per lane.
#[inline]
pub(crate) fn apply_op<A: Arith + ?Sized>(
    ctx: &mut A,
    op: BinOp,
    a: &A::Value,
    b: &A::Value,
) -> A::Value {
    match op {
        BinOp::Add => ctx.add(a, b),
        BinOp::Mul => ctx.mul(a, b),
        BinOp::Max => ctx.max(a, b),
        BinOp::MinNz => min_nz(ctx, a, b),
    }
}

/// Min over non-zero operands, zero only if both are zero — the binary
/// fold step of the min-value-analysis sum (paper §3.1.4). Matches the
/// scalar evaluator's skip-zero fold bit for bit.
#[inline]
pub(crate) fn min_nz<A: Arith + ?Sized>(ctx: &mut A, a: &A::Value, b: &A::Value) -> A::Value {
    if ctx.to_f64(a) == 0.0 {
        b.clone()
    } else if ctx.to_f64(b) == 0.0 {
        a.clone()
    } else {
        ctx.min(a, b)
    }
}

/// The scalar reference loop behind [`KernelSet::bin_rows`].
pub(crate) fn scalar_bin_rows<A: Arith + ?Sized>(
    ctx: &mut A,
    op: BinOp,
    regs: &mut [A::Value],
    d: usize,
    a: usize,
    b: usize,
    n: usize,
) {
    for l in 0..n {
        let v = apply_op(ctx, op, &regs[a + l], &regs[b + l]);
        regs[d + l] = v;
    }
}

/// The scalar reference loop behind [`KernelSet::mul_acc_rows`].
pub(crate) fn scalar_mul_acc_rows<A: Arith + ?Sized>(
    ctx: &mut A,
    op: BinOp,
    regs: &mut [A::Value],
    d: usize,
    acc: usize,
    a: usize,
    b: usize,
    n: usize,
) {
    for l in 0..n {
        let p = ctx.mul(&regs[a + l], &regs[b + l]);
        let v = apply_op(ctx, op, &regs[acc + l], &p);
        regs[d + l] = v;
    }
}

/// The scalar reference loop behind [`KernelSet::reduce_rows`].
pub(crate) fn scalar_reduce_rows<A: Arith + ?Sized>(
    ctx: &mut A,
    op: BinOp,
    regs: &mut [A::Value],
    chunk: usize,
    d: usize,
    first: usize,
    rest: &[u32],
    n: usize,
) {
    for l in 0..n {
        let mut acc = regs[first + l].clone();
        for &r in rest {
            let v = apply_op(ctx, op, &acc, &regs[r as usize * chunk + l]);
            acc = v;
        }
        regs[d + l] = acc;
    }
}

// ---------------------------------------------------------------------------
// f64: chunked vector kernels.
// ---------------------------------------------------------------------------

/// One scalar `f64` op — the per-lane function the chunked loops repeat.
#[inline(always)]
fn f64_op(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Mul => x * y,
        BinOp::Max => x.max(y),
        // Matches `min_nz` under `F64Arith` (`to_f64` is the identity).
        BinOp::MinNz => {
            if x == 0.0 {
                y
            } else if y == 0.0 {
                x
            } else {
                x.min(y)
            }
        }
    }
}

/// Dispatches `op` once into a monomorphic expansion of `$body`, with
/// `$f` bound to the op's closure. Hoisting the match out of the lane
/// loops is what lets each loop body vectorize: matched per lane, the
/// compiler keeps a branch in the hot path and gives up on the chunked
/// form. (A macro rather than a higher-order function: a `fn` pointer
/// argument would put an indirect call back into the loop.)
macro_rules! f64_dispatch {
    ($op:expr, $f:ident => $body:expr) => {
        match $op {
            BinOp::Add => {
                let $f = |x: f64, y: f64| x + y;
                $body
            }
            BinOp::Mul => {
                let $f = |x: f64, y: f64| x * y;
                $body
            }
            BinOp::Max => {
                let $f = f64::max;
                $body
            }
            BinOp::MinNz => {
                let $f = |x: f64, y: f64| f64_op(BinOp::MinNz, x, y);
                $body
            }
        }
    };
}

/// `regs[d..][l] = f(regs[a..][l], regs[b..][l])` in `LANE_WIDTH` chunks
/// with a scalar tail. The local arrays decouple the loads from the
/// store, so the chunk body vectorizes without runtime alias checks
/// (rows are either identical or disjoint, and lanes are independent).
#[inline(always)]
fn f64_map2(
    regs: &mut [f64],
    d: usize,
    a: usize,
    b: usize,
    n: usize,
    f: impl Fn(f64, f64) -> f64 + Copy,
) {
    const W: usize = LANE_WIDTH;
    let mut l = 0;
    while l + W <= n {
        let mut xa = [0.0; W];
        let mut xb = [0.0; W];
        xa.copy_from_slice(&regs[a + l..a + l + W]);
        xb.copy_from_slice(&regs[b + l..b + l + W]);
        let mut out = [0.0; W];
        for i in 0..W {
            out[i] = f(xa[i], xb[i]);
        }
        regs[d + l..d + l + W].copy_from_slice(&out);
        l += W;
    }
    while l < n {
        regs[d + l] = f(regs[a + l], regs[b + l]);
        l += 1;
    }
}

impl KernelSet for F64Arith {
    const VECTORIZED: bool = true;

    fn bin_rows(&mut self, op: BinOp, regs: &mut [f64], d: usize, a: usize, b: usize, n: usize) {
        f64_dispatch!(op, f => f64_map2(regs, d, a, b, n, f));
    }

    fn mul_acc_rows(
        &mut self,
        op: BinOp,
        regs: &mut [f64],
        d: usize,
        acc: usize,
        a: usize,
        b: usize,
        n: usize,
    ) {
        f64_dispatch!(op, f => {
            const W: usize = LANE_WIDTH;
            let mut l = 0;
            while l + W <= n {
                let mut xacc = [0.0; W];
                let mut xa = [0.0; W];
                let mut xb = [0.0; W];
                xacc.copy_from_slice(&regs[acc + l..acc + l + W]);
                xa.copy_from_slice(&regs[a + l..a + l + W]);
                xb.copy_from_slice(&regs[b + l..b + l + W]);
                let mut out = [0.0; W];
                for i in 0..W {
                    // Two roundings on purpose: contracting into an FMA
                    // would change bits versus the unfused stream.
                    let p = xa[i] * xb[i];
                    out[i] = f(xacc[i], p);
                }
                regs[d + l..d + l + W].copy_from_slice(&out);
                l += W;
            }
            while l < n {
                let p = regs[a + l] * regs[b + l];
                regs[d + l] = f(regs[acc + l], p);
                l += 1;
            }
        });
    }

    fn reduce_rows(
        &mut self,
        op: BinOp,
        regs: &mut [f64],
        chunk: usize,
        d: usize,
        first: usize,
        rest: &[u32],
        n: usize,
    ) {
        f64_dispatch!(op, f => {
            const W: usize = LANE_WIDTH;
            let mut l = 0;
            while l + W <= n {
                // The fold partials live in `acc` — vector registers —
                // for the whole operand list: one destination write per
                // chunk instead of one per chain step.
                let mut acc = [0.0; W];
                acc.copy_from_slice(&regs[first + l..first + l + W]);
                for &r in rest {
                    let ro = r as usize * chunk + l;
                    let mut x = [0.0; W];
                    x.copy_from_slice(&regs[ro..ro + W]);
                    for i in 0..W {
                        acc[i] = f(acc[i], x[i]);
                    }
                }
                regs[d + l..d + l + W].copy_from_slice(&acc);
                l += W;
            }
            while l < n {
                let mut acc = regs[first + l];
                for &r in rest {
                    acc = f(acc, regs[r as usize * chunk + l]);
                }
                regs[d + l] = acc;
                l += 1;
            }
        });
    }
}

// ---------------------------------------------------------------------------
// fixed:I.F: native-width fast path.
// ---------------------------------------------------------------------------

/// Precomputed constants for the narrow-format fixed-point fast path:
/// formats with `I+F <= 63` whose exact products fit a native `u128`
/// multiply, skipping the `U256` widening path and the per-op format
/// checks while reproducing [`problp_num::Fixed`]'s rounding, saturation
/// and flag rules exactly.
#[derive(Clone, Copy)]
struct FixedFastPath {
    format: problp_num::FixedFormat,
    max_raw: u128,
    frac: u32,
    low_mask: u128,
    half: u128,
    truncate: bool,
}

impl FixedFastPath {
    fn new(ctx: &FixedArith) -> Option<Self> {
        let format = ctx.format();
        // `raw <= max_raw < 2^63` keeps `a*b < 2^126` (and `+half < 2^127`)
        // exactly representable in u128 — wider formats keep the scalar path.
        if format.total_bits() > 63 {
            return None;
        }
        let frac = format.frac_bits();
        Some(FixedFastPath {
            format,
            max_raw: format.max_raw(),
            frac,
            low_mask: if frac == 0 { 0 } else { (1u128 << frac) - 1 },
            half: if frac == 0 { 0 } else { 1u128 << (frac - 1) },
            truncate: ctx.rounding() == FixedRounding::Truncate,
        })
    }

    /// Rebuilds a lane value from its raw encoding. Every fast-path
    /// result saturates to `max_raw`, so the width check cannot fail.
    #[inline(always)]
    fn lane(&self, raw: u128) -> Fixed {
        Fixed::from_raw(raw, self.format).expect("fast-path results stay in format")
    }

    /// `Fixed::add`: exact sum, saturating with `overflow` past the format.
    #[inline(always)]
    fn add(&self, x: u128, y: u128, flags: &mut Flags) -> u128 {
        let sum = x + y;
        if sum > self.max_raw {
            flags.overflow = true;
            self.max_raw
        } else {
            sum
        }
    }

    /// `Fixed::mul_with`: full product, `inexact` on any dropped low bits,
    /// half-up or truncating shift, saturating with `overflow`.
    #[inline(always)]
    fn mul(&self, x: u128, y: u128, flags: &mut Flags) -> u128 {
        let p = x * y;
        flags.inexact |= p & self.low_mask != 0;
        let rounded = if self.frac == 0 {
            p
        } else if self.truncate {
            p >> self.frac
        } else {
            (p + self.half) >> self.frac
        };
        if rounded > self.max_raw {
            flags.overflow = true;
            self.max_raw
        } else {
            rounded
        }
    }

    /// One raw-encoding op, matching [`apply_op`] on `FixedArith` bit for
    /// bit (`raw == 0` iff the value converts to `0.0`).
    #[inline(always)]
    fn op(&self, op: BinOp, x: u128, y: u128, flags: &mut Flags) -> u128 {
        match op {
            BinOp::Add => self.add(x, y, flags),
            BinOp::Mul => self.mul(x, y, flags),
            BinOp::Max => x.max(y),
            BinOp::MinNz => {
                if x == 0 {
                    y
                } else if y == 0 {
                    x
                } else {
                    x.min(y)
                }
            }
        }
    }
}

impl KernelSet for FixedArith {
    const VECTORIZED: bool = true;

    fn bin_rows(&mut self, op: BinOp, regs: &mut [Fixed], d: usize, a: usize, b: usize, n: usize) {
        let Some(fast) = FixedFastPath::new(self) else {
            return scalar_bin_rows(self, op, regs, d, a, b, n);
        };
        let mut flags = Flags::new();
        for l in 0..n {
            let v = fast.op(op, regs[a + l].raw(), regs[b + l].raw(), &mut flags);
            regs[d + l] = fast.lane(v);
        }
        self.merge_flags(flags);
    }

    fn mul_acc_rows(
        &mut self,
        op: BinOp,
        regs: &mut [Fixed],
        d: usize,
        acc: usize,
        a: usize,
        b: usize,
        n: usize,
    ) {
        let Some(fast) = FixedFastPath::new(self) else {
            return scalar_mul_acc_rows(self, op, regs, d, acc, a, b, n);
        };
        let mut flags = Flags::new();
        for l in 0..n {
            let p = fast.mul(regs[a + l].raw(), regs[b + l].raw(), &mut flags);
            let v = fast.op(op, regs[acc + l].raw(), p, &mut flags);
            regs[d + l] = fast.lane(v);
        }
        self.merge_flags(flags);
    }

    fn reduce_rows(
        &mut self,
        op: BinOp,
        regs: &mut [Fixed],
        chunk: usize,
        d: usize,
        first: usize,
        rest: &[u32],
        n: usize,
    ) {
        let Some(fast) = FixedFastPath::new(self) else {
            return scalar_reduce_rows(self, op, regs, chunk, d, first, rest, n);
        };
        let mut flags = Flags::new();
        for l in 0..n {
            let mut acc = regs[first + l].raw();
            for &r in rest {
                acc = fast.op(op, acc, regs[r as usize * chunk + l].raw(), &mut flags);
            }
            regs[d + l] = fast.lane(acc);
        }
        self.merge_flags(flags);
    }
}

// float:E.M — software-emulated rounding stays on the scalar reference
// loops (the defaulted methods); the `simd`/`fused` kernels then degrade
// to the fused dispatch win only, still bit-identical by construction.
impl KernelSet for FloatArith {}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_num::FixedFormat;

    #[test]
    fn kernel_kind_names_round_trip() {
        for k in KernelKind::ALL {
            assert_eq!(KernelKind::parse(k.name()), Some(k));
        }
        assert_eq!(KernelKind::parse("turbo"), None);
    }

    /// The fast path replicates `Fixed::mul_with` exactly: rounding,
    /// inexact bits and saturation, in both rounding modes.
    #[test]
    fn fixed_fast_path_matches_fixed_ops_bit_for_bit() {
        for rounding in [FixedRounding::HalfUp, FixedRounding::Truncate] {
            let format = FixedFormat::new(2, 6).unwrap();
            let ctx = FixedArith::with_rounding(format, rounding);
            let fast = FixedFastPath::new(&ctx).unwrap();
            for x in 0..=format.max_raw() {
                for y in (0..=format.max_raw()).step_by(7) {
                    let fx = Fixed::from_raw(x, format).unwrap();
                    let fy = Fixed::from_raw(y, format).unwrap();
                    let mut want_flags = Flags::new();
                    let want = fx.mul_with(&fy, rounding, &mut want_flags);
                    let mut got_flags = Flags::new();
                    let got = fast.mul(x, y, &mut got_flags);
                    assert_eq!(want.raw(), got, "mul {x}x{y} {rounding:?}");
                    assert_eq!(want_flags, got_flags, "mul flags {x}x{y}");

                    let mut want_flags = Flags::new();
                    let want = fx.add(&fy, &mut want_flags);
                    let mut got_flags = Flags::new();
                    let got = fast.add(x, y, &mut got_flags);
                    assert_eq!(want.raw(), got, "add {x}+{y}");
                    assert_eq!(want_flags, got_flags, "add flags {x}+{y}");
                }
            }
        }
    }

    #[test]
    fn wide_formats_skip_the_fast_path() {
        let ctx = FixedArith::new(FixedFormat::new(2, 62).unwrap());
        assert!(FixedFastPath::new(&ctx).is_none());
        let ctx = FixedArith::new(FixedFormat::new(1, 62).unwrap());
        assert!(FixedFastPath::new(&ctx).is_some());
    }
}
