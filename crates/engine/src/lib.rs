//! # problp-engine — batched arithmetic-circuit execution for ProbLP
//!
//! The scalar evaluator in `problp-ac` walks the circuit arena per
//! evidence instance, allocating a full per-node value vector each time —
//! fine for the analyses, far too slow for bulk workloads (test-set error
//! measurement, throughput serving). This crate is the execution
//! subsystem that amortises the traversal:
//!
//! 1. [`Tape::compile`] turns an [`problp_ac::AcGraph`] into a flat,
//!    register-allocated instruction tape: the `optimize` pass elides
//!    dead and duplicate nodes, parameter constants are hoisted into
//!    pinned registers, indicator leaves resolve to `(variable, state)`
//!    slots, and n-ary operators lower to binary accumulator chains in
//!    the scalar evaluator's exact fold order — so tape results are
//!    **bit-identical** to [`problp_ac::AcGraph::evaluate_nodes`] (the
//!    property tests in `tests/proptests.rs` pin this for all three
//!    [`problp_ac::Semiring`]s).
//! 2. [`Engine`] binds a tape to a number system
//!    ([`problp_num::Arith`]), pre-converting the constants once, and
//!    evaluates whole [`problp_bayes::EvidenceBatch`]es per tape sweep:
//!    values live in a structure-of-arrays register file laid out
//!    `[register][lane]`, lanes are sharded across `std::thread`
//!    workers, and sticky [`problp_num::Flags`] are captured per batch
//!    ([`Engine::evaluate_batch`]) or per lane
//!    ([`Engine::evaluate_batch_flagged`]).
//!
//! 3. Beyond marginals, the engine serves the paper's other two query
//!    kinds in bulk ([`query`], dispatched by [`Engine::evaluate_query`]
//!    on a [`problp_bayes::BatchQuery`] descriptor): **MPE** decoding
//!    via max-product argmax traceback on a *full-values* tape
//!    ([`Tape::compile_full`]: no register reuse, one stable slot per
//!    node) with exact verification, and **conditional** posteriors as
//!    joint/marginal lane pairs. The full-values mode also gives the
//!    max/min value analyses of `problp-bounds` per-node vectors that
//!    are bit-identical to the scalar walk.
//!
//! 4. Batch sweeps dispatch through one of three evaluator cores
//!    ([`kernels`], selected by [`Engine::with_kernel`]): the reference
//!    **scalar** per-instruction loops, **SIMD** lane-chunked row
//!    kernels ([`KernelSet`], [`LANE_WIDTH`]-wide chunks, no
//!    intrinsics), and the **fused** superinstruction stream
//!    ([`Tape::fuse`] collapses accumulator chains to
//!    [`FusedInstr::Reduce`] and multiply-into-consumer pairs to
//!    [`FusedInstr::MulAcc`] — same fold order, two roundings, never an
//!    FMA). Every kernel is pinned bit-identical to the scalar walk by
//!    `tests/kernels.rs` and by the `problp-conformance` differential
//!    matrix.
//!
//! See the module docs of [`tape`] (tape layout, tape modes), [`fuse`]
//! (the peephole rules and their bit-identity argument), [`kernels`]
//! (the dispatch model and the per-arithmetic vectorization table),
//! [`query`] (MPE traceback, conditional lane pairs) and the engine
//! source (`engine.rs`, lane sharding) for the representation details,
//! and `problp-bench`'s `engine_throughput` bench plus the
//! `reproduce kernels` study for the measured speedups over the scalar
//! tree-walk.
//!
//! # Examples
//!
//! ```
//! use problp_ac::{compile, Semiring};
//! use problp_bayes::{networks, Evidence, EvidenceBatch};
//! use problp_engine::Engine;
//! use problp_num::{FixedArith, FixedFormat};
//!
//! let net = networks::sprinkler();
//! let ac = compile(&net)?;
//!
//! // A thousand instances per sweep instead of a thousand tree-walks.
//! let mut batch = EvidenceBatch::new(net.var_count());
//! for _ in 0..1000 {
//!     batch.push(&Evidence::empty(net.var_count()));
//! }
//!
//! let lp = FixedArith::new(FixedFormat::new(1, 12)?);
//! let engine = Engine::from_graph(&ac, Semiring::SumProduct, lp)?;
//! let result = engine.evaluate_batch(&batch)?;
//! assert_eq!(result.values.len(), 1000);
//! assert!(!result.flags.range_violation());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
pub mod fuse;
pub mod kernels;
pub mod query;
pub mod serve;
pub mod tape;
pub mod verify;

pub use engine::{BatchResult, Engine, FlaggedBatchResult};
pub use error::EngineError;
pub use fuse::{BinOp, FuseStats, FusedInstr, FusedTape};
pub use kernels::{KernelKind, KernelSet, LANE_WIDTH};
pub use query::{ConditionalBatchResult, ConditionalLaneStatus, MpeBatchResult, QueryBatchResult};
pub use serve::{
    lane_answer_eq, CircuitPool, Gateway, GatewayConfig, LaneResult, ModelVersion, Priority,
    ServeConfig, ServeError, ServeRequest, ServeResponse, Server, ServerStats, Ticket,
};
pub use tape::{Instr, Tape, TapeMode, TapeStats};
pub use verify::VerifyError;
