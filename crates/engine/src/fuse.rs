//! The tape peephole fuser: instruction stream → superinstructions.
//!
//! # Why fuse
//!
//! [`crate::Tape`] lowers n-ary sums and products to left-to-right binary
//! accumulator chains, emitted **contiguously** — a k-ary node is k−1
//! adjacent instructions accumulating into one destination register. The
//! batch evaluator pays one dispatch plus one full destination-row
//! write-back per step. [`Tape::fuse`] collapses those shapes back into
//! superinstructions so the evaluator does one dispatch (and one
//! destination write) per *node* instead of per *edge*:
//!
//! ```text
//!   Mul  t  ← a, b                        MulAcc d ← acc, a, b
//!   Add  d  ← acc, t        ====>           (d = acc + a·b; t elided)
//!
//!   Add  d  ← c0, c1
//!   Add  d  ← d,  c2        ====>         Reduce d ← c0, [c1, c2, c3]
//!   Add  d  ← d,  c3                        (one fold, one write-back)
//! ```
//!
//! # Bit-identity
//!
//! Fusion never reorders or re-associates arithmetic: a [`FusedInstr::Reduce`]
//! performs exactly the unfused chain's left-to-right fold, and a
//! [`FusedInstr::MulAcc`] keeps the multiply and the accumulate as two
//! separate roundings (it is **not** an FMA — contracting them would
//! change `f64` bits). The only rewrite is *where intermediate values
//! live*: chain partials stay in a local accumulator instead of being
//! round-tripped through the destination row (exact for every `Arith` —
//! values are plain bit patterns), and a fused multiply's scratch
//! register is elided only when provably dead. `tests/kernels.rs`
//! proptests pin fused == unfused bit for bit across all three semirings
//! and arithmetics.
//!
//! # Mode awareness
//!
//! In [`TapeMode::Full`] every register is an *observable* per-node
//! output (the MPE traceback and the bounds analyses read them all), so
//! the fuser only applies chain collapse there — every register keeps
//! its final value. `MulAcc`, which elides a scratch register entirely,
//! is restricted to [`TapeMode::Compact`] tapes where liveness is known.

use crate::tape::{Instr, Tape, TapeMode};

/// The elementwise operation a fused instruction applies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Sum-product addition.
    Add,
    /// Product (all semirings).
    Mul,
    /// Max-product maximum.
    Max,
    /// Skip-zero minimum (min-value analysis, paper §3.1.4).
    MinNz,
}

impl BinOp {
    /// Decodes a binary tape instruction into `(op, dst, lhs, rhs)`;
    /// `None` for [`Instr::LoadIndicator`].
    pub(crate) fn decode(instr: Instr) -> Option<(BinOp, u32, u32, u32)> {
        match instr {
            Instr::LoadIndicator { .. } => None,
            Instr::Add { dst, lhs, rhs } => Some((BinOp::Add, dst, lhs, rhs)),
            Instr::Mul { dst, lhs, rhs } => Some((BinOp::Mul, dst, lhs, rhs)),
            Instr::Max { dst, lhs, rhs } => Some((BinOp::Max, dst, lhs, rhs)),
            Instr::MinNz { dst, lhs, rhs } => Some((BinOp::MinNz, dst, lhs, rhs)),
        }
    }
}

/// One fused superinstruction. Register semantics match [`Instr`];
/// `Reduce` operand lists live in the owning [`FusedTape`]'s side table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FusedInstr {
    /// `reg[dst] = indicator(slot)` — unchanged from [`Instr::LoadIndicator`].
    LoadIndicator {
        /// Destination register.
        dst: u32,
        /// Index into the tape's indicator slot table.
        slot: u32,
    },
    /// `reg[dst] = op(reg[lhs], reg[rhs])`: an unfused binary instruction.
    Bin {
        /// The elementwise operation.
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
    /// `reg[dst] = op(reg[acc], reg[a] * reg[b])`: a multiply fused into
    /// its sole consumer. The multiply and the outer op are two separate
    /// roundings (never an FMA); the original multiply's destination
    /// register is elided.
    MulAcc {
        /// The outer (accumulating) operation.
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// Accumulator operand register.
        acc: u32,
        /// Multiplicand register.
        a: u32,
        /// Multiplier register.
        b: u32,
    },
    /// `reg[dst] = fold(op, reg[first], operands[lo..hi])`: a collapsed
    /// k-ary accumulator chain, folding left to right in the unfused
    /// chain's exact order. `lo..hi` indexes [`FusedTape::operands`].
    Reduce {
        /// The fold operation.
        op: BinOp,
        /// Destination register.
        dst: u32,
        /// First (leftmost) operand register.
        first: u32,
        /// Start of the remaining operand registers in the side table.
        lo: u32,
        /// End (exclusive) of the operand range.
        hi: u32,
    },
}

/// Aggregate statistics of one fusion pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FuseStats {
    /// Instructions on the unfused source tape.
    pub source_instrs: usize,
    /// Superinstructions after fusion.
    pub fused_instrs: usize,
    /// `MulAcc` superinstructions emitted (one elided scratch register
    /// write each).
    pub mul_accs: usize,
    /// `Reduce` superinstructions emitted.
    pub reduces: usize,
}

impl std::fmt::Display for FuseStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} instrs -> {} fused ({} mulacc, {} reduce)",
            self.source_instrs, self.fused_instrs, self.mul_accs, self.reduces
        )
    }
}

/// A fused superinstruction stream over the same register file, root and
/// indicator slots as the [`Tape`] it was derived from.
///
/// Built by [`Tape::fuse`]; evaluated by
/// [`crate::Engine::with_kernel`]`(`[`crate::KernelKind::Fused`]`)`.
#[derive(Clone, Debug)]
pub struct FusedTape {
    instrs: Vec<FusedInstr>,
    /// Flattened `Reduce` operand registers, indexed by `lo..hi`.
    operands: Vec<u32>,
    stats: FuseStats,
}

impl FusedTape {
    /// The fused instruction stream.
    pub fn instrs(&self) -> &[FusedInstr] {
        &self.instrs
    }

    /// The operand registers of a [`FusedInstr::Reduce`] range.
    #[inline]
    pub fn operands(&self, lo: u32, hi: u32) -> &[u32] {
        &self.operands[lo as usize..hi as usize]
    }

    /// Statistics of the fusion pass that built this tape.
    pub fn stats(&self) -> FuseStats {
        self.stats
    }

    /// The whole flattened operand side table (the verifier bounds-checks
    /// `Reduce` ranges against it before slicing).
    pub(crate) fn operand_table(&self) -> &[u32] {
        &self.operands
    }

    /// Mutable access to the raw superinstruction stream. Exists so that
    /// verifier mutation tests can corrupt a stream on purpose; use
    /// [`Tape::verify_fused`] to re-check. Not a stable API.
    #[doc(hidden)]
    pub fn raw_instrs_mut(&mut self) -> &mut Vec<FusedInstr> {
        &mut self.instrs
    }

    /// Mutable access to the raw `Reduce` operand side table. Exists so
    /// that verifier mutation tests can corrupt fold order on purpose;
    /// use [`Tape::verify_fused`] to re-check. Not a stable API.
    #[doc(hidden)]
    pub fn raw_operands_mut(&mut self) -> &mut Vec<u32> {
        &mut self.operands
    }
}

impl std::fmt::Display for FusedTape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FusedTape({})", self.stats)
    }
}

/// Per-register occurrence table: at which instruction indices a register
/// is read or written, in stream order (reads of an index precede its
/// write, matching evaluation order).
struct RegEvents {
    /// `events[reg]` = ordered `(instr index, is_read)` pairs.
    events: Vec<Vec<(u32, bool)>>,
}

impl RegEvents {
    fn build(instrs: &[Instr], num_regs: usize) -> Self {
        let mut events: Vec<Vec<(u32, bool)>> = vec![Vec::new(); num_regs];
        for (i, &instr) in instrs.iter().enumerate() {
            let i = i as u32;
            match instr {
                Instr::LoadIndicator { dst, .. } => events[dst as usize].push((i, false)),
                Instr::Add { dst, lhs, rhs }
                | Instr::Mul { dst, lhs, rhs }
                | Instr::Max { dst, lhs, rhs }
                | Instr::MinNz { dst, lhs, rhs } => {
                    events[lhs as usize].push((i, true));
                    events[rhs as usize].push((i, true));
                    events[dst as usize].push((i, false));
                }
            }
        }
        RegEvents { events }
    }

    /// Whether `reg`'s value as of instruction `after` is dead: never
    /// read again before its next write (root registers are never dead —
    /// the caller excludes them).
    fn dead_after(&self, reg: u32, after: u32) -> bool {
        for &(i, is_read) in &self.events[reg as usize] {
            if i > after {
                // First occurrence past `after` settles it: a write kills
                // the old value, a read keeps it live.
                return !is_read;
            }
        }
        true
    }
}

/// Extends `out`/`operands` with the maximal accumulator run continuing
/// `op` into `dst` starting at `instrs[from]`, returning the index past
/// the run. Emits nothing when the run is empty.
fn take_chain(
    instrs: &[Instr],
    from: usize,
    op: BinOp,
    dst: u32,
    out: &mut Vec<FusedInstr>,
    operands: &mut Vec<u32>,
    stats: &mut FuseStats,
) -> usize {
    let lo = operands.len() as u32;
    let mut j = from;
    while j < instrs.len() {
        match BinOp::decode(instrs[j]) {
            // A chain step accumulates the previous partial (`lhs == dst`)
            // with a register that is not the destination row (an aliased
            // rhs would observe the stale pre-chain value once the fold
            // keeps partials in a local accumulator).
            Some((o, d, l, r)) if o == op && d == dst && l == dst && r != dst => {
                operands.push(r);
                j += 1;
            }
            _ => break,
        }
    }
    let hi = operands.len() as u32;
    if hi == lo {
        return from;
    }
    // The run's fold starts from the destination's current value (it was
    // written by the instruction the caller already emitted).
    out.push(FusedInstr::Reduce {
        op,
        dst,
        first: dst,
        lo,
        hi,
    });
    stats.reduces += 1;
    j
}

impl Tape {
    /// Runs the peephole fusion pass, producing a superinstruction stream
    /// that evaluates bit-identically to this tape over the same register
    /// file (see the [module docs](crate::fuse) for the rewrite rules and
    /// the mode restrictions).
    pub fn fuse(&self) -> FusedTape {
        let instrs = self.instrs();
        let mut stats = FuseStats {
            source_instrs: instrs.len(),
            ..FuseStats::default()
        };
        let mut out: Vec<FusedInstr> = Vec::with_capacity(instrs.len());
        let mut operands: Vec<u32> = Vec::new();
        // MulAcc elides a scratch register, which is only legal where
        // registers are not observable per-node outputs.
        let mul_acc_ok = self.mode() == TapeMode::Compact;
        let events = RegEvents::build(instrs, self.num_regs());

        let mut i = 0;
        while i < instrs.len() {
            let Some((op, dst, lhs, rhs)) = BinOp::decode(instrs[i]) else {
                let Instr::LoadIndicator { dst, slot } = instrs[i] else {
                    unreachable!("decode returns None only for LoadIndicator")
                };
                out.push(FusedInstr::LoadIndicator { dst, slot });
                i += 1;
                continue;
            };

            // Rule B — MulAcc: a multiply whose result feeds the very next
            // instruction's rhs and is otherwise dead. `clhs != dst`
            // keeps the accumulator expressible; `cdst == dst` needs no
            // deadness proof (the fused op overwrites the scratch register
            // with the same value the unfused stream left there).
            if mul_acc_ok && op == BinOp::Mul && i + 1 < instrs.len() {
                if let Some((cop, cdst, clhs, crhs)) = BinOp::decode(instrs[i + 1]) {
                    let scratch_dead = cdst == dst
                        || (dst != self.root_reg() && events.dead_after(dst, i as u32 + 1));
                    if crhs == dst && clhs != dst && scratch_dead {
                        out.push(FusedInstr::MulAcc {
                            op: cop,
                            dst: cdst,
                            acc: clhs,
                            a: lhs,
                            b: rhs,
                        });
                        stats.mul_accs += 1;
                        // The consumer may have been the head of a longer
                        // chain; collapse the remaining steps.
                        i = take_chain(
                            instrs,
                            i + 2,
                            cop,
                            cdst,
                            &mut out,
                            &mut operands,
                            &mut stats,
                        );
                        continue;
                    }
                }
            }

            // Rule A — Reduce: collapse the maximal accumulator chain
            // headed by this instruction.
            let before = out.len();
            let j = take_chain(instrs, i + 1, op, dst, &mut out, &mut operands, &mut stats);
            if out.len() > before {
                // Merge the head into the emitted Reduce: its fold starts
                // from `lhs` and `rhs` joins the operand list front.
                let Some(FusedInstr::Reduce { first, lo, .. }) = out.last_mut() else {
                    unreachable!("take_chain emits a Reduce when it advances")
                };
                *first = lhs;
                // `rhs` must become the first folded operand. The side
                // table slice for this Reduce starts at `lo`; shift it.
                operands.insert(*lo as usize, rhs);
                let Some(FusedInstr::Reduce { hi, .. }) = out.last_mut() else {
                    unreachable!("just matched")
                };
                *hi += 1;
                i = j;
                continue;
            }
            out.push(FusedInstr::Bin { op, dst, lhs, rhs });
            i += 1;
        }

        stats.fused_instrs = out.len();
        let fused = FusedTape {
            instrs: out,
            operands,
            stats,
        };
        // Debug builds prove the fused stream equivalent to its source
        // (symbolic execution, fold order included) before handing it out.
        #[cfg(debug_assertions)]
        if let Err(e) = self.verify_fused(&fused) {
            panic!("fuse produced an ill-formed stream: {e}");
        }
        fused
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::{AcGraph, Semiring};
    use problp_bayes::VarId;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    /// λ_{a0}·0.3 + λ_{a1}·0.7 — two binary products into a binary sum.
    fn tiny() -> AcGraph {
        let mut g = AcGraph::new(vec![2]);
        let a0 = g.indicator(v(0), 0).unwrap();
        let a1 = g.indicator(v(0), 1).unwrap();
        let t0 = g.param(0.3).unwrap();
        let t1 = g.param(0.7).unwrap();
        let p0 = g.product(vec![a0, t0]).unwrap();
        let p1 = g.product(vec![a1, t1]).unwrap();
        let root = g.sum(vec![p0, p1]).unwrap();
        g.set_root(root);
        g
    }

    /// A 4-ary sum of binary products: chains worth collapsing.
    fn chained() -> AcGraph {
        let mut g = AcGraph::new(vec![4]);
        let mut prods = Vec::new();
        for s in 0..4 {
            let ind = g.indicator(v(0), s).unwrap();
            let p = g.param(0.1 + s as f64 * 0.2).unwrap();
            prods.push(g.product(vec![ind, p]).unwrap());
        }
        let root = g.sum(prods).unwrap();
        g.set_root(root);
        g
    }

    #[test]
    fn tiny_circuit_fuses_the_last_multiply() {
        let tape = Tape::compile(&tiny(), Semiring::SumProduct).unwrap();
        let fused = tape.fuse();
        // 2 loads + 2 muls + 1 add -> 2 loads + 1 mul + 1 mulacc.
        assert_eq!(fused.stats().source_instrs, 5);
        assert_eq!(fused.stats().mul_accs, 1);
        assert_eq!(fused.stats().fused_instrs, 4);
        assert!(fused
            .instrs()
            .iter()
            .any(|i| matches!(i, FusedInstr::MulAcc { op: BinOp::Add, .. })));
    }

    #[test]
    fn chains_collapse_to_reduce() {
        let tape = Tape::compile(&chained(), Semiring::SumProduct).unwrap();
        let fused = tape.fuse();
        let reduce = fused
            .instrs()
            .iter()
            .find_map(|i| match *i {
                FusedInstr::Reduce { op, lo, hi, .. } => Some((op, hi - lo)),
                _ => None,
            })
            .expect("the 4-ary sum collapses");
        assert_eq!(reduce.0, BinOp::Add);
        assert!(fused.stats().fused_instrs < fused.stats().source_instrs);
    }

    #[test]
    fn full_mode_never_elides_registers() {
        let tape = Tape::compile_full(&tiny(), Semiring::SumProduct).unwrap();
        let fused = tape.fuse();
        assert_eq!(fused.stats().mul_accs, 0, "every register is observable");
        // Every destination the unfused tape writes is still written.
        let mut written: Vec<bool> = vec![false; tape.num_regs()];
        for instr in fused.instrs() {
            match *instr {
                FusedInstr::LoadIndicator { dst, .. }
                | FusedInstr::Bin { dst, .. }
                | FusedInstr::MulAcc { dst, .. }
                | FusedInstr::Reduce { dst, .. } => written[dst as usize] = true,
            }
        }
        for instr in tape.instrs() {
            let dst = match *instr {
                Instr::LoadIndicator { dst, .. }
                | Instr::Add { dst, .. }
                | Instr::Mul { dst, .. }
                | Instr::Max { dst, .. }
                | Instr::MinNz { dst, .. } => dst,
            };
            assert!(written[dst as usize], "register {dst} lost its write");
        }
    }

    #[test]
    fn semiring_ops_round_trip_through_fusion() {
        for (semiring, op) in [
            (Semiring::SumProduct, BinOp::Add),
            (Semiring::MaxProduct, BinOp::Max),
            (Semiring::MinProduct, BinOp::MinNz),
        ] {
            let tape = Tape::compile(&chained(), semiring).unwrap();
            let fused = tape.fuse();
            let has_op = fused.instrs().iter().any(|i| match *i {
                FusedInstr::Bin { op: o, .. }
                | FusedInstr::MulAcc { op: o, .. }
                | FusedInstr::Reduce { op: o, .. } => o == op,
                FusedInstr::LoadIndicator { .. } => false,
            });
            assert!(has_op, "{semiring:?} lowers sums to {op:?}");
        }
    }
}
