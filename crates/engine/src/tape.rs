//! The tape compiler: `AcGraph` → flat, register-allocated instruction
//! stream.
//!
//! # Tape layout
//!
//! Compilation first runs the circuit through [`problp_ac::optimize`]
//! (dead-node elimination, constant folding, common-subexpression
//! sharing: every transformation is value-preserving, bit for bit, on the
//! non-negative values ACs compute), then linearizes the surviving DAG
//! into one contiguous `Vec<Instr>` of *binary* three-address operations:
//!
//! * n-ary sums and products are lowered to left-to-right accumulator
//!   chains — exactly the fold order of the scalar tree-walk in
//!   `problp-ac`, so tape results are bit-identical to
//!   [`AcGraph::evaluate_nodes`];
//! * the [`Semiring`] is baked in at compile time: sum nodes lower to
//!   [`Instr::Add`], [`Instr::Max`] or [`Instr::MinNz`];
//! * parameter leaves are hoisted out of the instruction stream entirely:
//!   each distinct constant gets one pinned register (`0..param_count`),
//!   pre-filled once per evaluation block instead of re-converted per
//!   node visit;
//! * indicator leaves become [`Instr::LoadIndicator`] reads of a resolved
//!   `(variable, state)` slot, so evaluation never touches a hash map.
//!
//! Registers above the pinned params are allocated with a last-use free
//! list, so the register file stays far smaller than the node count —
//! this is what makes the structure-of-arrays batch layout of
//! [`crate::Engine`] fit in cache.
//!
//! # Tape modes
//!
//! [`Tape::compile`] produces the **compact** mode described above: the
//! throughput configuration, where only the root value survives a sweep.
//! [`Tape::compile_full`] produces the **full-values** mode instead: the
//! optimisation pass and the register allocator are both skipped, and
//! register `i` simply holds source node `i`'s value after a sweep —
//! exactly the per-node value vector of
//! [`problp_ac::AcGraph::evaluate_nodes`], bit for bit. The full mode is
//! what lets the max/min value analyses of `problp-bounds` and the MPE
//! argmax traceback run on the engine; see [`TapeMode`].

use problp_ac::{optimize, AcError, AcGraph, AcNode, Semiring};
use problp_bayes::VarId;

use crate::error::EngineError;

/// How a tape assigns output registers to circuit nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TapeMode {
    /// Registers are reused once a node's value is dead ([`Tape::compile`]).
    /// Smallest register file, highest batch throughput; only the root
    /// value is addressable after a sweep.
    #[default]
    Compact,
    /// Every source node keeps a stable output slot: register `i` holds
    /// node `i`'s value after a sweep ([`Tape::compile_full`]). Required
    /// by per-node consumers — the max/min value analyses of
    /// `problp-bounds` and the MPE argmax traceback of
    /// [`crate::Engine::mpe_batch`].
    Full,
}

/// One tape instruction. `dst`, `lhs` and `rhs` are register indices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// `reg[dst] = indicator(slot)`: 1 unless the lane's evidence
    /// contradicts the slot's `(variable, state)`.
    LoadIndicator {
        /// Destination register.
        dst: u32,
        /// Index into the tape's indicator slot table.
        slot: u32,
    },
    /// `reg[dst] = reg[lhs] + reg[rhs]`.
    Add {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
    /// `reg[dst] = reg[lhs] * reg[rhs]`.
    Mul {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
    /// `reg[dst] = max(reg[lhs], reg[rhs])` (max-product sums).
    Max {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
    /// `reg[dst] = min over non-zero of (reg[lhs], reg[rhs])`, zero only
    /// if both are zero (min-value-analysis sums, paper §3.1.4).
    MinNz {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        lhs: u32,
        /// Right operand register.
        rhs: u32,
    },
}

/// Aggregate statistics of a compiled tape.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TapeStats {
    /// Nodes in the source circuit (before optimisation).
    pub source_nodes: usize,
    /// Nodes surviving optimisation (dead/duplicate nodes elided).
    pub live_nodes: usize,
    /// Instructions on the tape.
    pub instrs: usize,
    /// Total registers (pinned parameter registers included).
    pub registers: usize,
    /// Distinct parameter constants (pinned registers).
    pub params: usize,
    /// Distinct indicator slots.
    pub indicators: usize,
}

impl std::fmt::Display for TapeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} instrs over {} regs ({} params, {} indicators; {} of {} nodes live)",
            self.instrs,
            self.registers,
            self.params,
            self.indicators,
            self.live_nodes,
            self.source_nodes
        )
    }
}

/// A compiled, register-allocated execution tape.
///
/// The tape is number-system agnostic: parameter constants are stored as
/// `f64` and converted once per [`crate::Engine`] via
/// [`problp_num::Arith::from_f64`], so one tape can back engines of every
/// representation.
///
/// # Examples
///
/// ```
/// use problp_ac::{compile, Semiring};
/// use problp_bayes::networks;
/// use problp_engine::Tape;
///
/// let ac = compile(&networks::sprinkler())?;
/// let tape = Tape::compile(&ac, Semiring::SumProduct)?;
/// assert!(tape.stats().registers <= ac.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Tape {
    mode: TapeMode,
    semiring: Semiring,
    /// Arity of each circuit variable (index order).
    var_arities: Vec<usize>,
    /// Parameter constants; `params[p]` lives in register `param_regs[p]`.
    params: Vec<f64>,
    /// Register of each parameter constant (`0..params.len()` in compact
    /// mode, the param node's own index in full-values mode).
    param_regs: Vec<u32>,
    /// Indicator slots as `(variable index, state)`.
    indicators: Vec<(u32, u32)>,
    instrs: Vec<Instr>,
    num_regs: u32,
    root_reg: u32,
    source_nodes: usize,
    live_nodes: usize,
}

/// Last-use register allocator state during compilation.
struct RegAlloc {
    /// Next fresh register index.
    next: u32,
    /// Registers whose value is dead and can be reused.
    free: Vec<u32>,
}

impl RegAlloc {
    fn alloc(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            let r = self.next;
            self.next += 1;
            r
        })
    }
}

impl Tape {
    /// Compiles a circuit into a tape under the given semiring.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Circuit`] if the circuit has no root or is
    /// otherwise invalid.
    pub fn compile(ac: &AcGraph, semiring: Semiring) -> Result<Self, EngineError> {
        let (opt, _) = optimize(ac)?;
        let root = opt.root().expect("optimize always sets a root");
        let nodes = opt.nodes();

        // Liveness: the arena index of each node's last consumer. The root
        // is pinned alive forever.
        let mut last_use = vec![0usize; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            for c in node.children() {
                last_use[c.index()] = i;
            }
        }
        last_use[root.index()] = usize::MAX;

        // Pass 1: pinned parameter registers. AcGraph hash-conses params,
        // so each distinct constant appears exactly once.
        let mut params = Vec::new();
        for node in nodes {
            if let AcNode::Param { value } = node {
                params.push(*value);
            }
        }

        let param_regs: Vec<u32> = (0..params.len() as u32).collect();
        let mut tape = Tape {
            mode: TapeMode::Compact,
            semiring,
            var_arities: opt.var_arities().to_vec(),
            indicators: Vec::new(),
            instrs: Vec::new(),
            num_regs: params.len() as u32,
            root_reg: 0,
            source_nodes: ac.len(),
            live_nodes: nodes.len(),
            params,
            param_regs,
        };
        let mut alloc = RegAlloc {
            next: tape.num_regs,
            free: Vec::new(),
        };

        // Pass 2: linearize. `reg_of[i]` is the register holding node i's
        // value while the node is live.
        let mut reg_of = vec![u32::MAX; nodes.len()];
        let mut next_param = 0u32;
        for (i, node) in nodes.iter().enumerate() {
            let dst = match node {
                AcNode::Param { .. } => {
                    let r = next_param;
                    next_param += 1;
                    r
                }
                AcNode::Indicator { var, state } => {
                    let slot = tape.indicators.len() as u32;
                    tape.indicators.push((var.index() as u32, *state as u32));
                    let dst = alloc.alloc();
                    tape.instrs.push(Instr::LoadIndicator { dst, slot });
                    dst
                }
                AcNode::Sum(children) | AcNode::Product(children) => {
                    debug_assert!(children.len() >= 2, "optimize elides unary operators");
                    let make = |dst: u32, lhs: u32, rhs: u32| match (node, semiring) {
                        (AcNode::Product(_), _) => Instr::Mul { dst, lhs, rhs },
                        (_, Semiring::SumProduct) => Instr::Add { dst, lhs, rhs },
                        (_, Semiring::MaxProduct) => Instr::Max { dst, lhs, rhs },
                        (_, Semiring::MinProduct) => Instr::MinNz { dst, lhs, rhs },
                    };
                    // Left-to-right accumulator chain, matching the scalar
                    // evaluator's fold order bit for bit.
                    let dst = alloc.alloc();
                    let mut acc = reg_of[children[0].index()];
                    for c in &children[1..] {
                        tape.instrs.push(make(dst, acc, reg_of[c.index()]));
                        acc = dst;
                    }
                    dst
                }
            };
            reg_of[i] = dst;

            // Free the registers of children that die at this node (never
            // pinned param registers, never the root).
            for c in node.children() {
                let ci = c.index();
                if last_use[ci] == i
                    && reg_of[ci] != u32::MAX
                    && !matches!(nodes[ci], AcNode::Param { .. })
                {
                    alloc.free.push(reg_of[ci]);
                    reg_of[ci] = u32::MAX;
                }
            }
        }

        tape.num_regs = alloc.next;
        // Always valid: param registers are never freed, and the root's
        // last_use is pinned to usize::MAX.
        tape.root_reg = reg_of[root.index()];
        debug_assert_ne!(tape.root_reg, u32::MAX, "root register stays live");
        // Debug builds statically verify every tape they compile; release
        // builds defer to the serving admission gate
        // ([`crate::CircuitPool::register`]).
        #[cfg(debug_assertions)]
        tape.verify()?;
        Ok(tape)
    }

    /// Compiles a circuit into a **full-values** tape: no optimisation
    /// pass, no register reuse — register `i` holds source node `i`'s
    /// value after a sweep, in the node order (and therefore the exact
    /// fold order) of [`AcGraph::evaluate_nodes`], bit for bit.
    ///
    /// This is the mode the max/min value analyses
    /// (`problp_bounds::AcAnalysis`) and the MPE argmax traceback
    /// ([`crate::Engine::mpe_batch`]) require; for plain batch throughput
    /// prefer [`Tape::compile`], whose register file is far smaller.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Circuit`] if the circuit has no root.
    ///
    /// # Examples
    ///
    /// ```
    /// use problp_ac::{compile, Semiring};
    /// use problp_bayes::networks;
    /// use problp_engine::{Tape, TapeMode};
    ///
    /// let ac = compile(&networks::sprinkler())?;
    /// let tape = Tape::compile_full(&ac, Semiring::SumProduct)?;
    /// assert_eq!(tape.mode(), TapeMode::Full);
    /// // One stable register per source node.
    /// assert_eq!(tape.num_regs(), ac.len());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compile_full(ac: &AcGraph, semiring: Semiring) -> Result<Self, EngineError> {
        let root = ac
            .root()
            .ok_or(EngineError::Circuit(AcError::MissingRoot))?;
        let nodes = ac.nodes();
        let mut tape = Tape {
            mode: TapeMode::Full,
            semiring,
            var_arities: ac.var_arities().to_vec(),
            params: Vec::new(),
            param_regs: Vec::new(),
            indicators: Vec::new(),
            instrs: Vec::new(),
            num_regs: nodes.len() as u32,
            root_reg: root.index() as u32,
            source_nodes: nodes.len(),
            live_nodes: nodes.len(),
        };
        for (i, node) in nodes.iter().enumerate() {
            let dst = i as u32;
            match node {
                AcNode::Param { value } => {
                    tape.params.push(*value);
                    tape.param_regs.push(dst);
                }
                AcNode::Indicator { var, state } => {
                    let slot = tape.indicators.len() as u32;
                    tape.indicators.push((var.index() as u32, *state as u32));
                    tape.instrs.push(Instr::LoadIndicator { dst, slot });
                }
                AcNode::Sum(children) | AcNode::Product(children) => {
                    let is_product = matches!(node, AcNode::Product(_));
                    let make = |dst: u32, lhs: u32, rhs: u32| match (is_product, semiring) {
                        (true, _) => Instr::Mul { dst, lhs, rhs },
                        (false, Semiring::SumProduct) => Instr::Add { dst, lhs, rhs },
                        (false, Semiring::MaxProduct) => Instr::Max { dst, lhs, rhs },
                        (false, Semiring::MinProduct) => Instr::MinNz { dst, lhs, rhs },
                    };
                    // Same left-to-right accumulator chain as the compact
                    // mode. `AcGraph::sum`/`product` elide unary
                    // operators at construction, so every chain has at
                    // least one binary step writing `dst`.
                    debug_assert!(children.len() >= 2, "constructors elide unary operators");
                    let mut acc = children[0].index() as u32;
                    for c in &children[1..] {
                        tape.instrs.push(make(dst, acc, c.index() as u32));
                        acc = dst;
                    }
                }
            }
        }
        // Same debug-build verification as [`Tape::compile`].
        #[cfg(debug_assertions)]
        tape.verify()?;
        Ok(tape)
    }

    /// The register-assignment mode this tape was compiled in.
    pub fn mode(&self) -> TapeMode {
        self.mode
    }

    /// The semiring this tape was compiled for.
    pub fn semiring(&self) -> Semiring {
        self.semiring
    }

    /// Number of variables the compiled circuit ranges over.
    pub fn var_count(&self) -> usize {
        self.var_arities.len()
    }

    /// Arity of each circuit variable, in variable-index order.
    pub fn var_arities(&self) -> &[usize] {
        &self.var_arities
    }

    /// The parameter constants; `params()[p]` is pre-loaded into register
    /// `param_regs()[p]` before every sweep.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// The pinned register of each parameter constant (`0..params` in
    /// compact mode, the param node's own index in full-values mode).
    pub fn param_regs(&self) -> &[u32] {
        &self.param_regs
    }

    /// The indicator slot table as `(variable, state)` pairs.
    pub fn indicator_slots(&self) -> impl Iterator<Item = (VarId, usize)> + '_ {
        self.indicators
            .iter()
            .map(|&(v, s)| (VarId::from_index(v as usize), s as usize))
    }

    /// The instruction stream.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Total number of registers (pinned parameter registers included).
    pub fn num_regs(&self) -> usize {
        self.num_regs as usize
    }

    /// The register holding the root value after a sweep.
    pub fn root_reg(&self) -> u32 {
        self.root_reg
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TapeStats {
        TapeStats {
            source_nodes: self.source_nodes,
            live_nodes: self.live_nodes,
            instrs: self.instrs.len(),
            registers: self.num_regs as usize,
            params: self.params.len(),
            indicators: self.indicators.len(),
        }
    }

    /// Raw access for the evaluator: `(var, state)` of a slot index.
    #[inline]
    pub(crate) fn slot(&self, slot: u32) -> (u32, u32) {
        self.indicators[slot as usize]
    }

    /// Mutable access to the raw instruction stream. Exists so that
    /// verifier mutation tests can corrupt a tape on purpose; a tape
    /// edited through this no longer carries the compiler's guarantees
    /// and must be re-checked with [`Tape::verify`]. Not a stable API.
    #[doc(hidden)]
    pub fn raw_instrs_mut(&mut self) -> &mut Vec<Instr> {
        &mut self.instrs
    }
}

impl std::fmt::Display for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({}, {:?})", self.stats(), self.semiring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_bayes::Evidence;
    use problp_num::{Arith, F64Arith};

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    /// λ_{a0}·0.3 + λ_{a1}·0.7.
    fn tiny() -> AcGraph {
        let mut g = AcGraph::new(vec![2]);
        let a0 = g.indicator(v(0), 0).unwrap();
        let a1 = g.indicator(v(0), 1).unwrap();
        let t0 = g.param(0.3).unwrap();
        let t1 = g.param(0.7).unwrap();
        let p0 = g.product(vec![a0, t0]).unwrap();
        let p1 = g.product(vec![a1, t1]).unwrap();
        let root = g.sum(vec![p0, p1]).unwrap();
        g.set_root(root);
        g
    }

    #[test]
    fn compiles_the_tiny_circuit() {
        let tape = Tape::compile(&tiny(), Semiring::SumProduct).unwrap();
        let st = tape.stats();
        assert_eq!(st.params, 2);
        assert_eq!(st.indicators, 2);
        // 2 loads + 2 muls + 1 add.
        assert_eq!(st.instrs, 5);
        assert!(st.registers < 7, "liveness reuses registers: {st}");
    }

    #[test]
    fn semiring_selects_the_sum_lowering() {
        for (semiring, pat) in [
            (Semiring::SumProduct, "Add"),
            (Semiring::MaxProduct, "Max"),
            (Semiring::MinProduct, "MinNz"),
        ] {
            let tape = Tape::compile(&tiny(), semiring).unwrap();
            let found = tape
                .instrs()
                .iter()
                .any(|i| format!("{i:?}").starts_with(pat));
            assert!(found, "{semiring:?} lowers sums to {pat}");
        }
    }

    #[test]
    fn dead_nodes_are_elided() {
        let mut g = tiny();
        // An unreachable extra parameter.
        let _ = g.param(0.123).unwrap();
        let tape = Tape::compile(&g, Semiring::SumProduct).unwrap();
        assert_eq!(tape.stats().params, 2, "dead param elided");
        assert!(tape.stats().live_nodes < g.len());
    }

    #[test]
    fn missing_root_is_an_error() {
        let g = AcGraph::new(vec![2]);
        assert!(matches!(
            Tape::compile(&g, Semiring::SumProduct).unwrap_err(),
            EngineError::Circuit(_)
        ));
        assert!(matches!(
            Tape::compile_full(&g, Semiring::SumProduct).unwrap_err(),
            EngineError::Circuit(_)
        ));
    }

    #[test]
    fn full_mode_assigns_one_register_per_node() {
        let g = tiny();
        let tape = Tape::compile_full(&g, Semiring::SumProduct).unwrap();
        assert_eq!(tape.mode(), TapeMode::Full);
        assert_eq!(tape.num_regs(), g.len());
        assert_eq!(tape.root_reg() as usize, g.root().unwrap().index());
        // Param registers are the param nodes' own indices.
        for (&r, &p) in tape.param_regs().iter().zip(tape.params()) {
            assert!(matches!(g.nodes()[r as usize], AcNode::Param { value } if value == p));
        }
        // Every non-param node's register is written by exactly one
        // destination chain.
        assert_eq!(tape.stats().live_nodes, g.len());
    }

    #[test]
    fn full_mode_keeps_dead_nodes() {
        let mut g = tiny();
        let _ = g.param(0.123).unwrap();
        let tape = Tape::compile_full(&g, Semiring::SumProduct).unwrap();
        assert_eq!(tape.stats().params, 3, "dead params keep their slot");
        assert_eq!(tape.num_regs(), g.len());
    }

    #[test]
    fn constant_root_compiles() {
        let mut g = AcGraph::new(vec![2]);
        let p = g.param(0.25).unwrap();
        g.set_root(p);
        let tape = Tape::compile(&g, Semiring::SumProduct).unwrap();
        assert_eq!(tape.instrs().len(), 0);
        assert_eq!(tape.root_reg(), 0);
        // Sanity: the engine-side contract — params live in regs [0, P).
        let mut ctx = F64Arith::new();
        assert_eq!(ctx.from_f64(tape.params()[tape.root_reg() as usize]), 0.25);
        let _ = Evidence::empty(2);
    }
}
