//! Sharded multi-circuit serving: one process, many compiled tapes.
//!
//! Everything below `serve` evaluates **one pre-formed batch on one
//! tape**. This module is the first cross-request, cross-model layer —
//! the ROADMAP's "sharded multi-circuit serving" item:
//!
//! ```text
//!            requests (model id, Evidence, BatchQuery)
//!                │ submit / serve_all
//!                ▼
//!        ┌──────────────────┐   per-(model, query) groups
//!        │  admission queue │   coalesced under max_batch / max_wait
//!        └──────────────────┘
//!                │ ripe group → EvidenceBatch
//!                ▼
//!        ┌──────────────────┐   N dispatcher workers, each evaluating
//!        │    dispatcher    │   one coalesced batch at a time through
//!        └──────────────────┘   Engine::evaluate_query
//!                │ per-lane split
//!                ▼
//!        ┌──────────────────┐   model-per-tenant CircuitPool:
//!        │   CircuitPool    │   SumProduct tape (marginal/conditional)
//!        └──────────────────┘   + MaxProduct full tape (MPE) per model
//!                │
//!                ▼
//!          tickets (one per request, Result per lane)
//! ```
//!
//! * [`CircuitPool`] hosts the compiled tapes, keyed by model id
//!   (model-per-tenant): registering a model compiles a
//!   [`Semiring::SumProduct`] tape for marginal/conditional lanes and a
//!   full-values [`Semiring::MaxProduct`] tape for MPE decoding.
//! * [`Server`] owns the admission queue and the dispatcher shards.
//!   [`Server::submit`] enqueues one [`ServeRequest`] and returns a
//!   [`Ticket`]; requests to the same `(model, query)` group are
//!   coalesced into one [`EvidenceBatch`] once `max_batch` lanes are
//!   waiting or the oldest has waited `max_wait`, evaluated by a worker,
//!   and routed back lane by lane.
//!
//! Coalescing never changes answers: every engine lane is computed by
//! the same instruction sequence regardless of which other lanes share
//! its batch, so a coalesced answer's payload (values, assignments,
//! posteriors) is bit-identical to serving the request alone
//! (`tests/serve.rs` pins this per model, per query kind and per
//! arithmetic via [`ServeResponse::answer_eq`]). The one batch-scope
//! field is the sticky-flag set, which is aggregated over the coalesced
//! batch and therefore a superset of the request's own flags.
//!
//! Failure isolation is per request, not per process: an unknown model
//! or mismatched evidence is rejected at admission, an impossible
//! conditional lane fails only its own ticket
//! ([`ServeError::ImpossibleEvidence`]), and a panic inside an
//! evaluation is caught and returned as
//! [`EngineError::WorkerPanic`] to the requests of that one batch while
//! the dispatcher keeps serving.
//!
//! # Examples
//!
//! ```
//! use problp_ac::compile;
//! use problp_bayes::{networks, BatchQuery, Evidence};
//! use problp_engine::{CircuitPool, ServeConfig, ServeRequest, Server};
//! use problp_num::F64Arith;
//!
//! let mut pool = CircuitPool::new(F64Arith::new());
//! for (name, net) in [("sprinkler", networks::sprinkler()), ("asia", networks::asia())] {
//!     pool.register(name, &compile(&net)?)?;
//! }
//! let server = Server::start(pool, ServeConfig::default());
//!
//! let net = networks::sprinkler();
//! let ticket = server.submit(ServeRequest {
//!     model: "sprinkler".to_string(),
//!     evidence: Evidence::empty(net.var_count()),
//!     query: BatchQuery::Marginal,
//! })?;
//! match ticket.wait()? {
//!     problp_engine::ServeResponse::Marginal { value, .. } => {
//!         assert!((value - 1.0).abs() < 1e-12)
//!     }
//!     other => panic!("expected a marginal, got {other:?}"),
//! }
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use problp_ac::{AcGraph, Semiring};
use problp_bayes::{BatchQuery, Evidence, EvidenceBatch};
use problp_num::{Arith, Flags};

use crate::engine::Engine;
use crate::error::{panic_message, EngineError};
use crate::query::{ConditionalLaneStatus, QueryBatchResult};

/// Errors of the serving layer. Admission errors ([`ServeError::UnknownModel`],
/// length mismatches) are returned by [`Server::submit`] directly; everything
/// else arrives through the request's [`Ticket`].
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The request named a model the pool does not host.
    UnknownModel {
        /// The unknown model id.
        model: String,
    },
    /// The underlying engine rejected or lost the coalesced batch; a
    /// panic inside one evaluation arrives here as
    /// [`EngineError::WorkerPanic`].
    Engine(EngineError),
    /// A conditional request whose evidence has probability zero under
    /// its model: no posterior exists
    /// ([`ConditionalLaneStatus::ImpossibleEvidence`]).
    ImpossibleEvidence,
    /// The server is shutting down (or has shut down) and no longer
    /// admits requests.
    ShutDown,
    /// The response channel was dropped before a result arrived — the
    /// serving process is tearing down.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel { model } => {
                write!(f, "no model named {model:?} is registered in the pool")
            }
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::ImpossibleEvidence => write!(
                f,
                "the evidence has probability zero under the model: no posterior exists"
            ),
            ServeError::ShutDown => write!(f, "the server is shut down"),
            ServeError::Disconnected => write!(f, "the response channel was dropped"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// One serving request: which model, which evidence, which query.
#[derive(Clone, PartialEq, Debug)]
pub struct ServeRequest {
    /// The model id the request targets (as registered in the pool).
    pub model: String,
    /// The request's evidence instance.
    pub evidence: Evidence,
    /// What to compute for it.
    pub query: BatchQuery,
}

/// One serving answer, mirroring the request's [`BatchQuery`] kind.
///
/// `flags` are **batch-scope**: the sticky flags of the whole coalesced
/// batch the request was served in (like [`crate::BatchResult::flags`]),
/// so they are a superset of the flags the request would raise alone —
/// batch mates can contribute `inexact`/`underflow` bits. The answer
/// payloads (values, assignments, posteriors) are coalescing-invariant;
/// compare them with [`ServeResponse::answer_eq`], which ignores flags.
#[derive(Clone, PartialEq, Debug)]
pub enum ServeResponse<V> {
    /// `Pr(e)` under the model.
    Marginal {
        /// The marginal value.
        value: V,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
    /// The most probable completion of the evidence and its joint value.
    Mpe {
        /// One state per variable.
        assignment: Vec<usize>,
        /// `max_x Pr(x, e)`.
        value: V,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
    /// The posterior over the query variable's states.
    Conditional {
        /// `posteriors[s] = Pr(q = s | e)`.
        posteriors: Vec<f64>,
        /// The argmax state — the classifier decision.
        prediction: usize,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
}

impl<V: PartialEq> ServeResponse<V> {
    /// Answer-payload equality, ignoring `flags`: two servings of the
    /// same request in different coalesced batches always agree on the
    /// payload (posteriors bit for bit), but their batch-scope flags may
    /// differ with the batch composition. This is the
    /// "coalescing never changes answers" relation the serve property
    /// tests pin.
    pub fn answer_eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                ServeResponse::Marginal { value: a, .. },
                ServeResponse::Marginal { value: b, .. },
            ) => a == b,
            (
                ServeResponse::Mpe {
                    assignment: aa,
                    value: av,
                    ..
                },
                ServeResponse::Mpe {
                    assignment: ba,
                    value: bv,
                    ..
                },
            ) => aa == ba && av == bv,
            (
                ServeResponse::Conditional {
                    posteriors: ap,
                    prediction: apred,
                    ..
                },
                ServeResponse::Conditional {
                    posteriors: bp,
                    prediction: bpred,
                    ..
                },
            ) => {
                apred == bpred
                    && ap.len() == bp.len()
                    && ap.iter().zip(bp).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

/// The per-request result type routed back through a [`Ticket`].
pub type LaneResult<V> = Result<ServeResponse<V>, ServeError>;

/// Answer-payload equality of two per-request results: `Ok` sides
/// compare via [`ServeResponse::answer_eq`] (flags ignored — they are
/// batch-scope), `Err` sides via `==`.
pub fn lane_answer_eq<V: PartialEq>(a: &LaneResult<V>, b: &LaneResult<V>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x.answer_eq(y),
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

/// Admission and dispatch policy of a [`Server`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServeConfig {
    /// Coalesce at most this many requests into one engine batch.
    pub max_batch: usize,
    /// Dispatch a non-full group once its oldest request has waited this
    /// long.
    pub max_wait: Duration,
    /// Dispatcher worker threads (each evaluates one coalesced batch at
    /// a time). Threads *inside* each engine evaluation are a pool
    /// property instead ([`CircuitPool::with_engine_threads`], default
    /// 1): parallelism comes from the dispatcher shards.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
        }
    }
}

/// One hosted model: the engines serving its three query kinds.
struct Tenant<A: Arith> {
    /// `SumProduct` compact tape: marginal and conditional lanes.
    sum: Engine<A>,
    /// `MaxProduct` full-values tape: MPE decoding.
    mpe: Engine<A>,
    /// Variables of the model (admission-time shape check).
    var_count: usize,
}

/// Hosts many compiled circuits keyed by model id (model-per-tenant),
/// all bound to one arithmetic context type.
///
/// Registering a model compiles both tapes it can be served from; the
/// pool is then immutable at serving time and shared across dispatcher
/// shards.
pub struct CircuitPool<A: Arith> {
    ctx: A,
    engine_threads: usize,
    tenants: HashMap<String, Arc<Tenant<A>>>,
}

impl<A> CircuitPool<A>
where
    A: Arith + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    /// Creates an empty pool evaluating in `ctx`'s number system.
    pub fn new(ctx: A) -> Self {
        CircuitPool {
            ctx,
            engine_threads: 1,
            tenants: HashMap::new(),
        }
    }

    /// Sets the thread cap of every engine registered *after* this call
    /// (`0` = all cores). The default of 1 keeps engine evaluations
    /// single-threaded so the dispatcher shards stay the unit of
    /// parallelism.
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads;
        self
    }

    /// Compiles `ac` under both serving semirings and hosts it as
    /// `model`. Re-registering an id replaces the previous circuit.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Circuit`] if the circuit is invalid.
    pub fn register(&mut self, model: &str, ac: &AcGraph) -> Result<(), EngineError> {
        let sum = Engine::from_graph(ac, Semiring::SumProduct, self.ctx.clone())?
            .with_threads(self.engine_threads);
        let mpe = Engine::from_graph_full(ac, Semiring::MaxProduct, self.ctx.clone())?
            .with_threads(self.engine_threads);
        let var_count = ac.var_count();
        self.tenants.insert(
            model.to_string(),
            Arc::new(Tenant {
                sum,
                mpe,
                var_count,
            }),
        );
        Ok(())
    }

    /// The hosted model ids, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of hosted models.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no model is hosted.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Looks up a tenant, as a [`ServeError`] on miss.
    fn tenant(&self, model: &str) -> Result<&Arc<Tenant<A>>, ServeError> {
        self.tenants
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })
    }

    /// Admission-time request validation: the model must exist and the
    /// evidence must range over its variables.
    fn admit(&self, req: &ServeRequest) -> Result<(), ServeError> {
        let tenant = self.tenant(&req.model)?;
        if req.evidence.len() != tenant.var_count {
            return Err(ServeError::Engine(EngineError::BatchLengthMismatch {
                batch: req.evidence.len(),
                circuit: tenant.var_count,
            }));
        }
        Ok(())
    }

    /// Serves one request directly, as a single-lane batch — the
    /// per-request reference path the coalesced answers are pinned
    /// bit-identical to, and the scalar baseline of `serve-sim`.
    pub fn serve_one(&self, req: &ServeRequest) -> LaneResult<A::Value> {
        self.admit(req)?;
        let tenant = self.tenant(&req.model)?;
        let mut batch = EvidenceBatch::new(tenant.var_count);
        batch.push(&req.evidence);
        self.evaluate_group(tenant, req.query, &batch)
            .pop()
            .expect("one lane in, one result out")
    }

    /// Evaluates one coalesced `(model, query)` group and splits the
    /// result back into per-lane answers. A batch-level engine error is
    /// replicated to every lane; conditional lanes with impossible
    /// evidence fail individually.
    fn evaluate_group(
        &self,
        tenant: &Tenant<A>,
        query: BatchQuery,
        batch: &EvidenceBatch,
    ) -> Vec<LaneResult<A::Value>> {
        let engine = match query {
            BatchQuery::Mpe => &tenant.mpe,
            _ => &tenant.sum,
        };
        match engine.evaluate_query(batch, query) {
            Err(e) => vec![Err(ServeError::Engine(e)); batch.lanes()],
            Ok(QueryBatchResult::Marginal(r)) => {
                let flags = r.flags;
                r.values
                    .into_iter()
                    .map(|value| Ok(ServeResponse::Marginal { value, flags }))
                    .collect()
            }
            Ok(QueryBatchResult::Mpe(r)) => {
                let flags = r.flags;
                r.assignments
                    .into_iter()
                    .zip(r.values)
                    .map(|(assignment, value)| {
                        Ok(ServeResponse::Mpe {
                            assignment,
                            value,
                            flags,
                        })
                    })
                    .collect()
            }
            Ok(QueryBatchResult::Conditional(r)) => {
                let flags = r.flags;
                r.posteriors
                    .into_iter()
                    .zip(r.predictions)
                    .zip(r.lane_status)
                    .map(|((posteriors, prediction), status)| match status {
                        ConditionalLaneStatus::Ok => Ok(ServeResponse::Conditional {
                            posteriors,
                            prediction,
                            flags,
                        }),
                        ConditionalLaneStatus::ImpossibleEvidence => {
                            Err(ServeError::ImpossibleEvidence)
                        }
                    })
                    .collect()
            }
        }
    }
}

/// The routing half of one admitted request: when it arrived and where
/// its result goes. The evidence half lives in the group's columnar
/// batch, lane `i` belonging to `waiters[i]`.
struct Waiter<V> {
    enqueued: Instant,
    tx: mpsc::Sender<(Instant, LaneResult<V>)>,
}

/// The pending requests of one `(model, query)` coalescing group,
/// already in columnar form: admission pushes straight into the
/// [`EvidenceBatch`] the dispatcher will sweep, and an over-full group
/// is cut at `max_batch` with one [`EvidenceBatch::split_off`] (the
/// head leaves zero-copy; only the tail lanes move).
struct Group<V> {
    model: String,
    query: BatchQuery,
    batch: EvidenceBatch,
    waiters: Vec<Waiter<V>>,
}

/// The admission queue proper.
struct QueueState<V> {
    groups: Vec<Group<V>>,
    shutdown: bool,
}

/// State shared between the submitting side and the dispatcher shards.
struct Shared<A: Arith> {
    pool: CircuitPool<A>,
    config: ServeConfig,
    queue: Mutex<QueueState<A::Value>>,
    ready: Condvar,
}

/// One coalesced unit of dispatcher work: the batch to sweep and the
/// per-lane reply channels.
struct Job<V> {
    model: String,
    query: BatchQuery,
    batch: EvidenceBatch,
    waiters: Vec<Waiter<V>>,
}

/// The receipt for one submitted request: redeem it with
/// [`Ticket::wait`] for the request's result.
pub struct Ticket<V> {
    rx: mpsc::Receiver<(Instant, LaneResult<V>)>,
}

impl<V> Ticket<V> {
    /// Like [`Ticket::wait`], but also returns the instant the
    /// dispatcher finished the request — so a caller measuring latency
    /// sees completion time, not the (possibly much later) moment it
    /// got around to draining the ticket.
    pub fn wait_timed(self) -> (LaneResult<V>, Instant) {
        match self.rx.recv() {
            Ok((completed, result)) => (result, completed),
            Err(_) => (Err(ServeError::Disconnected), Instant::now()),
        }
    }

    /// Blocks until the request's result arrives.
    pub fn wait(self) -> LaneResult<V> {
        self.wait_timed().0
    }
}

/// A running serving instance: a [`CircuitPool`] behind an admission
/// queue and a shard of dispatcher workers.
///
/// Dropping the server (or calling [`Server::shutdown`]) stops
/// admission, flushes every queued request through the dispatchers and
/// joins the worker threads — no ticket is left hanging.
pub struct Server<A: Arith> {
    shared: Arc<Shared<A>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<A> Server<A>
where
    A: Arith + Clone + Send + Sync + 'static,
    A::Value: Clone + Send + Sync + 'static,
{
    /// Starts `config.workers` dispatcher shards over `pool`.
    pub fn start(pool: CircuitPool<A>, config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            pool,
            config,
            queue: Mutex::new(QueueState {
                groups: Vec::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server { shared, workers }
    }

    /// The hosted pool (for direct [`CircuitPool::serve_one`] replays
    /// against the same engines).
    pub fn pool(&self) -> &CircuitPool<A> {
        &self.shared.pool
    }

    /// Admits one request into the coalescing queue.
    ///
    /// # Errors
    ///
    /// Rejects at admission: [`ServeError::UnknownModel`] /
    /// [`EngineError::BatchLengthMismatch`] for malformed requests and
    /// [`ServeError::ShutDown`] after shutdown. Per-request serving
    /// failures arrive through the [`Ticket`] instead.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket<A::Value>, ServeError> {
        self.shared.pool.admit(&req)?;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock_queue(&self.shared.queue);
            if q.shutdown {
                return Err(ServeError::ShutDown);
            }
            let waiter = Waiter {
                enqueued: Instant::now(),
                tx,
            };
            match q
                .groups
                .iter_mut()
                .find(|g| g.model == req.model && g.query == req.query)
            {
                Some(g) => {
                    g.batch.push(&req.evidence);
                    g.waiters.push(waiter);
                }
                None => {
                    let mut batch = EvidenceBatch::new(req.evidence.len());
                    batch.push(&req.evidence);
                    q.groups.push(Group {
                        model: req.model,
                        query: req.query,
                        batch,
                        waiters: vec![waiter],
                    });
                }
            }
        }
        self.shared.ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Submits a whole trace and waits for every answer, in request
    /// order. Admission errors land in the corresponding slot.
    pub fn serve_all(&self, requests: &[ServeRequest]) -> Vec<LaneResult<A::Value>> {
        let tickets: Vec<Result<Ticket<A::Value>, ServeError>> =
            requests.iter().map(|r| self.submit(r.clone())).collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Stops admission, drains the queue and joins the dispatchers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<A: Arith> Server<A> {
    fn shutdown_inner(&mut self) {
        {
            let mut q = lock_queue(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            // A worker that somehow panicked has nothing left to flush;
            // the remaining workers still drain the queue.
            let _ = w.join();
        }
    }
}

impl<A: Arith> Drop for Server<A> {
    fn drop(&mut self) {
        // Idempotent: after an explicit `shutdown()` the worker list is
        // already drained and this is a no-op.
        self.shutdown_inner();
    }
}

/// Locks the queue, recovering from poisoning: queue state is plain data
/// (no invariants spanning the panic point), and serving must outlive a
/// panicked worker.
fn lock_queue<V>(queue: &Mutex<QueueState<V>>) -> MutexGuard<'_, QueueState<V>> {
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Pops a dispatchable job: a group with `max_batch` lanes waiting, one
/// whose oldest request has waited `max_wait`, or — when `flush` — any
/// non-empty group. Among dispatchable groups the one with the oldest
/// head-of-line request wins, so a continuously-full tenant cannot
/// starve a timed-out group behind it.
fn take_job<V>(q: &mut QueueState<V>, config: &ServeConfig, flush: bool) -> Option<Job<V>> {
    let max_batch = config.max_batch.max(1);
    let now = Instant::now();
    let idx = q
        .groups
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            !g.waiters.is_empty()
                && (flush
                    || g.waiters.len() >= max_batch
                    || now.duration_since(g.waiters[0].enqueued) >= config.max_wait)
        })
        .min_by_key(|(_, g)| g.waiters[0].enqueued)
        .map(|(i, _)| i)?;
    let group = &mut q.groups[idx];
    if group.waiters.len() <= max_batch {
        let group = q.groups.remove(idx);
        return Some(Job {
            model: group.model,
            query: group.query,
            batch: group.batch,
            waiters: group.waiters,
        });
    }
    // Over-full group: one two-way cut — the head `max_batch` lanes
    // leave as the job's batch, only the tail lanes are moved, and the
    // queue mutex is held for a single O(tail) pass.
    let waiters: Vec<Waiter<V>> = group.waiters.drain(..max_batch).collect();
    let tail = group.batch.split_off(max_batch);
    let head = std::mem::replace(&mut group.batch, tail);
    Some(Job {
        model: group.model.clone(),
        query: group.query,
        batch: head,
        waiters,
    })
}

/// The next instant at which some group's oldest request hits
/// `max_wait`.
fn next_deadline<V>(q: &QueueState<V>, config: &ServeConfig) -> Option<Instant> {
    q.groups
        .iter()
        .filter_map(|g| g.waiters.first().map(|w| w.enqueued + config.max_wait))
        .min()
}

/// One dispatcher shard: wait for a ripe group, coalesce it, evaluate,
/// route the per-lane results, repeat. Returns when the queue is shut
/// down and drained.
fn worker_loop<A>(shared: &Shared<A>)
where
    A: Arith + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    loop {
        let job = {
            let mut q = lock_queue(&shared.queue);
            loop {
                let flush = q.shutdown;
                if let Some(job) = take_job(&mut q, &shared.config, flush) {
                    // More work may be ripe; make sure an idle shard
                    // looks, since our notify was consumed by this pop.
                    if !q.groups.is_empty() {
                        shared.ready.notify_one();
                    }
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                // With pending groups, sleep until the earliest
                // max_wait deadline; on an empty queue, block until a
                // submit (or shutdown) notifies — no idle polling.
                q = match next_deadline(&q, &shared.config) {
                    Some(deadline) => {
                        let wait = deadline
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_micros(50));
                        shared
                            .ready
                            .wait_timeout(q, wait)
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .0
                    }
                    None => shared
                        .ready
                        .wait(q)
                        .unwrap_or_else(|poisoned| poisoned.into_inner()),
                };
            }
        };
        let Some(job) = job else {
            return;
        };
        dispatch(shared, job);
    }
}

/// Evaluates one job's coalesced batch and sends each lane's result to
/// its ticket. A panic inside the evaluation fails this batch's
/// requests and nothing else.
fn dispatch<A>(shared: &Shared<A>, job: Job<A::Value>)
where
    A: Arith + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    let Ok(tenant) = shared.pool.tenant(&job.model) else {
        // Admission checked the model; reaching this means the pool
        // changed shape, which it cannot — but fail the requests rather
        // than panic the dispatcher.
        let now = Instant::now();
        for w in &job.waiters {
            let _ = w.tx.send((
                now,
                Err(ServeError::UnknownModel {
                    model: job.model.clone(),
                }),
            ));
        }
        return;
    };
    let results = std::panic::catch_unwind(AssertUnwindSafe(|| {
        shared.pool.evaluate_group(tenant, job.query, &job.batch)
    }));
    let completed = Instant::now();
    match results {
        Ok(per_lane) => {
            for (w, r) in job.waiters.iter().zip(per_lane) {
                let _ = w.tx.send((completed, r));
            }
        }
        Err(payload) => {
            let message = panic_message(payload);
            for w in &job.waiters {
                let _ = w.tx.send((
                    completed,
                    Err(ServeError::Engine(EngineError::WorkerPanic {
                        message: message.clone(),
                    })),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::compile;
    use problp_bayes::{networks, VarId};
    use problp_num::F64Arith;

    fn two_model_pool() -> CircuitPool<F64Arith> {
        let mut pool = CircuitPool::new(F64Arith::new());
        pool.register("sprinkler", &compile(&networks::sprinkler()).unwrap())
            .unwrap();
        pool.register("asia", &compile(&networks::asia()).unwrap())
            .unwrap();
        pool
    }

    #[test]
    fn pool_hosts_models_by_id() {
        let pool = two_model_pool();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.models(), vec!["asia", "sprinkler"]);
        assert!(!pool.is_empty());
    }

    #[test]
    fn admission_rejects_unknown_models_and_bad_shapes() {
        let pool = two_model_pool();
        let server = Server::start(pool, ServeConfig::default());
        let missing = server.submit(ServeRequest {
            model: "nonesuch".to_string(),
            evidence: Evidence::empty(4),
            query: BatchQuery::Marginal,
        });
        assert!(matches!(missing, Err(ServeError::UnknownModel { .. })));
        let ragged = server.submit(ServeRequest {
            model: "sprinkler".to_string(),
            evidence: Evidence::empty(99),
            query: BatchQuery::Marginal,
        });
        assert!(matches!(
            ragged,
            Err(ServeError::Engine(EngineError::BatchLengthMismatch { .. }))
        ));
        server.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let pool = two_model_pool();
        let server = Server::start(pool, ServeConfig::default());
        {
            let mut q = lock_queue(&server.shared.queue);
            q.shutdown = true;
        }
        let late = server.submit(ServeRequest {
            model: "sprinkler".to_string(),
            evidence: Evidence::empty(4),
            query: BatchQuery::Marginal,
        });
        assert!(matches!(late, Err(ServeError::ShutDown)));
    }

    #[test]
    fn mixed_tenant_trace_is_bit_identical_to_serve_one() {
        let pool = two_model_pool();
        // Tight batching limits so the trace actually coalesces.
        let config = ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            workers: 3,
        };
        let server = Server::start(pool, config);
        let nets = [
            ("sprinkler", networks::sprinkler()),
            ("asia", networks::asia()),
        ];
        let mut requests = Vec::new();
        for (i, (name, net)) in nets.iter().cycle().take(60).enumerate() {
            let pool_evs = problp_bayes::single_variable_evidences(
                &(0..net.var_count())
                    .map(|v| net.variable(VarId::from_index(v)).arity())
                    .collect::<Vec<_>>(),
            );
            let evidence = pool_evs[i % pool_evs.len()].clone();
            let query = match i % 3 {
                0 => BatchQuery::Marginal,
                1 => BatchQuery::Mpe,
                _ => BatchQuery::Conditional {
                    query_var: net.roots()[0],
                },
            };
            requests.push(ServeRequest {
                model: name.to_string(),
                evidence,
                query,
            });
        }
        let served = server.serve_all(&requests);
        for (req, got) in requests.iter().zip(&served) {
            let alone = server.pool().serve_one(req);
            assert!(
                lane_answer_eq(&alone, got),
                "request {req:?}: {alone:?} vs {got:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn impossible_conditional_evidence_fails_only_its_own_ticket() {
        let net = networks::sprinkler();
        let pool = two_model_pool();
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                workers: 1,
            },
        );
        // Pr(Sprinkler=0, Rain=0, WetGrass=1) = 0 in the sprinkler CPTs.
        let mut impossible = Evidence::empty(net.var_count());
        impossible.observe(net.find("Sprinkler").unwrap(), 0);
        impossible.observe(net.find("Rain").unwrap(), 0);
        impossible.observe(net.find("WetGrass").unwrap(), 1);
        let query = BatchQuery::Conditional {
            query_var: net.find("Cloudy").unwrap(),
        };
        let requests = vec![
            ServeRequest {
                model: "sprinkler".to_string(),
                evidence: Evidence::empty(net.var_count()),
                query,
            },
            ServeRequest {
                model: "sprinkler".to_string(),
                evidence: impossible,
                query,
            },
        ];
        let served = server.serve_all(&requests);
        assert!(matches!(served[0], Ok(ServeResponse::Conditional { .. })));
        assert_eq!(served[1], Err(ServeError::ImpossibleEvidence));
        server.shutdown();
    }

    #[test]
    fn batch_scope_flags_do_not_break_answer_equality() {
        use problp_num::{FixedArith, FixedFormat};

        // A 12-variable chain of dyadic CPTs: every parameter is exact
        // in fixed(1,10), so const conversion raises nothing. The empty
        // evidence evaluates to exactly 1.0 (clean flags) while a fully
        // observed lane hits 2^-12, which underflows the format — two
        // lanes of the same (model, query) group with *different*
        // sticky flags. Coalescing them must still reproduce each
        // answer payload bit for bit.
        let mut b = problp_bayes::BayesNetBuilder::new();
        let mut prev = b.variable("X0", 2);
        b.cpt(prev, [], [0.5, 0.5]).unwrap();
        for i in 1..12 {
            let v = b.variable(format!("X{i}"), 2);
            b.cpt(v, [prev], [0.5, 0.5, 0.5, 0.5]).unwrap();
            prev = v;
        }
        let net = b.build().unwrap();
        let ac = compile(&net).unwrap();
        let mut pool = CircuitPool::new(FixedArith::new(FixedFormat::new(1, 10).unwrap()));
        pool.register("chain", &ac).unwrap();
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                workers: 1,
            },
        );
        let clean = ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::empty(12),
            query: BatchQuery::Marginal,
        };
        let noisy = ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::from_assignment(&[0; 12]),
            query: BatchQuery::Marginal,
        };
        let served = server.serve_all(&[clean.clone(), noisy.clone()]);
        for (req, got) in [clean, noisy].iter().zip(&served) {
            let alone = server.pool().serve_one(req);
            assert!(lane_answer_eq(&alone, got), "{req:?}: {alone:?} vs {got:?}");
        }
        // The lanes really do disagree on flags: alone, the empty
        // evidence is flag-clean while the observed lane is not.
        match server.pool().serve_one(&ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::empty(12),
            query: BatchQuery::Marginal,
        }) {
            Ok(ServeResponse::Marginal { flags, .. }) => {
                assert!(!flags.any(), "empty evidence is exact: {flags:?}")
            }
            other => panic!("expected a marginal, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn drop_flushes_pending_tickets() {
        let pool = two_model_pool();
        // A huge max_wait: only shutdown's flush can dispatch the lone
        // request below before the batch fills.
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(3600),
                workers: 1,
            },
        );
        let ticket = server
            .submit(ServeRequest {
                model: "asia".to_string(),
                evidence: Evidence::empty(8),
                query: BatchQuery::Marginal,
            })
            .unwrap();
        drop(server);
        assert!(matches!(ticket.wait(), Ok(ServeResponse::Marginal { .. })));
    }

    #[test]
    fn serve_errors_display() {
        let e = ServeError::UnknownModel {
            model: "m".to_string(),
        };
        assert!(e.to_string().contains("m"));
        assert!(ServeError::ImpossibleEvidence
            .to_string()
            .contains("probability zero"));
        let e: ServeError = EngineError::NeedsFullValues.into();
        assert!(matches!(e, ServeError::Engine(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
