//! Sharded multi-circuit serving: one process, many compiled tapes,
//! behind a QoS-aware admission queue.
//!
//! Everything below `serve` evaluates **one pre-formed batch on one
//! tape**. This module is the first cross-request, cross-model layer —
//! the ROADMAP's "sharded multi-circuit serving" item, plus its serving
//! *policy*: per-tenant quotas, priority lanes and an adaptive
//! coalescing wait:
//!
//! ```text
//!            requests (model id, Evidence, BatchQuery, Priority)
//!                │ submit / serve_all      ── over-quota tenants are
//!                ▼                            rejected here
//!        ┌──────────────────┐   per-(model, query, priority) groups
//!        │  admission queue │   coalesced under max_batch and an
//!        └──────────────────┘   adaptive (EWMA-driven) max_wait
//!                │ ripe group → EvidenceBatch
//!                ▼               (Interactive first, aged groups win)
//!        ┌──────────────────┐   N dispatcher workers, each evaluating
//!        │    dispatcher    │   one coalesced batch at a time through
//!        └──────────────────┘   Engine::evaluate_query
//!                │ per-lane split
//!                ▼
//!        ┌──────────────────┐   model-per-tenant CircuitPool:
//!        │   CircuitPool    │   SumProduct tape (marginal/conditional)
//!        └──────────────────┘   + MaxProduct full tape (MPE) per model
//!                │
//!                ▼
//!          tickets (one per request, Result per lane)
//! ```
//!
//! * [`CircuitPool`] hosts the compiled tapes, keyed by model id
//!   (model-per-tenant): registering a model compiles a
//!   [`Semiring::SumProduct`] tape for marginal/conditional lanes and a
//!   full-values [`Semiring::MaxProduct`] tape for MPE decoding.
//! * [`Server`] owns the admission queue and the dispatcher shards.
//!   [`Server::submit`] enqueues one [`ServeRequest`] and returns a
//!   [`Ticket`]; requests to the same `(model, query, priority)` group
//!   are coalesced into one [`EvidenceBatch`] once `max_batch` lanes are
//!   waiting or the oldest has waited the group's effective wait,
//!   evaluated by a worker, and routed back lane by lane.
//!
//! # Scheduling policy
//!
//! Dispatch order and admission are governed by [`ServeConfig`]:
//!
//! * **Per-tenant quotas** ([`ServeConfig::tenant_quota`]): each model
//!   may hold at most this many lanes queued + in flight; the next
//!   request beyond the cap is rejected at [`Server::submit`] with
//!   [`ServeError::QuotaExceeded`], so one hot tenant cannot consume
//!   the whole queue.
//! * **Priority lanes** ([`ServeRequest::priority`]): among ripe
//!   groups, [`Priority::Interactive`] dispatches before
//!   [`Priority::Batch`]; ties break toward the oldest head-of-line
//!   request. A `Batch` group whose head has waited
//!   [`ServeConfig::priority_aging`] is *promoted* to the interactive
//!   rank, so a continuously-full high-priority tenant can delay a
//!   low-priority group by at most the aging bound (plus the
//!   evaluation already on the dispatcher).
//! * **Adaptive max_wait** ([`ServeConfig::adaptive_wait`]): each
//!   `(model, query, priority)` stream keeps an arrival-interval EWMA;
//!   a group's effective coalescing wait is
//!   `min(max_wait, ewma_interval × max_batch)` — the expected time to
//!   fill a batch. A hot stream therefore waits ~no longer than its
//!   batch needs to fill (toward zero), while an idle stream grows
//!   back to the configured `max_wait` cap.
//!
//! None of the policy knobs changes any answer — they only reorder,
//! reject, or re-time dispatch (`tests/serve.rs` pins bit-identity to
//! [`CircuitPool::serve_one`] under every policy combination).
//!
//! Coalescing never changes answers: every engine lane is computed by
//! the same instruction sequence regardless of which other lanes share
//! its batch, so a coalesced answer's payload (values, assignments,
//! posteriors) is bit-identical to serving the request alone
//! (`tests/serve.rs` pins this per model, per query kind and per
//! arithmetic via [`ServeResponse::answer_eq`]). The one batch-scope
//! field is the sticky-flag set, which is aggregated over the coalesced
//! batch and therefore a superset of the request's own flags.
//!
//! Failure isolation is per request, not per process: an unknown model
//! or mismatched evidence is rejected at admission, an impossible
//! conditional lane fails only its own ticket
//! ([`ServeError::ImpossibleEvidence`]), and a panic inside an
//! evaluation is caught and returned as
//! [`EngineError::WorkerPanic`] to the requests of that one batch while
//! the dispatcher keeps serving.
//!
//! # Examples
//!
//! ```
//! use problp_ac::compile;
//! use problp_bayes::{networks, BatchQuery, Evidence};
//! use problp_engine::{CircuitPool, Priority, ServeConfig, ServeRequest, Server};
//! use problp_num::F64Arith;
//!
//! let mut pool = CircuitPool::new(F64Arith::new());
//! for (name, net) in [("sprinkler", networks::sprinkler()), ("asia", networks::asia())] {
//!     pool.register(name, &compile(&net)?)?;
//! }
//! let server = Server::start(pool, ServeConfig::default());
//!
//! let net = networks::sprinkler();
//! let ticket = server.submit(ServeRequest {
//!     model: "sprinkler".to_string(),
//!     evidence: Evidence::empty(net.var_count()),
//!     query: BatchQuery::Marginal,
//!     priority: Priority::Interactive,
//! })?;
//! match ticket.wait()? {
//!     problp_engine::ServeResponse::Marginal { value, .. } => {
//!         assert!((value - 1.0).abs() < 1e-12)
//!     }
//!     other => panic!("expected a marginal, got {other:?}"),
//! }
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use problp_ac::{AcGraph, Semiring};
use problp_bayes::{BatchQuery, Evidence, EvidenceBatch};
use problp_num::{Arith, Flags};
use problp_telemetry::{
    default_latency_buckets_us, default_size_buckets, metric_names, Counter, Gauge, HealthFn,
    HealthStatus, Histogram, MetricsRegistry,
};

use crate::engine::Engine;
use crate::error::{panic_message, EngineError};
use crate::kernels::{KernelKind, KernelSet};
use crate::query::{ConditionalLaneStatus, QueryBatchResult};

/// Errors of the serving layer. Admission errors ([`ServeError::UnknownModel`],
/// length mismatches) are returned by [`Server::submit`] directly; everything
/// else arrives through the request's [`Ticket`].
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The request named a model the pool does not host.
    UnknownModel {
        /// The unknown model id.
        model: String,
    },
    /// The model already holds its full quota of queued + in-flight
    /// lanes ([`ServeConfig::tenant_quota`]); the request was rejected
    /// at admission so other tenants keep their share of the queue.
    QuotaExceeded {
        /// The over-quota model id.
        model: String,
        /// The configured per-tenant lane cap.
        quota: usize,
    },
    /// A [`Ticket::wait_deadline`] expired before the dispatcher
    /// delivered a result. The request itself is still in flight — the
    /// ticket can be waited on again.
    Timeout {
        /// How long the caller was willing to wait.
        waited: Duration,
    },
    /// Internal invariant breach: an evaluated group produced fewer
    /// result lanes than it has waiting requests. The unmatched
    /// requests receive this error instead of hanging on their tickets
    /// forever (matched lanes keep their answers: lane `i` belongs to
    /// waiter `i` by construction).
    LaneCountMismatch {
        /// Result lanes the group was owed.
        expected: usize,
        /// Result lanes the evaluation actually produced.
        got: usize,
    },
    /// The underlying engine rejected or lost the coalesced batch; a
    /// panic inside one evaluation arrives here as
    /// [`EngineError::WorkerPanic`].
    Engine(EngineError),
    /// A conditional request whose evidence has probability zero under
    /// its model: no posterior exists
    /// ([`ConditionalLaneStatus::ImpossibleEvidence`]).
    ImpossibleEvidence,
    /// The server is shutting down (or has shut down) and no longer
    /// admits requests.
    ShutDown,
    /// The response channel was dropped before a result arrived — the
    /// serving process is tearing down.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel { model } => {
                write!(f, "no model named {model:?} is registered in the pool")
            }
            ServeError::QuotaExceeded { model, quota } => write!(
                f,
                "model {model:?} already holds its quota of {quota} queued + in-flight lanes"
            ),
            ServeError::Timeout { waited } => {
                write!(f, "no result arrived within {waited:?}")
            }
            ServeError::LaneCountMismatch { expected, got } => write!(
                f,
                "internal error: a group of {expected} requests produced {got} result lanes"
            ),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::ImpossibleEvidence => write!(
                f,
                "the evidence has probability zero under the model: no posterior exists"
            ),
            ServeError::ShutDown => write!(f, "the server is shut down"),
            ServeError::Disconnected => write!(f, "the response channel was dropped"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// The priority class of a [`ServeRequest`]: which lane of the
/// admission queue it coalesces in, and how soon the dispatcher picks
/// that lane.
///
/// Among ripe groups, `Interactive` dispatches before `Batch`; a
/// `Batch` group whose head-of-line request has waited
/// [`ServeConfig::priority_aging`] is promoted to the interactive rank,
/// bounding how long a saturating interactive tenant can starve it.
/// Priority never changes an answer, only when it is computed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Priority {
    /// Latency-sensitive traffic: dispatched first. The default.
    #[default]
    Interactive,
    /// Throughput traffic: dispatched when no interactive group is
    /// ripe, or once it has aged past [`ServeConfig::priority_aging`].
    Batch,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Batch => write!(f, "batch"),
        }
    }
}

/// One serving request: which model, which evidence, which query, and
/// which priority lane it rides in.
///
/// Requests with the same `(model, query, priority)` are coalesced into
/// one engine batch; `priority` picks the queue lane (see [`Priority`])
/// and never changes the answer.
#[derive(Clone, PartialEq, Debug)]
pub struct ServeRequest {
    /// The model id the request targets (as registered in the pool).
    pub model: String,
    /// The request's evidence instance.
    pub evidence: Evidence,
    /// What to compute for it.
    pub query: BatchQuery,
    /// The priority lane ([`Priority::Interactive`] by default).
    pub priority: Priority,
}

/// One serving answer, mirroring the request's [`BatchQuery`] kind.
///
/// `flags` are **batch-scope**: the sticky flags of the whole coalesced
/// batch the request was served in (like [`crate::BatchResult::flags`]),
/// so they are a superset of the flags the request would raise alone —
/// batch mates can contribute `inexact`/`underflow` bits. The answer
/// payloads (values, assignments, posteriors) are coalescing-invariant;
/// compare them with [`ServeResponse::answer_eq`], which ignores flags.
#[derive(Clone, PartialEq, Debug)]
pub enum ServeResponse<V> {
    /// `Pr(e)` under the model.
    Marginal {
        /// The marginal value.
        value: V,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
    /// The most probable completion of the evidence and its joint value.
    Mpe {
        /// One state per variable.
        assignment: Vec<usize>,
        /// `max_x Pr(x, e)`.
        value: V,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
    /// The posterior over the query variable's states.
    Conditional {
        /// `posteriors[s] = Pr(q = s | e)`.
        posteriors: Vec<f64>,
        /// The argmax state — the classifier decision.
        prediction: usize,
        /// Batch-aggregated sticky flags.
        flags: Flags,
    },
}

impl<V: PartialEq> ServeResponse<V> {
    /// Answer-payload equality, ignoring `flags`: two servings of the
    /// same request in different coalesced batches always agree on the
    /// payload (posteriors bit for bit), but their batch-scope flags may
    /// differ with the batch composition. This is the
    /// "coalescing never changes answers" relation the serve property
    /// tests pin.
    pub fn answer_eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                ServeResponse::Marginal { value: a, .. },
                ServeResponse::Marginal { value: b, .. },
            ) => a == b,
            (
                ServeResponse::Mpe {
                    assignment: aa,
                    value: av,
                    ..
                },
                ServeResponse::Mpe {
                    assignment: ba,
                    value: bv,
                    ..
                },
            ) => aa == ba && av == bv,
            (
                ServeResponse::Conditional {
                    posteriors: ap,
                    prediction: apred,
                    ..
                },
                ServeResponse::Conditional {
                    posteriors: bp,
                    prediction: bpred,
                    ..
                },
            ) => {
                apred == bpred
                    && ap.len() == bp.len()
                    && ap.iter().zip(bp).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

/// The per-request result type routed back through a [`Ticket`].
pub type LaneResult<V> = Result<ServeResponse<V>, ServeError>;

/// Answer-payload equality of two per-request results: `Ok` sides
/// compare via [`ServeResponse::answer_eq`] (flags ignored — they are
/// batch-scope), `Err` sides via `==`.
pub fn lane_answer_eq<V: PartialEq>(a: &LaneResult<V>, b: &LaneResult<V>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x.answer_eq(y),
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

/// Admission and dispatch policy of a [`Server`].
///
/// # Scheduling order
///
/// A group (all queued requests of one `(model, query, priority)`) is
/// **ripe** once it holds `max_batch` lanes or its head-of-line request
/// has waited the group's *effective wait* — `max_wait`, or, with
/// `adaptive_wait`, `min(max_wait, arrival-interval EWMA × max_batch)`
/// so a hot stream stops paying the coalescing wait its batch does not
/// need. Among ripe groups a free dispatcher picks by
/// `(priority rank, oldest head)`: [`Priority::Interactive`] before
/// [`Priority::Batch`], except that a group whose head has waited
/// `priority_aging` competes at the interactive rank (anti-starvation).
/// Admission itself is capped per tenant by `tenant_quota`. None of
/// these knobs changes any answer — only when (or whether) a request is
/// served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServeConfig {
    /// Coalesce at most this many requests into one engine batch.
    pub max_batch: usize,
    /// Dispatch a non-full group once its oldest request has waited this
    /// long (the cap of the effective wait when `adaptive_wait` is on).
    pub max_wait: Duration,
    /// Dispatcher worker threads (each evaluates one coalesced batch at
    /// a time). Threads *inside* each engine evaluation are a pool
    /// property instead ([`CircuitPool::with_engine_threads`], default
    /// 1): parallelism comes from the dispatcher shards.
    pub workers: usize,
    /// Per-tenant admission quota: at most this many lanes queued +
    /// in flight per model; the request beyond the cap is rejected with
    /// [`ServeError::QuotaExceeded`]. `0` (the default) disables the
    /// quota.
    pub tenant_quota: usize,
    /// The anti-starvation bound of the priority lanes: a
    /// [`Priority::Batch`] group whose head-of-line request has waited
    /// this long is promoted to the interactive dispatch rank.
    pub priority_aging: Duration,
    /// Shrink the coalescing wait of hot streams: when `true`, a
    /// group's effective wait is `min(max_wait, EWMA × max_batch)`
    /// (the expected time to fill its batch) instead of the flat
    /// `max_wait`. Off by default.
    pub adaptive_wait: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            tenant_quota: 0,
            priority_aging: Duration::from_millis(20),
            adaptive_wait: false,
        }
    }
}

/// One hosted model: the engines serving its three query kinds.
struct Tenant<A: Arith> {
    /// `SumProduct` compact tape: marginal and conditional lanes.
    sum: Engine<A>,
    /// `MaxProduct` full-values tape: MPE decoding.
    mpe: Engine<A>,
    /// Variables of the model (admission-time shape check).
    var_count: usize,
}

/// Hosts many compiled circuits keyed by model id (model-per-tenant),
/// all bound to one arithmetic context type.
///
/// Registering a model compiles both tapes it can be served from; the
/// pool is then immutable at serving time and shared across dispatcher
/// shards.
pub struct CircuitPool<A: Arith> {
    ctx: A,
    engine_threads: usize,
    kernel: KernelKind,
    tenants: HashMap<String, Arc<Tenant<A>>>,
}

impl<A> CircuitPool<A>
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    /// Creates an empty pool evaluating in `ctx`'s number system.
    pub fn new(ctx: A) -> Self {
        CircuitPool {
            ctx,
            engine_threads: 1,
            kernel: KernelKind::Scalar,
            tenants: HashMap::new(),
        }
    }

    /// Sets the thread cap of every engine registered *after* this call
    /// (`0` = all cores). The default of 1 keeps engine evaluations
    /// single-threaded so the dispatcher shards stay the unit of
    /// parallelism.
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads;
        self
    }

    /// Selects the evaluator core ([`crate::KernelKind`]) of every engine
    /// registered *after* this call. Coalesced answers stay pinned
    /// bit-identical to [`CircuitPool::serve_one`] under every kernel —
    /// both paths evaluate through the same tenant engines — and the
    /// `tests/serve.rs` proptest sweep exercises the whole matrix.
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// The evaluator core newly registered engines will run.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Compiles `ac` under both serving semirings and hosts it as
    /// `model`. Re-registering an id replaces the previous circuit.
    ///
    /// Admission runs the static tape verifier ([`crate::Tape::verify`],
    /// and [`crate::Tape::verify_fused`] under the fused kernel) over
    /// both engines in **every** build — release included, where
    /// compilation itself skips the debug-only auto-check — so a tape
    /// that lost its dataflow guarantees anywhere between compilation
    /// and serving never joins the pool.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Circuit`] if the circuit is invalid, or
    /// [`EngineError::Verify`] if a compiled tape fails verification.
    pub fn register(&mut self, model: &str, ac: &AcGraph) -> Result<(), EngineError> {
        let sum = Engine::from_graph(ac, Semiring::SumProduct, self.ctx.clone())?
            .with_threads(self.engine_threads)
            .with_kernel(self.kernel);
        let mpe = Engine::from_graph_full(ac, Semiring::MaxProduct, self.ctx.clone())?
            .with_threads(self.engine_threads)
            .with_kernel(self.kernel);
        self.register_engines(model, sum, mpe)
    }

    /// Hosts a pair of pre-built engines as `model` after passing them
    /// through the verification gate; [`CircuitPool::register`] is the
    /// compile-and-admit convenience on top of this. Taking engines
    /// directly is what lets verifier tests (and future tape
    /// deserialization paths) exercise the typed rejection: a tape
    /// corrupted after compilation is refused here with
    /// [`EngineError::Verify`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Verify`] if either engine's tape — or its
    /// fused stream, when one is attached — fails static verification.
    pub fn register_engines(
        &mut self,
        model: &str,
        sum: Engine<A>,
        mpe: Engine<A>,
    ) -> Result<(), EngineError> {
        for engine in [&sum, &mpe] {
            engine.tape().verify()?;
            if let Some(fused) = engine.fused_tape() {
                engine.tape().verify_fused(fused)?;
            }
        }
        let var_count = sum.tape().var_count();
        self.tenants.insert(
            model.to_string(),
            Arc::new(Tenant {
                sum,
                mpe,
                var_count,
            }),
        );
        Ok(())
    }

    /// The hosted model ids, sorted.
    pub fn models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of hosted models.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no model is hosted.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Looks up a tenant, as a [`ServeError`] on miss.
    fn tenant(&self, model: &str) -> Result<&Arc<Tenant<A>>, ServeError> {
        self.tenants
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })
    }

    /// Admission-time request validation: the model must exist and the
    /// evidence must range over its variables.
    fn admit(&self, req: &ServeRequest) -> Result<(), ServeError> {
        let tenant = self.tenant(&req.model)?;
        if req.evidence.len() != tenant.var_count {
            return Err(ServeError::Engine(EngineError::BatchLengthMismatch {
                batch: req.evidence.len(),
                circuit: tenant.var_count,
            }));
        }
        Ok(())
    }

    /// Serves one request directly, as a single-lane batch — the
    /// per-request reference path the coalesced answers are pinned
    /// bit-identical to, and the scalar baseline of `serve-sim`.
    pub fn serve_one(&self, req: &ServeRequest) -> LaneResult<A::Value> {
        self.admit(req)?;
        let tenant = self.tenant(&req.model)?;
        let mut batch = EvidenceBatch::new(tenant.var_count);
        batch.push(&req.evidence);
        // Panic-proof like the dispatcher path: any panic inside the
        // evaluation (engine fast paths included) becomes a typed
        // WorkerPanic instead of unwinding the caller's thread.
        let mut results = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.evaluate_group(tenant, req.query, &batch)
        }))
        .map_err(|payload| {
            ServeError::Engine(EngineError::WorkerPanic {
                message: panic_message(payload),
            })
        })?;
        // One lane in must mean one result out; if an engine ever breaks
        // that, surface a typed internal error instead of panicking.
        match (results.len(), results.pop()) {
            (1, Some(result)) => result,
            (got, _) => Err(ServeError::LaneCountMismatch { expected: 1, got }),
        }
    }

    /// Evaluates one coalesced `(model, query)` group and splits the
    /// result back into per-lane answers. A batch-level engine error is
    /// replicated to every lane; conditional lanes with impossible
    /// evidence fail individually.
    fn evaluate_group(
        &self,
        tenant: &Tenant<A>,
        query: BatchQuery,
        batch: &EvidenceBatch,
    ) -> Vec<LaneResult<A::Value>> {
        let engine = match query {
            BatchQuery::Mpe => &tenant.mpe,
            _ => &tenant.sum,
        };
        match engine.evaluate_query(batch, query) {
            Err(e) => vec![Err(ServeError::Engine(e)); batch.lanes()],
            Ok(QueryBatchResult::Marginal(r)) => {
                let flags = r.flags;
                r.values
                    .into_iter()
                    .map(|value| Ok(ServeResponse::Marginal { value, flags }))
                    .collect()
            }
            Ok(QueryBatchResult::Mpe(r)) => {
                let flags = r.flags;
                r.assignments
                    .into_iter()
                    .zip(r.values)
                    .map(|(assignment, value)| {
                        Ok(ServeResponse::Mpe {
                            assignment,
                            value,
                            flags,
                        })
                    })
                    .collect()
            }
            Ok(QueryBatchResult::Conditional(r)) => {
                let flags = r.flags;
                r.posteriors
                    .into_iter()
                    .zip(r.predictions)
                    .zip(r.lane_status)
                    .map(|((posteriors, prediction), status)| match status {
                        ConditionalLaneStatus::Ok => Ok(ServeResponse::Conditional {
                            posteriors,
                            prediction,
                            flags,
                        }),
                        ConditionalLaneStatus::ImpossibleEvidence => {
                            Err(ServeError::ImpossibleEvidence)
                        }
                    })
                    .collect()
            }
        }
    }
}

/// The routing half of one admitted request: when it arrived and where
/// its result goes. The evidence half lives in the group's columnar
/// batch, lane `i` belonging to `waiters[i]`.
struct Waiter<V> {
    enqueued: Instant,
    tx: mpsc::Sender<(Instant, LaneResult<V>)>,
}

/// The pending requests of one `(model, query, priority)` coalescing
/// group, already in columnar form: admission pushes straight into the
/// [`EvidenceBatch`] the dispatcher will sweep, and an over-full group
/// is cut at `max_batch` with one [`EvidenceBatch::split_off`] (the
/// head leaves zero-copy; only the tail lanes move).
struct Group<V> {
    model: String,
    query: BatchQuery,
    priority: Priority,
    batch: EvidenceBatch,
    waiters: Vec<Waiter<V>>,
}

/// The arrival-rate tracker of one `(model, query, priority)` request
/// stream, persisting across the stream's coalescing groups: an EWMA of
/// the inter-arrival interval, driving the adaptive effective wait.
struct ArrivalStats {
    model: String,
    query: BatchQuery,
    priority: Priority,
    /// When the stream's latest request arrived.
    last: Instant,
    /// EWMA of the inter-arrival interval, microseconds.
    ewma_us: f64,
}

/// EWMA smoothing factor of the arrival-interval tracker: new intervals
/// get this weight, history the rest. At 0.25, four hot arrivals erase
/// ~70% of an idle spell's memory.
const ARRIVAL_EWMA_ALPHA: f64 = 0.25;

impl ArrivalStats {
    /// Folds one arrival into the EWMA. Intervals are clamped to
    /// `max_wait` so a long idle gap counts as "fully idle" once
    /// instead of pinning the average high for many arrivals.
    fn note(&mut self, now: Instant, max_wait: Duration) {
        let cap_us = max_wait.as_secs_f64() * 1e6;
        let interval_us =
            (now.saturating_duration_since(self.last).as_secs_f64() * 1e6).min(cap_us.max(1.0));
        self.ewma_us = ARRIVAL_EWMA_ALPHA * interval_us + (1.0 - ARRIVAL_EWMA_ALPHA) * self.ewma_us;
        self.last = now;
    }
}

/// The admission queue proper, plus the QoS bookkeeping that must stay
/// consistent with it under one lock: per-tenant lane counts (queued +
/// in flight, for quotas) and per-stream arrival EWMAs (for the
/// adaptive wait).
struct QueueState<V> {
    groups: Vec<Group<V>>,
    /// Lanes queued + in flight per model id; the quota denominator.
    tenant_lanes: HashMap<String, usize>,
    /// Per-stream arrival trackers (linear scan: streams are few —
    /// models × query kinds × priority classes).
    arrivals: Vec<ArrivalStats>,
    shutdown: bool,
}

impl<V> QueueState<V> {
    /// Records one arrival on the `(model, query, priority)` stream,
    /// folding it into the stream's interval EWMA.
    fn note_arrival(
        &mut self,
        model: &str,
        query: BatchQuery,
        priority: Priority,
        now: Instant,
        max_wait: Duration,
    ) {
        match self
            .arrivals
            .iter_mut()
            .find(|s| s.model == model && s.query == query && s.priority == priority)
        {
            Some(s) => s.note(now, max_wait),
            None => {
                // First arrival: start at the cap (treat the stream as
                // idle) and let heat shrink the wait from there.
                self.arrivals.push(ArrivalStats {
                    model: model.to_string(),
                    query,
                    priority,
                    last: now,
                    ewma_us: (max_wait.as_secs_f64() * 1e6).max(1.0),
                });
            }
        }
    }

    /// The arrival-interval EWMA of a group's stream, if tracked.
    fn arrival_ewma_us(&self, g: &Group<V>) -> Option<f64> {
        self.arrivals
            .iter()
            .find(|s| s.model == g.model && s.query == g.query && s.priority == g.priority)
            .map(|s| s.ewma_us)
    }
}

/// The query kinds as stable metric-label names (`query` label of the
/// sojourn and evaluate histograms).
fn query_kind_name(query: BatchQuery) -> &'static str {
    match query {
        BatchQuery::Marginal => "marginal",
        BatchQuery::Mpe => "mpe",
        BatchQuery::Conditional { .. } => "conditional",
    }
}

/// Index of a query kind into the precreated per-kind handle arrays.
fn query_kind_idx(query: BatchQuery) -> usize {
    match query {
        BatchQuery::Marginal => 0,
        BatchQuery::Mpe => 1,
        BatchQuery::Conditional { .. } => 2,
    }
}

/// The priority classes as stable metric-label names.
fn priority_name(priority: Priority) -> &'static str {
    match priority {
        Priority::Interactive => "interactive",
        Priority::Batch => "batch",
    }
}

const QUERY_KINDS: [BatchQuery; 3] = [
    BatchQuery::Marginal,
    BatchQuery::Mpe,
    BatchQuery::Conditional {
        // The query_var is irrelevant here: these are label templates,
        // and all conditional queries share one label.
        query_var: problp_bayes::VarId::from_index(0),
    },
];
const PRIORITIES: [Priority; 2] = [Priority::Interactive, Priority::Batch];

/// Every metric handle the serving hot paths touch, precreated at
/// server start so submit/dispatch never pay the registry's
/// registration lock — each update is a bare atomic op. The catalog
/// (names, labels, semantics) is documented in
/// [`problp_telemetry::metric_names`].
struct ServeMetrics {
    registry: Arc<MetricsRegistry>,
    requests: Counter,
    admitted: Counter,
    rejected_unknown_model: Counter,
    rejected_bad_shape: Counter,
    rejected_quota: Counter,
    rejected_shutdown: Counter,
    queue_depth: Gauge,
    group_lanes: Histogram,
    effective_wait_us: Histogram,
    aging_promotions: Counter,
    dispatches: Counter,
    /// `[query kind][priority]` sojourn histograms.
    sojourn_us: [[Histogram; 2]; 3],
    /// Per-query-kind engine evaluate wall time.
    evaluate_us: [Histogram; 3],
    tape_instrs: Counter,
    fused_instrs: Counter,
    /// Dispatched groups by evaluator core: scalar, simd, fused
    /// ([`crate::KernelKind::ALL`] order).
    kernel_dispatches: [Counter; 3],
    /// overflow, underflow, inexact, invalid.
    flag_raises: [Counter; 4],
    live_workers: Gauge,
    /// Per-model occupancy gauges, created on a tenant's first lane
    /// (only when quotas are on — mirrors the quota books).
    tenant_lanes: Mutex<HashMap<String, Gauge>>,
}

impl ServeMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        let sojourn_us = QUERY_KINDS.map(|q| {
            PRIORITIES.map(|p| {
                registry.histogram_with(
                    metric_names::SERVE_SOJOURN_US,
                    &[
                        ("query", query_kind_name(q)),
                        ("priority", priority_name(p)),
                    ],
                    "enqueue-to-completion sojourn per lane, microseconds",
                    default_latency_buckets_us(),
                )
            })
        });
        let evaluate_us = QUERY_KINDS.map(|q| {
            registry.histogram_with(
                metric_names::ENGINE_EVALUATE_US,
                &[("query", query_kind_name(q))],
                "engine evaluate wall time per dispatched group, microseconds",
                default_latency_buckets_us(),
            )
        });
        let flag_raises = ["overflow", "underflow", "inexact", "invalid"].map(|flag| {
            registry.counter_with(
                metric_names::ENGINE_FLAG_RAISES_TOTAL,
                &[("flag", flag)],
                "dispatched groups whose evaluation raised the sticky flag",
            )
        });
        ServeMetrics {
            requests: registry.counter(
                metric_names::SERVE_REQUESTS_TOTAL,
                "lanes submitted, admitted or not",
            ),
            admitted: registry.counter(
                metric_names::SERVE_ADMITTED_TOTAL,
                "lanes that passed admission and were queued",
            ),
            rejected_unknown_model: registry.counter_with(
                metric_names::SERVE_REJECTED_TOTAL,
                &[("kind", "unknown_model")],
                "typed admission rejects by ServeError kind",
            ),
            rejected_bad_shape: registry.counter_with(
                metric_names::SERVE_REJECTED_TOTAL,
                &[("kind", "bad_shape")],
                "typed admission rejects by ServeError kind",
            ),
            rejected_quota: registry.counter_with(
                metric_names::SERVE_REJECTED_TOTAL,
                &[("kind", "quota")],
                "typed admission rejects by ServeError kind",
            ),
            rejected_shutdown: registry.counter_with(
                metric_names::SERVE_REJECTED_TOTAL,
                &[("kind", "shutdown")],
                "typed admission rejects by ServeError kind",
            ),
            queue_depth: registry.gauge(
                metric_names::SERVE_QUEUE_DEPTH,
                "coalescing groups currently waiting for dispatch",
            ),
            group_lanes: registry.histogram(
                metric_names::SERVE_GROUP_LANES,
                "lanes per dispatched group",
                default_size_buckets(),
            ),
            effective_wait_us: registry.histogram(
                metric_names::SERVE_EFFECTIVE_WAIT_US,
                "adaptive coalescing wait applied per dispatched group, microseconds",
                default_latency_buckets_us(),
            ),
            aging_promotions: registry.counter(
                metric_names::SERVE_AGING_PROMOTIONS_TOTAL,
                "batch groups dispatched at the interactive rank via priority aging",
            ),
            dispatches: registry.counter(
                metric_names::SERVE_DISPATCHES_TOTAL,
                "dispatched groups (one engine evaluate each)",
            ),
            sojourn_us,
            evaluate_us,
            tape_instrs: registry.counter(
                metric_names::ENGINE_TAPE_INSTRS_TOTAL,
                "tape instructions executed (instructions x lanes per group)",
            ),
            fused_instrs: registry.counter(
                metric_names::ENGINE_FUSED_INSTRS_TOTAL,
                "fused superinstructions executed (fused instructions x lanes per group)",
            ),
            kernel_dispatches: KernelKind::ALL.map(|k| {
                registry.counter_with(
                    metric_names::ENGINE_KERNEL_DISPATCHES_TOTAL,
                    &[("kernel", k.name())],
                    "dispatched groups by evaluator core",
                )
            }),
            flag_raises,
            live_workers: registry.gauge(
                "problp_serve_live_workers",
                "dispatcher worker threads currently running",
            ),
            tenant_lanes: Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// The per-model occupancy gauge, created on first use.
    fn tenant_gauge(&self, model: &str) -> Gauge {
        let mut map = self
            .tenant_lanes
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match map.get(model) {
            Some(g) => g.clone(),
            None => {
                let g = self.registry.gauge_with(
                    metric_names::SERVE_TENANT_LANES,
                    &[("model", model)],
                    "lanes queued + in flight per tenant (quota occupancy)",
                );
                map.insert(model.to_string(), g.clone());
                g
            }
        }
    }

    /// Folds a dispatched group's batch-scope sticky flags into the
    /// per-flag raise counters.
    fn note_flags(&self, flags: Flags) {
        for (raised, counter) in [
            flags.overflow,
            flags.underflow,
            flags.inexact,
            flags.invalid,
        ]
        .into_iter()
        .zip(&self.flag_raises)
        {
            if raised {
                counter.inc();
            }
        }
    }
}

/// A point-in-time snapshot of a [`Server`]'s own counters
/// ([`Server::stats`]): what tests and the `/healthz`/`/statz` sidecar
/// read instead of parsing `serve-sim` stdout.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Lanes submitted, admitted or not.
    pub requests: u64,
    /// Lanes that passed admission and were queued.
    pub admitted: u64,
    /// Rejects with [`ServeError::UnknownModel`].
    pub rejected_unknown_model: u64,
    /// Rejects with a shape mismatch ([`EngineError::BatchLengthMismatch`]).
    pub rejected_bad_shape: u64,
    /// Rejects with [`ServeError::QuotaExceeded`].
    pub rejected_quota: u64,
    /// Rejects with [`ServeError::ShutDown`].
    pub rejected_shutdown: u64,
    /// Dispatched groups (one engine evaluate each).
    pub dispatches: u64,
    /// Coalescing groups waiting right now.
    pub queue_depth: i64,
    /// The deepest the queue has ever been.
    pub queue_depth_high_water: i64,
    /// Lanes queued + in flight per model, sorted by model id (the
    /// quota denominator; empty when quotas are off — no books are kept
    /// then).
    pub tenant_lanes: Vec<(String, usize)>,
    /// Dispatcher worker threads currently alive.
    pub live_workers: i64,
    /// The hosted model ids, sorted.
    pub models: Vec<String>,
}

/// State shared between the submitting side and the dispatcher shards.
struct Shared<A: Arith> {
    pool: CircuitPool<A>,
    config: ServeConfig,
    queue: Mutex<QueueState<A::Value>>,
    ready: Condvar,
    metrics: ServeMetrics,
}

/// One coalesced unit of dispatcher work: the batch to sweep and the
/// per-lane reply channels. `priority` rides along only to label the
/// sojourn histograms — scheduling already happened.
struct Job<V> {
    model: String,
    query: BatchQuery,
    priority: Priority,
    batch: EvidenceBatch,
    waiters: Vec<Waiter<V>>,
}

/// The receipt for one submitted request: redeem it with
/// [`Ticket::wait`] for the request's result.
#[derive(Debug)]
pub struct Ticket<V> {
    rx: mpsc::Receiver<(Instant, LaneResult<V>)>,
}

impl<V> Ticket<V> {
    /// Like [`Ticket::wait`], but also returns the instant the
    /// dispatcher finished the request — so a caller measuring latency
    /// sees completion time, not the (possibly much later) moment it
    /// got around to draining the ticket.
    pub fn wait_timed(self) -> (LaneResult<V>, Instant) {
        match self.rx.recv() {
            Ok((completed, result)) => (result, completed),
            Err(_) => (Err(ServeError::Disconnected), Instant::now()),
        }
    }

    /// Blocks until the request's result arrives.
    pub fn wait(self) -> LaneResult<V> {
        self.wait_timed().0
    }

    /// Like [`Ticket::wait_deadline`], but also returns the instant the
    /// dispatcher finished the request (see [`Ticket::wait_timed`]).
    pub fn wait_deadline_timed(&self, deadline: Duration) -> (LaneResult<V>, Instant) {
        match self.rx.recv_timeout(deadline) {
            Ok((completed, result)) => (result, completed),
            Err(mpsc::RecvTimeoutError::Timeout) => (
                Err(ServeError::Timeout { waited: deadline }),
                Instant::now(),
            ),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                (Err(ServeError::Disconnected), Instant::now())
            }
        }
    }

    /// Blocks until the request's result arrives or `deadline` elapses,
    /// whichever is first — so a caller can never hang forever on a
    /// wedged dispatcher. On [`ServeError::Timeout`] the request is
    /// still in flight and the ticket (taken by reference) can be
    /// waited on again.
    pub fn wait_deadline(&self, deadline: Duration) -> LaneResult<V> {
        self.wait_deadline_timed(deadline).0
    }
}

/// A running serving instance: a [`CircuitPool`] behind an admission
/// queue and a shard of dispatcher workers.
///
/// Dropping the server (or calling [`Server::shutdown`]) stops
/// admission, flushes every queued request through the dispatchers and
/// joins the worker threads — no ticket is left hanging.
pub struct Server<A: Arith> {
    shared: Arc<Shared<A>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<A> Server<A>
where
    A: KernelSet + Clone + Send + Sync + 'static,
    A::Value: Clone + Send + Sync + 'static,
{
    /// Starts `config.workers` dispatcher shards over `pool`, recording
    /// metrics into a private registry (read it back via
    /// [`Server::metrics`] / [`Server::stats`]).
    pub fn start(pool: CircuitPool<A>, config: ServeConfig) -> Self {
        Self::start_instrumented(pool, config, Arc::new(MetricsRegistry::new()))
    }

    /// Like [`Server::start`], but records into a caller-supplied
    /// [`MetricsRegistry`] — the hook for sharing one registry between
    /// the server, a [`problp_telemetry::Tracer`] and a
    /// [`problp_telemetry::Sidecar`]. (A separate constructor because
    /// [`ServeConfig`] is `Copy` and cannot carry an `Arc`.)
    pub fn start_instrumented(
        pool: CircuitPool<A>,
        config: ServeConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let shared = Arc::new(Shared {
            pool,
            config,
            queue: Mutex::new(QueueState {
                groups: Vec::new(),
                tenant_lanes: HashMap::new(),
                arrivals: Vec::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            metrics: ServeMetrics::new(registry),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server { shared, workers }
    }

    /// The registry this server records into: render it, serve it from
    /// a sidecar, or attach more instruments to it.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics.registry)
    }

    /// A point-in-time snapshot of the server's own counters — the
    /// programmatic alternative to scraping `/metrics`.
    pub fn stats(&self) -> ServerStats {
        let m = &self.shared.metrics;
        let mut tenant_lanes: Vec<(String, usize)> = {
            let q = lock_queue(&self.shared.queue);
            q.tenant_lanes
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        };
        tenant_lanes.sort();
        ServerStats {
            requests: m.requests.get(),
            admitted: m.admitted.get(),
            rejected_unknown_model: m.rejected_unknown_model.get(),
            rejected_bad_shape: m.rejected_bad_shape.get(),
            rejected_quota: m.rejected_quota.get(),
            rejected_shutdown: m.rejected_shutdown.get(),
            dispatches: m.dispatches.get(),
            queue_depth: m.queue_depth.get(),
            queue_depth_high_water: m.queue_depth.high_water(),
            tenant_lanes,
            live_workers: m.live_workers.get(),
            models: self.shared.pool.models(),
        }
    }

    /// A `/healthz` callback for a [`problp_telemetry::Sidecar`]:
    /// healthy while at least one dispatcher worker is alive and the
    /// server is not shut down, with the hosted models, live worker
    /// count and queue depth as detail lines. The closure holds its own
    /// `Arc` on the server internals, so it outlives this handle.
    pub fn health_fn(&self) -> HealthFn {
        let shared = Arc::clone(&self.shared);
        Box::new(move || {
            let shut = lock_queue(&shared.queue).shutdown;
            let workers = shared.metrics.live_workers.get();
            HealthStatus {
                healthy: workers > 0 && !shut,
                detail: vec![
                    ("models".to_string(), shared.pool.models().join(",")),
                    ("workers_alive".to_string(), workers.to_string()),
                    (
                        "queue_depth".to_string(),
                        shared.metrics.queue_depth.get().to_string(),
                    ),
                ],
            }
        })
    }

    /// The hosted pool (for direct [`CircuitPool::serve_one`] replays
    /// against the same engines).
    pub fn pool(&self) -> &CircuitPool<A> {
        &self.shared.pool
    }

    /// Admits one request into the coalescing queue.
    ///
    /// # Errors
    ///
    /// Rejects at admission: [`ServeError::UnknownModel`] /
    /// [`EngineError::BatchLengthMismatch`] for malformed requests,
    /// [`ServeError::QuotaExceeded`] when the model already holds
    /// [`ServeConfig::tenant_quota`] lanes queued + in flight, and
    /// [`ServeError::ShutDown`] after shutdown. Per-request serving
    /// failures arrive through the [`Ticket`] instead.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket<A::Value>, ServeError> {
        let metrics = &self.shared.metrics;
        metrics.requests.inc();
        if let Err(e) = self.shared.pool.admit(&req) {
            match &e {
                ServeError::UnknownModel { .. } => metrics.rejected_unknown_model.inc(),
                // The only other admission failure is the evidence
                // shape mismatch.
                _ => metrics.rejected_bad_shape.inc(),
            }
            return Err(e);
        }
        let config = &self.shared.config;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock_queue(&self.shared.queue);
            if q.shutdown {
                metrics.rejected_shutdown.inc();
                return Err(ServeError::ShutDown);
            }
            // The quota and EWMA books are only kept when their policy
            // is on: with the default config, submit does no extra work
            // under the admission lock.
            let now = Instant::now();
            if config.tenant_quota > 0 {
                // One lookup, and the key is only cloned on a tenant's
                // first lane — this runs under the admission lock.
                match q.tenant_lanes.get_mut(&req.model) {
                    Some(n) if *n >= config.tenant_quota => {
                        metrics.rejected_quota.inc();
                        return Err(ServeError::QuotaExceeded {
                            model: req.model,
                            quota: config.tenant_quota,
                        });
                    }
                    Some(n) => {
                        *n += 1;
                        metrics.tenant_gauge(&req.model).set(*n as i64);
                    }
                    None => {
                        q.tenant_lanes.insert(req.model.clone(), 1);
                        metrics.tenant_gauge(&req.model).set(1);
                    }
                }
            }
            if config.adaptive_wait {
                q.note_arrival(&req.model, req.query, req.priority, now, config.max_wait);
            }
            let waiter = Waiter { enqueued: now, tx };
            match q.groups.iter_mut().find(|g| {
                g.model == req.model && g.query == req.query && g.priority == req.priority
            }) {
                Some(g) => {
                    g.batch.push(&req.evidence);
                    g.waiters.push(waiter);
                }
                None => {
                    let mut batch = EvidenceBatch::new(req.evidence.len());
                    batch.push(&req.evidence);
                    q.groups.push(Group {
                        model: req.model,
                        query: req.query,
                        priority: req.priority,
                        batch,
                        waiters: vec![waiter],
                    });
                }
            }
            metrics.admitted.inc();
            metrics.queue_depth.set(q.groups.len() as i64);
        }
        self.shared.ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Submits a whole trace and waits for every answer, in request
    /// order. Admission errors land in the corresponding slot.
    pub fn serve_all(&self, requests: &[ServeRequest]) -> Vec<LaneResult<A::Value>> {
        let tickets: Vec<Result<Ticket<A::Value>, ServeError>> =
            requests.iter().map(|r| self.submit(r.clone())).collect();
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => ticket.wait(),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Like [`Server::serve_all`], but the whole drain shares one
    /// `deadline` budget ([`Ticket::wait_deadline`] with the remaining
    /// budget per ticket): a wedged dispatcher yields typed
    /// [`ServeError::Timeout`] slots within roughly `deadline` overall
    /// instead of blocking the caller forever (or for one deadline per
    /// request).
    pub fn serve_all_deadline(
        &self,
        requests: &[ServeRequest],
        deadline: Duration,
    ) -> Vec<LaneResult<A::Value>> {
        let tickets: Vec<Result<Ticket<A::Value>, ServeError>> =
            requests.iter().map(|r| self.submit(r.clone())).collect();
        let overall = Instant::now() + deadline;
        tickets
            .into_iter()
            .map(|t| match t {
                Ok(ticket) => {
                    ticket.wait_deadline(overall.saturating_duration_since(Instant::now()))
                }
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Stops admission, drains the queue and joins the dispatchers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<A: Arith> Server<A> {
    fn shutdown_inner(&mut self) {
        {
            let mut q = lock_queue(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            // A worker that somehow panicked has nothing left to flush;
            // the remaining workers still drain the queue.
            let _ = w.join();
        }
    }
}

impl<A: Arith> Drop for Server<A> {
    fn drop(&mut self) {
        // Idempotent: after an explicit `shutdown()` the worker list is
        // already drained and this is a no-op.
        self.shutdown_inner();
    }
}

/// Locks the queue, recovering from poisoning: queue state is plain data
/// (no invariants spanning the panic point), and serving must outlive a
/// panicked worker.
fn lock_queue<V>(queue: &Mutex<QueueState<V>>) -> MutexGuard<'_, QueueState<V>> {
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The effective coalescing wait of one group: the flat `max_wait`, or
/// — under the adaptive policy — the expected time for the group's
/// stream to fill a `max_batch` batch (`EWMA interval × max_batch`),
/// capped at `max_wait`. A hot stream therefore dispatches almost
/// immediately (its batch fills anyway), while an idle one keeps the
/// full coalescing window.
fn effective_wait<V>(q: &QueueState<V>, config: &ServeConfig, g: &Group<V>) -> Duration {
    if !config.adaptive_wait {
        return config.max_wait;
    }
    let Some(ewma_us) = q.arrival_ewma_us(g) else {
        return config.max_wait;
    };
    let fill_us = ewma_us * config.max_batch.max(1) as f64;
    config
        .max_wait
        .min(Duration::from_micros(fill_us.max(0.0) as u64))
}

/// The dispatch rank of a ripe group: its priority class, except that a
/// group whose head-of-line request has waited `priority_aging` is
/// promoted to the top class — the anti-starvation bound that keeps a
/// continuously-full [`Priority::Interactive`] tenant from delaying a
/// [`Priority::Batch`] group indefinitely.
fn dispatch_rank<V>(g: &Group<V>, now: Instant, config: &ServeConfig) -> Priority {
    let head = g.waiters[0].enqueued;
    if now.saturating_duration_since(head) >= config.priority_aging {
        Priority::Interactive
    } else {
        g.priority
    }
}

/// Pops a dispatchable job: a group with `max_batch` lanes waiting, one
/// whose oldest request has waited its effective wait (see
/// [`effective_wait`]), or — when `flush` — any non-empty group. Among
/// dispatchable groups the highest [`dispatch_rank`] wins
/// (Interactive before Batch, aged groups promoted), ties broken by the
/// oldest head-of-line request — so a continuously-full tenant cannot
/// starve a timed-out group behind it.
fn take_job<V>(
    q: &mut QueueState<V>,
    config: &ServeConfig,
    flush: bool,
    metrics: &ServeMetrics,
) -> Option<Job<V>> {
    let max_batch = config.max_batch.max(1);
    let now = Instant::now();
    let idx = q
        .groups
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            !g.waiters.is_empty()
                && (flush
                    || g.waiters.len() >= max_batch
                    || now.duration_since(g.waiters[0].enqueued) >= effective_wait(q, config, g))
        })
        .min_by_key(|(_, g)| (dispatch_rank(g, now, config), g.waiters[0].enqueued))
        .map(|(i, _)| i)?;
    {
        // Coalescing observations for the picked group, before it is
        // consumed: how long it was allowed to wait, and whether aging
        // promoted it past its nominal class.
        let g = &q.groups[idx];
        metrics
            .effective_wait_us
            .observe_duration(effective_wait(q, config, g));
        if g.priority == Priority::Batch && dispatch_rank(g, now, config) == Priority::Interactive {
            metrics.aging_promotions.inc();
        }
    }
    let group = &mut q.groups[idx];
    let job = if group.waiters.len() <= max_batch {
        let group = q.groups.remove(idx);
        Job {
            model: group.model,
            query: group.query,
            priority: group.priority,
            batch: group.batch,
            waiters: group.waiters,
        }
    } else {
        // Over-full group: one two-way cut — the head `max_batch` lanes
        // leave as the job's batch, only the tail lanes are moved, and
        // the queue mutex is held for a single O(tail) pass.
        let waiters: Vec<Waiter<V>> = group.waiters.drain(..max_batch).collect();
        let tail = group.batch.split_off(max_batch);
        let head = std::mem::replace(&mut group.batch, tail);
        Job {
            model: group.model.clone(),
            query: group.query,
            priority: group.priority,
            batch: head,
            waiters,
        }
    };
    metrics.group_lanes.observe(job.waiters.len() as u64);
    metrics.queue_depth.set(q.groups.len() as i64);
    Some(job)
}

/// The next instant at which some group's oldest request hits its
/// effective wait.
fn next_deadline<V>(q: &QueueState<V>, config: &ServeConfig) -> Option<Instant> {
    q.groups
        .iter()
        .filter_map(|g| {
            g.waiters
                .first()
                .map(|w| w.enqueued + effective_wait(q, config, g))
        })
        .min()
}

/// One dispatcher shard: wait for a ripe group, coalesce it, evaluate,
/// route the per-lane results, repeat. Returns when the queue is shut
/// down and drained.
fn worker_loop<A>(shared: &Shared<A>)
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    // Liveness bookkeeping is a drop guard so a panicking evaluation
    // that somehow unwinds past the dispatch catch still decrements the
    // live-worker gauge (and `/healthz` turns red when all shards die).
    struct WorkerAlive(Gauge);
    impl Drop for WorkerAlive {
        fn drop(&mut self) {
            self.0.add(-1);
        }
    }
    let metrics = &shared.metrics;
    metrics.live_workers.add(1);
    let _alive = WorkerAlive(metrics.live_workers.clone());
    loop {
        let job = {
            let mut q = lock_queue(&shared.queue);
            loop {
                let flush = q.shutdown;
                if let Some(job) = take_job(&mut q, &shared.config, flush, metrics) {
                    // More work may be ripe; make sure an idle shard
                    // looks, since our notify was consumed by this pop.
                    if !q.groups.is_empty() {
                        shared.ready.notify_one();
                    }
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                // With pending groups, sleep until the earliest
                // max_wait deadline; on an empty queue, block until a
                // submit (or shutdown) notifies — no idle polling.
                q = match next_deadline(&q, &shared.config) {
                    Some(deadline) => {
                        let wait = deadline
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_micros(50));
                        shared
                            .ready
                            .wait_timeout(q, wait)
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .0
                    }
                    None => shared
                        .ready
                        .wait(q)
                        .unwrap_or_else(|poisoned| poisoned.into_inner()),
                };
            }
        };
        let Some(job) = job else {
            return;
        };
        dispatch(shared, job);
    }
}

/// Releases a finished job's lanes from its tenant's quota budget.
/// Runs *before* the results are sent, so by the time a ticket
/// resolves, the tenant's quota headroom is already restored. A no-op
/// (no lock taken) when quotas are off — no books are kept then.
fn release_tenant_lanes<A: Arith>(shared: &Shared<A>, model: &str, lanes: usize) {
    if shared.config.tenant_quota == 0 {
        return;
    }
    let mut q = lock_queue(&shared.queue);
    if let Some(n) = q.tenant_lanes.get_mut(model) {
        *n = n.saturating_sub(lanes);
        shared.metrics.tenant_gauge(model).set(*n as i64);
        if *n == 0 {
            q.tenant_lanes.remove(model);
        }
    }
}

/// Evaluates one job's coalesced batch and sends each lane's result to
/// its ticket. A panic inside the evaluation fails this batch's
/// requests and nothing else; a lane-count mismatch (the evaluation
/// returning fewer results than the job has waiters) fails the
/// unmatched waiters with [`ServeError::LaneCountMismatch`] instead of
/// leaving their tickets hanging until shutdown.
fn dispatch<A>(shared: &Shared<A>, job: Job<A::Value>)
where
    A: KernelSet + Clone + Send + Sync,
    A::Value: Clone + Send + Sync,
{
    let metrics = &shared.metrics;
    let Ok(tenant) = shared.pool.tenant(&job.model) else {
        // Admission checked the model; reaching this means the pool
        // changed shape, which it cannot — but fail the requests rather
        // than panic the dispatcher.
        release_tenant_lanes(shared, &job.model, job.waiters.len());
        let now = Instant::now();
        for w in &job.waiters {
            let _ = w.tx.send((
                now,
                Err(ServeError::UnknownModel {
                    model: job.model.clone(),
                }),
            ));
        }
        return;
    };
    metrics.dispatches.inc();
    // The whole batch sweeps the query's tape once: every lane executes
    // every instruction.
    let engine = match job.query {
        BatchQuery::Mpe => &tenant.mpe,
        _ => &tenant.sum,
    };
    let lanes = job.batch.lanes() as u64;
    metrics
        .tape_instrs
        .add(engine.tape().instrs().len() as u64 * lanes);
    if let Some(fused) = engine.fused_tape() {
        metrics
            .fused_instrs
            .add(fused.instrs().len() as u64 * lanes);
    }
    let kernel_idx = KernelKind::ALL
        .iter()
        .position(|k| *k == engine.kernel())
        .unwrap_or(0);
    metrics.kernel_dispatches[kernel_idx].inc();
    let started = Instant::now();
    let results = std::panic::catch_unwind(AssertUnwindSafe(|| {
        shared.pool.evaluate_group(tenant, job.query, &job.batch)
    }));
    let completed = Instant::now();
    metrics.evaluate_us[query_kind_idx(job.query)]
        .observe_duration(completed.saturating_duration_since(started));
    release_tenant_lanes(shared, &job.model, job.waiters.len());
    match results {
        Ok(per_lane) => {
            // The flags are batch-scope (identical across the group's
            // Ok lanes); fold the first one into the raise counters.
            if let Some(flags) = per_lane.iter().find_map(|r| match r {
                Ok(ServeResponse::Marginal { flags, .. })
                | Ok(ServeResponse::Mpe { flags, .. })
                | Ok(ServeResponse::Conditional { flags, .. }) => Some(*flags),
                Err(_) => None,
            }) {
                metrics.note_flags(flags);
            }
            let sojourn = &metrics.sojourn_us[query_kind_idx(job.query)]
                [(job.priority == Priority::Batch) as usize];
            // Every waiter gets an answer: lane i belongs to waiter i,
            // and any waiter beyond the produced lanes gets a typed
            // internal error rather than a silent ticket hang.
            let expected = job.waiters.len();
            let got = per_lane.len();
            let mut lanes = per_lane.into_iter();
            for w in &job.waiters {
                sojourn.observe_duration(completed.saturating_duration_since(w.enqueued));
                let r = lanes
                    .next()
                    .unwrap_or(Err(ServeError::LaneCountMismatch { expected, got }));
                let _ = w.tx.send((completed, r));
            }
        }
        Err(payload) => {
            let message = panic_message(payload);
            for w in &job.waiters {
                let _ = w.tx.send((
                    completed,
                    Err(ServeError::Engine(EngineError::WorkerPanic {
                        message: message.clone(),
                    })),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use problp_ac::compile;
    use problp_bayes::{networks, VarId};
    use problp_num::F64Arith;

    fn two_model_pool() -> CircuitPool<F64Arith> {
        let mut pool = CircuitPool::new(F64Arith::new());
        pool.register("sprinkler", &compile(&networks::sprinkler()).unwrap())
            .unwrap();
        pool.register("asia", &compile(&networks::asia()).unwrap())
            .unwrap();
        pool
    }

    #[test]
    fn pool_hosts_models_by_id() {
        let pool = two_model_pool();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.models(), vec!["asia", "sprinkler"]);
        assert!(!pool.is_empty());
    }

    #[test]
    fn admission_rejects_unknown_models_and_bad_shapes() {
        let pool = two_model_pool();
        let server = Server::start(pool, ServeConfig::default());
        let missing = server.submit(ServeRequest {
            model: "nonesuch".to_string(),
            evidence: Evidence::empty(4),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        });
        assert!(matches!(missing, Err(ServeError::UnknownModel { .. })));
        let ragged = server.submit(ServeRequest {
            model: "sprinkler".to_string(),
            evidence: Evidence::empty(99),
            query: BatchQuery::Marginal,
            priority: Priority::Batch,
        });
        assert!(matches!(
            ragged,
            Err(ServeError::Engine(EngineError::BatchLengthMismatch { .. }))
        ));
        server.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let pool = two_model_pool();
        let server = Server::start(pool, ServeConfig::default());
        {
            let mut q = lock_queue(&server.shared.queue);
            q.shutdown = true;
        }
        let late = server.submit(ServeRequest {
            model: "sprinkler".to_string(),
            evidence: Evidence::empty(4),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        });
        assert!(matches!(late, Err(ServeError::ShutDown)));
    }

    #[test]
    fn mixed_tenant_trace_is_bit_identical_to_serve_one() {
        let pool = two_model_pool();
        // Tight batching limits so the trace actually coalesces.
        let config = ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            workers: 3,
            ..ServeConfig::default()
        };
        let server = Server::start(pool, config);
        let nets = [
            ("sprinkler", networks::sprinkler()),
            ("asia", networks::asia()),
        ];
        let mut requests = Vec::new();
        for (i, (name, net)) in nets.iter().cycle().take(60).enumerate() {
            let pool_evs = problp_bayes::single_variable_evidences(
                &(0..net.var_count())
                    .map(|v| net.variable(VarId::from_index(v)).arity())
                    .collect::<Vec<_>>(),
            );
            let evidence = pool_evs[i % pool_evs.len()].clone();
            let query = match i % 3 {
                0 => BatchQuery::Marginal,
                1 => BatchQuery::Mpe,
                _ => BatchQuery::Conditional {
                    query_var: net.roots()[0],
                },
            };
            requests.push(ServeRequest {
                model: name.to_string(),
                evidence,
                query,
                // Mix the lanes: priority must never change an answer.
                priority: if i % 2 == 0 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                },
            });
        }
        let served = server.serve_all(&requests);
        for (req, got) in requests.iter().zip(&served) {
            let alone = server.pool().serve_one(req);
            assert!(
                lane_answer_eq(&alone, got),
                "request {req:?}: {alone:?} vs {got:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn impossible_conditional_evidence_fails_only_its_own_ticket() {
        let net = networks::sprinkler();
        let pool = two_model_pool();
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        // Pr(Sprinkler=0, Rain=0, WetGrass=1) = 0 in the sprinkler CPTs.
        let mut impossible = Evidence::empty(net.var_count());
        impossible.observe(net.find("Sprinkler").unwrap(), 0);
        impossible.observe(net.find("Rain").unwrap(), 0);
        impossible.observe(net.find("WetGrass").unwrap(), 1);
        let query = BatchQuery::Conditional {
            query_var: net.find("Cloudy").unwrap(),
        };
        let requests = vec![
            ServeRequest {
                model: "sprinkler".to_string(),
                evidence: Evidence::empty(net.var_count()),
                query,
                priority: Priority::Interactive,
            },
            ServeRequest {
                model: "sprinkler".to_string(),
                evidence: impossible,
                query,
                priority: Priority::Interactive,
            },
        ];
        let served = server.serve_all(&requests);
        assert!(matches!(served[0], Ok(ServeResponse::Conditional { .. })));
        assert_eq!(served[1], Err(ServeError::ImpossibleEvidence));
        server.shutdown();
    }

    #[test]
    fn batch_scope_flags_do_not_break_answer_equality() {
        use problp_num::{FixedArith, FixedFormat};

        // A 12-variable chain of dyadic CPTs: every parameter is exact
        // in fixed(1,10), so const conversion raises nothing. The empty
        // evidence evaluates to exactly 1.0 (clean flags) while a fully
        // observed lane hits 2^-12, which underflows the format — two
        // lanes of the same (model, query) group with *different*
        // sticky flags. Coalescing them must still reproduce each
        // answer payload bit for bit.
        let mut b = problp_bayes::BayesNetBuilder::new();
        let mut prev = b.variable("X0", 2);
        b.cpt(prev, [], [0.5, 0.5]).unwrap();
        for i in 1..12 {
            let v = b.variable(format!("X{i}"), 2);
            b.cpt(v, [prev], [0.5, 0.5, 0.5, 0.5]).unwrap();
            prev = v;
        }
        let net = b.build().unwrap();
        let ac = compile(&net).unwrap();
        let mut pool = CircuitPool::new(FixedArith::new(FixedFormat::new(1, 10).unwrap()));
        pool.register("chain", &ac).unwrap();
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let clean = ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::empty(12),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        };
        let noisy = ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::from_assignment(&[0; 12]),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        };
        let served = server.serve_all(&[clean.clone(), noisy.clone()]);
        for (req, got) in [clean, noisy].iter().zip(&served) {
            let alone = server.pool().serve_one(req);
            assert!(lane_answer_eq(&alone, got), "{req:?}: {alone:?} vs {got:?}");
        }
        // The lanes really do disagree on flags: alone, the empty
        // evidence is flag-clean while the observed lane is not.
        match server.pool().serve_one(&ServeRequest {
            model: "chain".to_string(),
            evidence: Evidence::empty(12),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
        }) {
            Ok(ServeResponse::Marginal { flags, .. }) => {
                assert!(!flags.any(), "empty evidence is exact: {flags:?}")
            }
            other => panic!("expected a marginal, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn drop_flushes_pending_tickets() {
        let pool = two_model_pool();
        // A huge max_wait: only shutdown's flush can dispatch the lone
        // request below before the batch fills.
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(3600),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let ticket = server
            .submit(ServeRequest {
                model: "asia".to_string(),
                evidence: Evidence::empty(8),
                query: BatchQuery::Marginal,
                priority: Priority::Batch,
            })
            .unwrap();
        drop(server);
        assert!(matches!(ticket.wait(), Ok(ServeResponse::Marginal { .. })));
    }

    #[test]
    fn serve_errors_display() {
        let e = ServeError::UnknownModel {
            model: "m".to_string(),
        };
        assert!(e.to_string().contains("m"));
        assert!(ServeError::ImpossibleEvidence
            .to_string()
            .contains("probability zero"));
        let e: ServeError = EngineError::NeedsFullValues.into();
        assert!(matches!(e, ServeError::Engine(_)));
        use std::error::Error;
        assert!(e.source().is_some());
        let e = ServeError::QuotaExceeded {
            model: "hot".to_string(),
            quota: 8,
        };
        assert!(e.to_string().contains("hot") && e.to_string().contains('8'));
        let e = ServeError::Timeout {
            waited: Duration::from_millis(5),
        };
        assert!(e.to_string().contains("5ms"));
        let e = ServeError::LaneCountMismatch {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));
    }

    fn marginal(model: &str, vars: usize, priority: Priority) -> ServeRequest {
        ServeRequest {
            model: model.to_string(),
            evidence: Evidence::empty(vars),
            query: BatchQuery::Marginal,
            priority,
        }
    }

    #[test]
    fn quota_rejects_only_the_hot_tenant() {
        let pool = two_model_pool();
        // Nothing dispatches before shutdown: quota pressure builds.
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(3600),
                workers: 1,
                tenant_quota: 3,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<_> = (0..3)
            .map(|_| {
                server
                    .submit(marginal("sprinkler", 4, Priority::Interactive))
                    .unwrap()
            })
            .collect();
        // The 4th sprinkler lane is over quota — on any priority lane.
        for priority in [Priority::Interactive, Priority::Batch] {
            match server.submit(marginal("sprinkler", 4, priority)) {
                Err(ServeError::QuotaExceeded { model, quota }) => {
                    assert_eq!(model, "sprinkler");
                    assert_eq!(quota, 3);
                }
                other => panic!("expected QuotaExceeded, got {other:?}"),
            }
        }
        // The other tenant is untouched by sprinkler's saturation.
        let asia = server.submit(marginal("asia", 8, Priority::Interactive));
        assert!(asia.is_ok());
        // The queued lanes are still answered on shutdown's flush.
        server.shutdown();
        for t in tickets {
            assert!(matches!(t.wait(), Ok(ServeResponse::Marginal { .. })));
        }
    }

    #[test]
    fn quota_lanes_are_released_once_served() {
        let pool = two_model_pool();
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 2,
                max_wait: Duration::from_micros(50),
                workers: 1,
                tenant_quota: 2,
                ..ServeConfig::default()
            },
        );
        for round in 0..4 {
            let t1 = server
                .submit(marginal("sprinkler", 4, Priority::Interactive))
                .unwrap();
            // The released quota must be visible by the time a ticket
            // resolves: serve rounds never wedge on stale accounting.
            assert!(
                matches!(t1.wait(), Ok(ServeResponse::Marginal { .. })),
                "round {round}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn wait_deadline_times_out_and_can_retry() {
        let pool = two_model_pool();
        // A huge max_wait and an unfillable batch: nothing dispatches
        // until shutdown, so the first deadline must expire.
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(3600),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let ticket = server
            .submit(marginal("asia", 8, Priority::Interactive))
            .unwrap();
        match ticket.wait_deadline(Duration::from_millis(10)) {
            Err(ServeError::Timeout { waited }) => {
                assert_eq!(waited, Duration::from_millis(10));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The request is still live: after the flush, the same ticket
        // (waited by reference) resolves normally.
        server.shutdown();
        assert!(matches!(
            ticket.wait_deadline(Duration::from_secs(5)),
            Ok(ServeResponse::Marginal { .. })
        ));
    }

    /// Regression for the silent ticket hang: a job whose evaluation
    /// returns fewer lanes than it has waiters must fail the unmatched
    /// waiters with a typed error, not strand them until shutdown.
    #[test]
    fn dispatch_fails_unmatched_waiters_instead_of_hanging() {
        let net = networks::sprinkler();
        let shared = Arc::new(Shared {
            pool: two_model_pool(),
            config: ServeConfig::default(),
            queue: Mutex::new(QueueState {
                groups: Vec::new(),
                tenant_lanes: HashMap::new(),
                arrivals: Vec::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            metrics: ServeMetrics::new(Arc::new(MetricsRegistry::new())),
        });
        // A 1-lane batch owing 2 waiters: evaluate_group will produce
        // one result for two tickets.
        let mut batch = EvidenceBatch::new(net.var_count());
        batch.push(&Evidence::empty(net.var_count()));
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        let now = Instant::now();
        dispatch(
            &shared,
            Job {
                model: "sprinkler".to_string(),
                query: BatchQuery::Marginal,
                priority: Priority::Interactive,
                batch,
                waiters: vec![
                    Waiter {
                        enqueued: now,
                        tx: tx_a,
                    },
                    Waiter {
                        enqueued: now,
                        tx: tx_b,
                    },
                ],
            },
        );
        // Waiter 0 owns lane 0; waiter 1 has no lane and must get the
        // typed mismatch error immediately.
        let (_, first) = rx_a.recv().expect("lane 0 answered");
        assert!(matches!(first, Ok(ServeResponse::Marginal { .. })));
        let (_, second) = rx_b
            .recv_timeout(Duration::from_secs(5))
            .expect("unmatched waiter answered, not hung");
        assert_eq!(
            second,
            Err(ServeError::LaneCountMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn priority_orders_ripe_groups_and_aging_promotes() {
        // Pure scheduling-order check on take_job, no server involved.
        let mk_group = |model: &str, priority, head: Instant| Group::<f64> {
            model: model.to_string(),
            query: BatchQuery::Marginal,
            priority,
            batch: {
                let mut b = EvidenceBatch::new(4);
                b.push(&Evidence::empty(4));
                b
            },
            waiters: vec![Waiter {
                enqueued: head,
                tx: mpsc::channel().0,
            }],
        };
        let config = ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(1),
            priority_aging: Duration::from_secs(3600),
            ..ServeConfig::default()
        };
        let now = Instant::now();
        let long_ago = now - Duration::from_millis(50);
        let longer_ago = now - Duration::from_millis(80);
        // An older Batch head loses to a younger (but ripe) Interactive
        // head while unaged...
        let mut q = QueueState {
            groups: vec![
                mk_group("batch-tenant", Priority::Batch, longer_ago),
                mk_group("live-tenant", Priority::Interactive, long_ago),
            ],
            tenant_lanes: HashMap::new(),
            arrivals: Vec::new(),
            shutdown: false,
        };
        let metrics = ServeMetrics::new(Arc::new(MetricsRegistry::new()));
        let job = take_job(&mut q, &config, false, &metrics).expect("both groups ripe");
        assert_eq!(job.model, "live-tenant");
        // ...but once its head exceeds the aging bound, the Batch group
        // is promoted and its older head wins.
        let aged = ServeConfig {
            priority_aging: Duration::from_millis(60),
            ..config
        };
        let mut q = QueueState {
            groups: vec![
                mk_group("batch-tenant", Priority::Batch, longer_ago),
                mk_group("live-tenant", Priority::Interactive, long_ago),
            ],
            tenant_lanes: HashMap::new(),
            arrivals: Vec::new(),
            shutdown: false,
        };
        let job = take_job(&mut q, &aged, false, &metrics).expect("both groups ripe");
        assert_eq!(job.model, "batch-tenant");
        // The coalescing observations moved with the two pops: two
        // 1-lane groups and one aging promotion (the second pop).
        assert_eq!(metrics.group_lanes.snapshot().count, 2);
        assert_eq!(metrics.aging_promotions.get(), 1);
    }

    #[test]
    fn aging_promotes_at_the_exact_boundary() {
        // Regression: promotion must kick in at `waited == priority_aging`
        // (the comparison is `>=`), not only strictly beyond it. A `>`
        // would let a Batch group whose head has waited exactly the aging
        // bound keep losing to Interactive traffic for another beat.
        let aging = Duration::from_millis(20);
        let config = ServeConfig {
            priority_aging: aging,
            ..ServeConfig::default()
        };
        let now = Instant::now();
        let group_with_head = |head: Instant| Group::<f64> {
            model: "m".to_string(),
            query: BatchQuery::Marginal,
            priority: Priority::Batch,
            batch: EvidenceBatch::new(4),
            waiters: vec![Waiter {
                enqueued: head,
                tx: mpsc::channel().0,
            }],
        };
        // One tick short of the bound: still Batch rank.
        let young = group_with_head(now - (aging - Duration::from_nanos(1)));
        assert_eq!(dispatch_rank(&young, now, &config), Priority::Batch);
        // Exactly at the bound: promoted.
        let boundary = group_with_head(now - aging);
        assert_eq!(
            dispatch_rank(&boundary, now, &config),
            Priority::Interactive
        );
        // And beyond it, of course.
        let aged = group_with_head(now - aging - Duration::from_millis(1));
        assert_eq!(dispatch_rank(&aged, now, &config), Priority::Interactive);
    }

    #[test]
    fn adaptive_wait_shrinks_when_hot_and_caps_when_idle() {
        let config = ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(10),
            adaptive_wait: true,
            ..ServeConfig::default()
        };
        let mut q: QueueState<f64> = QueueState {
            groups: Vec::new(),
            tenant_lanes: HashMap::new(),
            arrivals: Vec::new(),
            shutdown: false,
        };
        let g = Group::<f64> {
            model: "m".to_string(),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
            batch: EvidenceBatch::new(4),
            waiters: Vec::new(),
        };
        // Untracked stream: the flat cap.
        assert_eq!(effective_wait(&q, &config, &g), config.max_wait);
        // First arrival starts at the cap (idle assumption)...
        let t0 = Instant::now();
        q.note_arrival(
            "m",
            BatchQuery::Marginal,
            Priority::Interactive,
            t0,
            config.max_wait,
        );
        assert_eq!(effective_wait(&q, &config, &g), config.max_wait);
        // ...then a burst of back-to-back arrivals drives the EWMA (and
        // with it the effective wait) down hard.
        for i in 1..=40u64 {
            q.note_arrival(
                "m",
                BatchQuery::Marginal,
                Priority::Interactive,
                t0 + Duration::from_micros(i * 5),
                config.max_wait,
            );
        }
        let hot = effective_wait(&q, &config, &g);
        assert!(
            hot < config.max_wait / 10,
            "hot stream still waits {hot:?} of {:?}",
            config.max_wait
        );
        // An idle spell (clamped to one max_wait per arrival) grows the
        // wait back toward the cap.
        let mut t = t0 + Duration::from_secs(60);
        for _ in 0..40 {
            q.note_arrival(
                "m",
                BatchQuery::Marginal,
                Priority::Interactive,
                t,
                config.max_wait,
            );
            t += Duration::from_secs(1);
        }
        assert_eq!(effective_wait(&q, &config, &g), config.max_wait);
    }
}
