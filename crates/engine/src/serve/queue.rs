//! The admission queue proper: per-`(model, query, priority)`
//! coalescing groups in columnar form, the quota books and per-stream
//! arrival EWMAs that must stay consistent with them under one lock,
//! and the scheduling-policy functions ([`effective_wait`],
//! [`dispatch_rank`], [`take_job`]) the dispatcher shards drive.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use problp_bayes::{BatchQuery, EvidenceBatch};
use problp_num::Arith;

use super::admission::{LaneResult, Priority, ServeConfig};
use super::metrics::ServeMetrics;
use super::pool::Tenant;

/// The routing half of one admitted request: when it arrived and where
/// its result goes. The evidence half lives in the group's columnar
/// batch, lane `i` belonging to `waiters[i]`.
pub(crate) struct Waiter<V> {
    pub(crate) enqueued: Instant,
    pub(crate) tx: mpsc::Sender<(Instant, LaneResult<V>)>,
}

/// The pending requests of one `(model, query, priority)` coalescing
/// group, already in columnar form: admission pushes straight into the
/// [`EvidenceBatch`] the dispatcher will sweep, and an over-full group
/// is cut at `max_batch` with one [`EvidenceBatch::split_off`] (the
/// head leaves zero-copy; only the tail lanes move). The group pins the
/// tenant (and so the tape version) its requests were admitted to:
/// requests admitted across a reload land in separate groups.
pub(crate) struct Group<A: Arith> {
    pub(crate) tenant: Arc<Tenant<A>>,
    pub(crate) model: String,
    pub(crate) query: BatchQuery,
    pub(crate) priority: Priority,
    pub(crate) batch: EvidenceBatch,
    pub(crate) waiters: Vec<Waiter<A::Value>>,
}

/// The arrival-rate tracker of one `(model, query, priority)` request
/// stream, persisting across the stream's coalescing groups: an EWMA of
/// the inter-arrival interval, driving the adaptive effective wait.
pub(crate) struct ArrivalStats {
    model: String,
    query: BatchQuery,
    priority: Priority,
    /// When the stream's latest request arrived.
    last: Instant,
    /// EWMA of the inter-arrival interval, microseconds.
    ewma_us: f64,
}

/// EWMA smoothing factor of the arrival-interval tracker: new intervals
/// get this weight, history the rest. At 0.25, four hot arrivals erase
/// ~70% of an idle spell's memory.
const ARRIVAL_EWMA_ALPHA: f64 = 0.25;

impl ArrivalStats {
    /// Folds one arrival into the EWMA. Intervals are clamped to
    /// `max_wait` so a long idle gap counts as "fully idle" once
    /// instead of pinning the average high for many arrivals.
    fn note(&mut self, now: Instant, max_wait: Duration) {
        let cap_us = max_wait.as_secs_f64() * 1e6;
        let interval_us =
            (now.saturating_duration_since(self.last).as_secs_f64() * 1e6).min(cap_us.max(1.0));
        self.ewma_us = ARRIVAL_EWMA_ALPHA * interval_us + (1.0 - ARRIVAL_EWMA_ALPHA) * self.ewma_us;
        self.last = now;
    }
}

/// The admission queue proper, plus the QoS bookkeeping that must stay
/// consistent with it under one lock: per-tenant lane counts (queued +
/// in flight, for quotas) and per-stream arrival EWMAs (for the
/// adaptive wait).
pub(crate) struct QueueState<A: Arith> {
    pub(crate) groups: Vec<Group<A>>,
    /// Lanes queued + in flight per model id; the quota denominator.
    pub(crate) tenant_lanes: HashMap<String, usize>,
    /// Per-stream arrival trackers (linear scan: streams are few —
    /// models × query kinds × priority classes).
    pub(crate) arrivals: Vec<ArrivalStats>,
    pub(crate) shutdown: bool,
}

impl<A: Arith> QueueState<A> {
    /// An empty queue: no groups, no books, accepting admissions.
    pub(crate) fn new() -> Self {
        QueueState {
            groups: Vec::new(),
            tenant_lanes: HashMap::new(),
            arrivals: Vec::new(),
            shutdown: false,
        }
    }

    /// Records one arrival on the `(model, query, priority)` stream,
    /// folding it into the stream's interval EWMA.
    pub(crate) fn note_arrival(
        &mut self,
        model: &str,
        query: BatchQuery,
        priority: Priority,
        now: Instant,
        max_wait: Duration,
    ) {
        match self
            .arrivals
            .iter_mut()
            .find(|s| s.model == model && s.query == query && s.priority == priority)
        {
            Some(s) => s.note(now, max_wait),
            None => {
                // First arrival: start at the cap (treat the stream as
                // idle) and let heat shrink the wait from there.
                self.arrivals.push(ArrivalStats {
                    model: model.to_string(),
                    query,
                    priority,
                    last: now,
                    ewma_us: (max_wait.as_secs_f64() * 1e6).max(1.0),
                });
            }
        }
    }

    /// The arrival-interval EWMA of a group's stream, if tracked.
    fn arrival_ewma_us(&self, g: &Group<A>) -> Option<f64> {
        self.arrivals
            .iter()
            .find(|s| s.model == g.model && s.query == g.query && s.priority == g.priority)
            .map(|s| s.ewma_us)
    }
}

/// One coalesced unit of dispatcher work: the batch to sweep, the
/// tenant (at the version it was admitted to) that sweeps it, and the
/// per-lane reply channels. `priority` rides along only to label the
/// sojourn histograms — scheduling already happened.
pub(crate) struct Job<A: Arith> {
    pub(crate) tenant: Arc<Tenant<A>>,
    pub(crate) model: String,
    pub(crate) query: BatchQuery,
    pub(crate) priority: Priority,
    pub(crate) batch: EvidenceBatch,
    pub(crate) waiters: Vec<Waiter<A::Value>>,
}

/// Locks the queue, recovering from poisoning: queue state is plain data
/// (no invariants spanning the panic point), and serving must outlive a
/// panicked worker.
pub(crate) fn lock_queue<A: Arith>(queue: &Mutex<QueueState<A>>) -> MutexGuard<'_, QueueState<A>> {
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The effective coalescing wait of one group: the flat `max_wait`, or
/// — under the adaptive policy — the expected time for the group's
/// stream to fill a `max_batch` batch (`EWMA interval × max_batch`),
/// capped at `max_wait`. A hot stream therefore dispatches almost
/// immediately (its batch fills anyway), while an idle one keeps the
/// full coalescing window.
pub(crate) fn effective_wait<A: Arith>(
    q: &QueueState<A>,
    config: &ServeConfig,
    g: &Group<A>,
) -> Duration {
    if !config.adaptive_wait {
        return config.max_wait;
    }
    let Some(ewma_us) = q.arrival_ewma_us(g) else {
        return config.max_wait;
    };
    let fill_us = ewma_us * config.max_batch.max(1) as f64;
    config
        .max_wait
        .min(Duration::from_micros(fill_us.max(0.0) as u64))
}

/// The dispatch rank of a ripe group: its priority class, except that a
/// group whose head-of-line request has waited `priority_aging` is
/// promoted to the top class — the anti-starvation bound that keeps a
/// continuously-full [`Priority::Interactive`] tenant from delaying a
/// [`Priority::Batch`] group indefinitely.
pub(crate) fn dispatch_rank<A: Arith>(
    g: &Group<A>,
    now: Instant,
    config: &ServeConfig,
) -> Priority {
    let head = g.waiters[0].enqueued;
    if now.saturating_duration_since(head) >= config.priority_aging {
        Priority::Interactive
    } else {
        g.priority
    }
}

/// Pops a dispatchable job: a group with `max_batch` lanes waiting, one
/// whose oldest request has waited its effective wait (see
/// [`effective_wait`]), or — when `flush` — any non-empty group. Among
/// dispatchable groups the highest [`dispatch_rank`] wins
/// (Interactive before Batch, aged groups promoted), ties broken by the
/// oldest head-of-line request — so a continuously-full tenant cannot
/// starve a timed-out group behind it.
pub(crate) fn take_job<A: Arith>(
    q: &mut QueueState<A>,
    config: &ServeConfig,
    flush: bool,
    metrics: &ServeMetrics,
) -> Option<Job<A>> {
    let max_batch = config.max_batch.max(1);
    let now = Instant::now();
    let idx = q
        .groups
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            !g.waiters.is_empty()
                && (flush
                    || g.waiters.len() >= max_batch
                    || now.duration_since(g.waiters[0].enqueued) >= effective_wait(q, config, g))
        })
        .min_by_key(|(_, g)| (dispatch_rank(g, now, config), g.waiters[0].enqueued))
        .map(|(i, _)| i)?;
    {
        // Coalescing observations for the picked group, before it is
        // consumed: how long it was allowed to wait, and whether aging
        // promoted it past its nominal class.
        let g = &q.groups[idx];
        metrics
            .effective_wait_us
            .observe_duration(effective_wait(q, config, g));
        if g.priority == Priority::Batch && dispatch_rank(g, now, config) == Priority::Interactive {
            metrics.aging_promotions.inc();
        }
    }
    let group = &mut q.groups[idx];
    let job = if group.waiters.len() <= max_batch {
        let group = q.groups.remove(idx);
        Job {
            tenant: group.tenant,
            model: group.model,
            query: group.query,
            priority: group.priority,
            batch: group.batch,
            waiters: group.waiters,
        }
    } else {
        // Over-full group: one two-way cut — the head `max_batch` lanes
        // leave as the job's batch, only the tail lanes are moved, and
        // the queue mutex is held for a single O(tail) pass.
        let waiters: Vec<Waiter<A::Value>> = group.waiters.drain(..max_batch).collect();
        let tail = group.batch.split_off(max_batch);
        let head = std::mem::replace(&mut group.batch, tail);
        Job {
            tenant: Arc::clone(&group.tenant),
            model: group.model.clone(),
            query: group.query,
            priority: group.priority,
            batch: head,
            waiters,
        }
    };
    metrics.group_lanes.observe(job.waiters.len() as u64);
    metrics.queue_depth.set(q.groups.len() as i64);
    Some(job)
}

/// The next instant at which some group's oldest request hits its
/// effective wait.
pub(crate) fn next_deadline<A: Arith>(q: &QueueState<A>, config: &ServeConfig) -> Option<Instant> {
    q.groups
        .iter()
        .filter_map(|g| {
            g.waiters
                .first()
                .map(|w| w.enqueued + effective_wait(q, config, g))
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::super::pool::tests_support::two_model_pool;
    use super::*;
    use problp_bayes::Evidence;
    use problp_num::F64Arith;
    use problp_telemetry::MetricsRegistry;

    #[test]
    fn priority_orders_ripe_groups_and_aging_promotes() {
        // Pure scheduling-order check on take_job, no server involved.
        let pool = two_model_pool();
        let tenant = pool.tenant("sprinkler").unwrap();
        let mk_group = |model: &str, priority, head: Instant| Group::<F64Arith> {
            tenant: Arc::clone(&tenant),
            model: model.to_string(),
            query: BatchQuery::Marginal,
            priority,
            batch: {
                let mut b = EvidenceBatch::new(4);
                b.push(&Evidence::empty(4));
                b
            },
            waiters: vec![Waiter {
                enqueued: head,
                tx: mpsc::channel().0,
            }],
        };
        let config = ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(1),
            priority_aging: Duration::from_secs(3600),
            ..ServeConfig::default()
        };
        let now = Instant::now();
        let long_ago = now - Duration::from_millis(50);
        let longer_ago = now - Duration::from_millis(80);
        // An older Batch head loses to a younger (but ripe) Interactive
        // head while unaged...
        let mut q = QueueState::<F64Arith>::new();
        q.groups = vec![
            mk_group("batch-tenant", Priority::Batch, longer_ago),
            mk_group("live-tenant", Priority::Interactive, long_ago),
        ];
        let metrics = ServeMetrics::new(Arc::new(MetricsRegistry::new()));
        let job = take_job(&mut q, &config, false, &metrics).expect("both groups ripe");
        assert_eq!(job.model, "live-tenant");
        // ...but once its head exceeds the aging bound, the Batch group
        // is promoted and its older head wins.
        let aged = ServeConfig {
            priority_aging: Duration::from_millis(60),
            ..config
        };
        let mut q = QueueState::<F64Arith>::new();
        q.groups = vec![
            mk_group("batch-tenant", Priority::Batch, longer_ago),
            mk_group("live-tenant", Priority::Interactive, long_ago),
        ];
        let job = take_job(&mut q, &aged, false, &metrics).expect("both groups ripe");
        assert_eq!(job.model, "batch-tenant");
        // The coalescing observations moved with the two pops: two
        // 1-lane groups and one aging promotion (the second pop).
        assert_eq!(metrics.group_lanes.snapshot().count, 2);
        assert_eq!(metrics.aging_promotions.get(), 1);
    }

    #[test]
    fn aging_promotes_at_the_exact_boundary() {
        // Regression: promotion must kick in at `waited == priority_aging`
        // (the comparison is `>=`), not only strictly beyond it. A `>`
        // would let a Batch group whose head has waited exactly the aging
        // bound keep losing to Interactive traffic for another beat.
        let pool = two_model_pool();
        let tenant = pool.tenant("sprinkler").unwrap();
        let aging = Duration::from_millis(20);
        let config = ServeConfig {
            priority_aging: aging,
            ..ServeConfig::default()
        };
        let now = Instant::now();
        let group_with_head = |head: Instant| Group::<F64Arith> {
            tenant: Arc::clone(&tenant),
            model: "m".to_string(),
            query: BatchQuery::Marginal,
            priority: Priority::Batch,
            batch: EvidenceBatch::new(4),
            waiters: vec![Waiter {
                enqueued: head,
                tx: mpsc::channel().0,
            }],
        };
        // One tick short of the bound: still Batch rank.
        let young = group_with_head(now - (aging - Duration::from_nanos(1)));
        assert_eq!(dispatch_rank(&young, now, &config), Priority::Batch);
        // Exactly at the bound: promoted.
        let boundary = group_with_head(now - aging);
        assert_eq!(
            dispatch_rank(&boundary, now, &config),
            Priority::Interactive
        );
        // And beyond it, of course.
        let aged = group_with_head(now - aging - Duration::from_millis(1));
        assert_eq!(dispatch_rank(&aged, now, &config), Priority::Interactive);
    }

    #[test]
    fn adaptive_wait_shrinks_when_hot_and_caps_when_idle() {
        let pool = two_model_pool();
        let tenant = pool.tenant("sprinkler").unwrap();
        let config = ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(10),
            adaptive_wait: true,
            ..ServeConfig::default()
        };
        let mut q = QueueState::<F64Arith>::new();
        let g = Group::<F64Arith> {
            tenant: Arc::clone(&tenant),
            model: "m".to_string(),
            query: BatchQuery::Marginal,
            priority: Priority::Interactive,
            batch: EvidenceBatch::new(4),
            waiters: Vec::new(),
        };
        // Untracked stream: the flat cap.
        assert_eq!(effective_wait(&q, &config, &g), config.max_wait);
        // First arrival starts at the cap (idle assumption)...
        let t0 = Instant::now();
        q.note_arrival(
            "m",
            BatchQuery::Marginal,
            Priority::Interactive,
            t0,
            config.max_wait,
        );
        assert_eq!(effective_wait(&q, &config, &g), config.max_wait);
        // ...then a burst of back-to-back arrivals drives the EWMA (and
        // with it the effective wait) down hard.
        for i in 1..=40u64 {
            q.note_arrival(
                "m",
                BatchQuery::Marginal,
                Priority::Interactive,
                t0 + Duration::from_micros(i * 5),
                config.max_wait,
            );
        }
        let hot = effective_wait(&q, &config, &g);
        assert!(
            hot < config.max_wait / 10,
            "hot stream still waits {hot:?} of {:?}",
            config.max_wait
        );
        // An idle spell (clamped to one max_wait per arrival) grows the
        // wait back toward the cap.
        let mut t = t0 + Duration::from_secs(60);
        for _ in 0..40 {
            q.note_arrival(
                "m",
                BatchQuery::Marginal,
                Priority::Interactive,
                t,
                config.max_wait,
            );
            t += Duration::from_secs(1);
        }
        assert_eq!(effective_wait(&q, &config, &g), config.max_wait);
    }
}
