//! [`Ticket`]: the per-request receipt of the serving layer. The
//! dispatcher (or, on a cache hit, admission itself) sends the
//! request's [`LaneResult`] down the ticket's channel together with the
//! completion instant, so latency measurement never depends on when the
//! caller got around to draining the ticket.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use super::admission::{LaneResult, ServeError};

/// The receipt for one submitted request: redeem it with
/// [`Ticket::wait`] for the request's result.
#[derive(Debug)]
pub struct Ticket<V> {
    rx: mpsc::Receiver<(Instant, LaneResult<V>)>,
}

impl<V> Ticket<V> {
    /// Wraps the receiving half of a request's reply channel.
    pub(crate) fn new(rx: mpsc::Receiver<(Instant, LaneResult<V>)>) -> Self {
        Ticket { rx }
    }

    /// Like [`Ticket::wait`], but also returns the instant the
    /// dispatcher finished the request — so a caller measuring latency
    /// sees completion time, not the (possibly much later) moment it
    /// got around to draining the ticket.
    pub fn wait_timed(self) -> (LaneResult<V>, Instant) {
        match self.rx.recv() {
            Ok((completed, result)) => (result, completed),
            Err(_) => (Err(ServeError::Disconnected), Instant::now()),
        }
    }

    /// Blocks until the request's result arrives.
    pub fn wait(self) -> LaneResult<V> {
        self.wait_timed().0
    }

    /// Like [`Ticket::wait_deadline`], but also returns the instant the
    /// dispatcher finished the request (see [`Ticket::wait_timed`]).
    pub fn wait_deadline_timed(&self, deadline: Duration) -> (LaneResult<V>, Instant) {
        match self.rx.recv_timeout(deadline) {
            Ok((completed, result)) => (result, completed),
            Err(mpsc::RecvTimeoutError::Timeout) => (
                Err(ServeError::Timeout { waited: deadline }),
                Instant::now(),
            ),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                (Err(ServeError::Disconnected), Instant::now())
            }
        }
    }

    /// Blocks until the request's result arrives or `deadline` elapses,
    /// whichever is first — so a caller can never hang forever on a
    /// wedged dispatcher. On [`ServeError::Timeout`] the request is
    /// still in flight and the ticket (taken by reference) can be
    /// waited on again.
    pub fn wait_deadline(&self, deadline: Duration) -> LaneResult<V> {
        self.wait_deadline_timed(deadline).0
    }
}

#[cfg(test)]
mod tests {
    use super::super::pool::tests_support::{marginal, two_model_pool};
    use super::super::{Priority, ServeConfig, ServeError, ServeResponse, Server};
    use std::time::Duration;

    #[test]
    fn wait_deadline_times_out_and_can_retry() {
        let pool = two_model_pool();
        // A huge max_wait and an unfillable batch: nothing dispatches
        // until shutdown, so the first deadline must expire.
        let server = Server::start(
            pool,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(3600),
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let ticket = server
            .submit(marginal("asia", 8, Priority::Interactive))
            .unwrap();
        match ticket.wait_deadline(Duration::from_millis(10)) {
            Err(ServeError::Timeout { waited }) => {
                assert_eq!(waited, Duration::from_millis(10));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The request is still live: after the flush, the same ticket
        // (waited by reference) resolves normally.
        server.shutdown();
        assert!(matches!(
            ticket.wait_deadline(Duration::from_secs(5)),
            Ok(ServeResponse::Marginal { .. })
        ));
    }
}
