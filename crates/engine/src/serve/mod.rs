//! Sharded multi-circuit serving: one process, many compiled tapes,
//! behind a QoS-aware admission queue, an exact answer cache, and live
//! model versioning.
//!
//! Everything below `serve` evaluates **one pre-formed batch on one
//! tape**. This module is the first cross-request, cross-model layer —
//! the ROADMAP's "sharded multi-circuit serving" item, plus its serving
//! *policy*: per-tenant quotas, priority lanes, an adaptive coalescing
//! wait, and an exact `(model version, evidence, query) → answer`
//! cache:
//!
//! ```text
//!            requests (model id, Evidence, BatchQuery, Priority)
//!                │ submit / serve_all      ── over-quota tenants are
//!                ▼                            rejected here
//!        ┌──────────────────┐   exact LRU keyed on (model version,
//!        │   answer cache   │   evidence columns, query); a hit
//!        └──────────────────┘   resolves the ticket immediately
//!                │ miss
//!                ▼
//!        ┌──────────────────┐   per-(model, query, priority) groups
//!        │  admission queue │   coalesced under max_batch and an
//!        └──────────────────┘   adaptive (EWMA-driven) max_wait
//!                │ ripe group → EvidenceBatch
//!                ▼               (Interactive first, aged groups win)
//!        ┌──────────────────┐   N dispatcher workers, each evaluating
//!        │    dispatcher    │   one coalesced batch at a time through
//!        └──────────────────┘   Engine::evaluate_query
//!                │ per-lane split (answers also fill the cache)
//!                ▼
//!        ┌──────────────────┐   model-per-tenant CircuitPool:
//!        │   CircuitPool    │   SumProduct tape (marginal/conditional)
//!        └──────────────────┘   + MaxProduct full tape (MPE) per
//!                │               model, each hosted at a live version
//!                ▼
//!          tickets (one per request, Result per lane)
//! ```
//!
//! # Module map
//!
//! The layer is split along its pipeline stages, one file per stage;
//! this module is a pure re-export facade over them:
//!
//! * [`admission`](self) (`admission.rs`) — the request/response
//!   vocabulary and the admission policy knobs: [`ServeRequest`],
//!   [`ServeResponse`], [`ServeError`], [`Priority`], [`ServeConfig`],
//!   [`LaneResult`] and [`lane_answer_eq`].
//! * `queue.rs` — the admission queue proper: coalescing groups, the
//!   quota books, per-stream arrival EWMAs, the effective-wait /
//!   dispatch-rank policy functions and `take_job`.
//! * `dispatch.rs` — the dispatcher shards: the worker loop, batch
//!   evaluation, per-lane result routing and cache fill.
//! * `ticket.rs` — [`Ticket`], the per-request receipt.
//! * `pool.rs` — [`CircuitPool`]: compiled tenants keyed by model id,
//!   each at a monotonically increasing [`ModelVersion`];
//!   [`CircuitPool::reload`] is the live hot-swap.
//! * `cache.rs` — the exact LRU answer cache and its byte-stable
//!   evidence-column fingerprint.
//! * `metrics.rs` — the precreated telemetry handles ([`ServerStats`]
//!   is the programmatic snapshot).
//! * `server.rs` — [`Server`]: admission (`submit`) wired to the queue,
//!   the cache, the shards and the pool.
//! * [`gateway`] (`gateway.rs`) — the HTTP/1.1 query front end:
//!   `POST /v1/query` with bearer-token auth in front of
//!   [`Server::submit`], typed [`ServeError`]s mapped to
//!   429/503/4xx JSON responses.
//!
//! * [`CircuitPool`] hosts the compiled tapes, keyed by model id
//!   (model-per-tenant): registering a model compiles a
//!   [`problp_ac::Semiring::SumProduct`] tape for marginal/conditional
//!   lanes and a full-values [`problp_ac::Semiring::MaxProduct`] tape
//!   for MPE decoding.
//! * [`Server`] owns the admission queue and the dispatcher shards.
//!   [`Server::submit`] enqueues one [`ServeRequest`] and returns a
//!   [`Ticket`]; requests to the same `(model, query, priority)` group
//!   are coalesced into one [`problp_bayes::EvidenceBatch`] once
//!   `max_batch` lanes are waiting or the oldest has waited the group's
//!   effective wait, evaluated by a worker, and routed back lane by
//!   lane.
//!
//! # Scheduling policy
//!
//! Dispatch order and admission are governed by [`ServeConfig`]:
//!
//! * **Per-tenant quotas** ([`ServeConfig::tenant_quota`]): each model
//!   may hold at most this many lanes queued + in flight; the next
//!   request beyond the cap is rejected at [`Server::submit`] with
//!   [`ServeError::QuotaExceeded`], so one hot tenant cannot consume
//!   the whole queue.
//! * **Priority lanes** ([`ServeRequest::priority`]): among ripe
//!   groups, [`Priority::Interactive`] dispatches before
//!   [`Priority::Batch`]; ties break toward the oldest head-of-line
//!   request. A `Batch` group whose head has waited
//!   [`ServeConfig::priority_aging`] is *promoted* to the interactive
//!   rank, so a continuously-full high-priority tenant can delay a
//!   low-priority group by at most the aging bound (plus the
//!   evaluation already on the dispatcher).
//! * **Adaptive max_wait** ([`ServeConfig::adaptive_wait`]): each
//!   `(model, query, priority)` stream keeps an arrival-interval EWMA;
//!   a group's effective coalescing wait is
//!   `min(max_wait, ewma_interval × max_batch)` — the expected time to
//!   fill a batch. A hot stream therefore waits ~no longer than its
//!   batch needs to fill (toward zero), while an idle stream grows
//!   back to the configured `max_wait` cap.
//!
//! None of the policy knobs changes any answer — they only reorder,
//! reject, or re-time dispatch (`tests/serve.rs` pins bit-identity to
//! [`CircuitPool::serve_one`] under every policy combination).
//!
//! # Answer caching and model versioning
//!
//! With [`ServeConfig::cache_capacity`] > 0 the server memoizes
//! per-request answers in an exact LRU keyed on
//! `(model, ModelVersion, evidence columns, BatchQuery)`. The key
//! carries the request's full canonical evidence columns (observed
//! state per variable, [`problp_bayes::UNOBSERVED`] elsewhere) next to
//! a byte-stable FNV-1a fingerprint of them, so a hit is exact key
//! equality, never a hash collision — and the stored answer *is* a
//! previously dispatched answer for the identical request, so hits are
//! bit-identical to uncached evaluation by the coalescing invariant
//! (payloads are batch-composition-independent; the one batch-scope
//! field, the sticky-flag set, is exactly what [`lane_answer_eq`]
//! already excludes). Hits resolve the ticket immediately, consuming no
//! queue space and no quota. [`CircuitPool::serve_one`] never consults
//! the cache: it stays the uncached reference path.
//!
//! [`CircuitPool::reload`] (or [`Server::reload`] on a running server)
//! recompiles a hosted model from a new [`problp_ac::AcGraph`], passes
//! it through the same static-verifier admission gate as
//! [`CircuitPool::register`], and atomically publishes it at the next
//! [`ModelVersion`]. New admissions cut over immediately; queued and
//! in-flight work keeps the tenant handle (and tape version) it was
//! admitted under, so nothing drains, no ticket strands, and no lane is
//! ever evaluated on a tape it was not admitted to. Cache keys carry
//! the version, so a stale entry can never answer a post-reload
//! request; [`Server::reload`] additionally drops the replaced model's
//! entries to free capacity.
//!
//! Coalescing never changes answers: every engine lane is computed by
//! the same instruction sequence regardless of which other lanes share
//! its batch, so a coalesced answer's payload (values, assignments,
//! posteriors) is bit-identical to serving the request alone
//! (`tests/serve.rs` pins this per model, per query kind and per
//! arithmetic via [`ServeResponse::answer_eq`]). The one batch-scope
//! field is the sticky-flag set, which is aggregated over the coalesced
//! batch and therefore a superset of the request's own flags.
//!
//! Failure isolation is per request, not per process: an unknown model
//! or mismatched evidence is rejected at admission, an impossible
//! conditional lane fails only its own ticket
//! ([`ServeError::ImpossibleEvidence`]), and a panic inside an
//! evaluation is caught and returned as
//! [`crate::EngineError::WorkerPanic`] to the requests of that one
//! batch while the dispatcher keeps serving.
//!
//! # Examples
//!
//! ```
//! use problp_ac::compile;
//! use problp_bayes::{networks, BatchQuery, Evidence};
//! use problp_engine::{CircuitPool, Priority, ServeConfig, ServeRequest, Server};
//! use problp_num::F64Arith;
//!
//! let mut pool = CircuitPool::new(F64Arith::new());
//! for (name, net) in [("sprinkler", networks::sprinkler()), ("asia", networks::asia())] {
//!     pool.register(name, &compile(&net)?)?;
//! }
//! let server = Server::start(pool, ServeConfig::default());
//!
//! let net = networks::sprinkler();
//! let ticket = server.submit(ServeRequest {
//!     model: "sprinkler".to_string(),
//!     evidence: Evidence::empty(net.var_count()),
//!     query: BatchQuery::Marginal,
//!     priority: Priority::Interactive,
//! })?;
//! match ticket.wait()? {
//!     problp_engine::ServeResponse::Marginal { value, .. } => {
//!         assert!((value - 1.0).abs() < 1e-12)
//!     }
//!     other => panic!("expected a marginal, got {other:?}"),
//! }
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod admission;
mod cache;
mod dispatch;
pub mod gateway;
mod metrics;
mod pool;
mod queue;
mod server;
mod ticket;

pub use admission::{
    lane_answer_eq, LaneResult, Priority, ServeConfig, ServeError, ServeRequest, ServeResponse,
};
pub use gateway::{Gateway, GatewayConfig};
pub use metrics::ServerStats;
pub use pool::{CircuitPool, ModelVersion};
pub use server::Server;
pub use ticket::Ticket;
